"""Compatibility shim: the per-file rules now live in the analyzer.

DGL001-DGL008 moved to :mod:`tools.digest_analyzer.rules_local` when the
linter grew a cross-module pass (DGL009-DGL013 live in
:mod:`tools.digest_analyzer.rules_project`). This module re-exports the
per-file rules so the historical import path — and the historical
contract that ``ALL_RULES`` is exactly the per-file rule set — keeps
working.
"""

from __future__ import annotations

from tools.digest_analyzer.rules_local import (
    ALL_RULES,
    RULES_BY_CODE,
    DirectOperatorConstruction,
    FloatEquality,
    HandlerRaises,
    LocalityReachThrough,
    MissingAnnotations,
    NoPrint,
    Rule,
    UnseededRandomness,
    WallClockInSimulation,
)

__all__ = [
    "ALL_RULES",
    "RULES_BY_CODE",
    "DirectOperatorConstruction",
    "FloatEquality",
    "HandlerRaises",
    "LocalityReachThrough",
    "MissingAnnotations",
    "NoPrint",
    "Rule",
    "UnseededRandomness",
    "WallClockInSimulation",
]
