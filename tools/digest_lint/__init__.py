"""digest-lint: project-specific static analysis for the Digest reproduction.

Digest's headline claim is statistical -- ``|X-hat - X| <= epsilon`` with
probability at least ``p`` (PAPER.md Section IV-B) -- and every coverage
number in RESULTS.md assumes the simulation that produced it is exactly
reproducible and faithful to the paper's cost model. A single unseeded RNG,
one wall-clock read inside simulated time, or one sampler that peeks at
remote state without paying for the message invalidates those numbers
silently: the tests still pass, the plots still render, the guarantee is
gone.

This package enforces those invariants at the AST level, with no runtime
dependencies beyond the standard library:

========  ==============================================================
DGL001    no unseeded randomness (``np.random.default_rng()`` without a
          seed, module-level ``np.random.*`` / ``random.*`` calls);
          randomness must thread an explicit ``np.random.Generator``
DGL002    no wall-clock reads in ``core/``, ``sim/``, ``sampling/``,
          ``protocol/``; simulated time comes from ``sim/clock.py``
DGL003    locality: ``sampling/`` and ``protocol/`` may not reach into
          another object's private state (``other._attr``); remote node
          state flows through the ``network/messaging.py`` cost model
DGL004    no float ``==`` / ``!=`` against non-sentinel literals in
          estimator/threshold code under ``core/``
DGL005    public functions and methods in ``src/repro/`` must be fully
          type-annotated
DGL006    ``protocol/`` delivery handlers and nested closures must not
          ``raise``; record a ``FaultEvent`` and drop the message
DGL007    no ``print()`` in ``src/repro/``; console output goes through
          ``repro.obs.console.emit``
DGL008    no direct ``SamplingOperator`` construction outside
          ``repro.sampling``; build a ``SamplePool`` and use its
          ``.operator`` / ``.lease`` so walks stay shareable
========  ==============================================================

Any finding can be suppressed on its line with ``# noqa: DGL00x`` (or a
bare ``# noqa``); see docs/DEVELOPMENT.md for the rationale behind each
rule and when suppression is acceptable.

This package is now the per-file front half of ``tools.digest_analyzer``,
which adds a cross-module pass (trace-schema conformance, RNG-stream
provenance, call-graph reachability — DGL009-DGL013), ``# dgl:
disable=`` pragmas with unused-suppression detection, a committed
findings baseline, and SARIF output. These entry points remain for
per-file use and historical imports; CI runs the analyzer.

Programmatic entry points:

>>> from tools.digest_lint import lint_source
>>> bad = "import numpy as np" + chr(10) + "rng = np.random.default_rng()"
>>> [f.code for f in lint_source(bad, "src/repro/sampling/bad.py")]
['DGL001']
"""

from __future__ import annotations

from tools.digest_lint.findings import Finding
from tools.digest_lint.rules import ALL_RULES, Rule
from tools.digest_lint.runner import lint_file, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
