"""CLI: ``python -m tools.digest_lint [--select CODES] [--list-rules] paths``.

Exit status: 0 clean, 1 findings reported, 2 usage error. Output is one
``path:line:col: CODE message`` line per finding, ruff/flake8-style, so
editors and CI annotators parse it without configuration.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from tools.digest_lint.rules import ALL_RULES
from tools.digest_lint.runner import lint_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.digest_lint",
        description=(
            "Project-specific static analysis enforcing the Digest "
            "reproduction's simulation invariants (DGL001-DGL008). "
            "Suppress a single line with '# noqa: DGL00x'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for *.py)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} [{rule.name}]")
            print(f"    {rule.summary}")
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: no paths given (try: python -m tools.digest_lint src/)",
            file=sys.stderr,
        )
        return 2

    select = options.select.split(",") if options.select else None
    try:
        findings = lint_paths(options.paths, select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        plural = "" if count == 1 else "s"
        print(f"digest-lint: {count} finding{plural}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
