"""File walking, suppression filtering, and the per-file lint entry points.

These are the historical ``digest_lint`` entry points, now thin layers
over the analyzer's pass-1 machinery. They run only the per-file rules
(DGL001-DGL008) — the cross-module rules need the whole project and are
reached through ``python -m tools.digest_analyzer``.

Two behaviors hardened during the migration:

* *any* unparseable file — syntax error, null bytes (``ast.parse``
  raises ``ValueError``), undecodable or unreadable bytes — is reported
  as a DGL000 finding at a real location instead of escaping as an
  exception and aborting the whole run;
* both suppression grammars are honored (``# noqa`` and the analyzer's
  ``# dgl: disable=DGL0xx``), so a line suppressed for the analyzer is
  equally suppressed here. Unused-suppression detection (DGL099) is the
  analyzer's job; a per-file run never reports it.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from typing import Iterable

from tools.digest_analyzer.extract import extract_file_facts
from tools.digest_analyzer.findings import Finding
from tools.digest_analyzer.pragmas import apply_pragmas, parse_pragmas
from tools.digest_lint.rules import ALL_RULES, RULES_BY_CODE, Rule


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return list(ALL_RULES)
    rules = []
    for code in select:
        rule = RULES_BY_CODE.get(code.strip().upper())
        if rule is None:
            raise ValueError(
                f"unknown rule {code!r}; known rules: "
                f"{', '.join(sorted(RULES_BY_CODE))}"
            )
        rules.append(rule)
    return rules


def lint_source(
    source: str,
    path: str,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint ``source`` as though it lived at ``path``.

    ``path`` drives rule scoping (a rule scoped to ``core`` fires on any
    path with a ``core`` component), which is what lets the test suite
    exercise rules on fixture snippets under arbitrary virtual paths.
    Unparseable source is reported as a single DGL000 finding rather
    than an exception so one broken file cannot hide other files'
    findings.
    """
    rules = tuple(_select_rules(select))
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError):
        # delegate: the extractor renders both failure modes as DGL000
        _facts, findings = extract_file_facts(source, path)
        return [f for f in findings if f.code == "DGL000"]
    parts = tuple(PurePosixPath(path.replace("\\", "/")).parts)
    findings = [
        finding
        for rule in rules
        if rule.applies_to(parts)
        for finding in rule.check(tree, path)
    ]
    pragmas = {path: parse_pragmas(source)}
    return apply_pragmas(findings, pragmas, report_unused=False)


def lint_file(path: Path, select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file on disk; unreadable files become DGL000 findings."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=str(path),
                line=1,
                col=1,
                code="DGL000",
                message=f"cannot read file: {exc}",
            )
        ]
    return lint_source(source, str(path), select)


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directory trees; directories are walked for ``*.py``.

    Raises ``FileNotFoundError`` for a missing path -- a typo'd path
    silently linting nothing would defeat the CI gate.
    """
    resolved = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        resolved.append(path)
    findings: list[Finding] = []
    for file in _iter_python_files(resolved):
        findings.extend(lint_file(file, select))
    return sorted(findings)
