"""File walking, noqa filtering, and the programmatic lint entry points."""

from __future__ import annotations

import ast
import re
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from tools.digest_lint.findings import Finding
from tools.digest_lint.rules import ALL_RULES, RULES_BY_CODE, Rule

#: ``# noqa`` / ``# noqa: DGL001`` / ``# noqa: DGL001, DGL004`` -- same
#: grammar as flake8/ruff so editors highlight it consistently.
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?", re.I)


def _select_rules(select: Iterable[str] | None) -> list[Rule]:
    if select is None:
        return list(ALL_RULES)
    rules = []
    for code in select:
        rule = RULES_BY_CODE.get(code.strip().upper())
        if rule is None:
            raise ValueError(
                f"unknown rule {code!r}; known rules: "
                f"{', '.join(sorted(RULES_BY_CODE))}"
            )
        rules.append(rule)
    return rules


def _suppressed(finding: Finding, source_lines: Sequence[str]) -> bool:
    """True when the finding's physical line carries a matching noqa."""
    if not 1 <= finding.line <= len(source_lines):
        return False
    match = _NOQA_RE.search(source_lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:  # bare ``# noqa`` silences every rule
        return True
    return finding.code in {c.strip().upper() for c in codes.split(",")}


def lint_source(
    source: str,
    path: str,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint ``source`` as though it lived at ``path``.

    ``path`` drives rule scoping (a rule scoped to ``core`` fires on any
    path with a ``core`` component), which is what lets the test suite
    exercise rules on fixture snippets under arbitrary virtual paths.
    Syntax errors are reported as a single DGL000 finding rather than an
    exception so one unparsable file cannot hide other files' findings.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="DGL000",
                message=f"syntax error prevents linting: {exc.msg}",
            )
        ]
    parts = PurePosixPath(path.replace("\\", "/")).parts
    source_lines = source.splitlines()
    findings = [
        finding
        for rule in _select_rules(select)
        if rule.applies_to(tuple(parts))
        for finding in rule.check(tree, path)
        if not _suppressed(finding, source_lines)
    ]
    return sorted(findings)


def lint_file(path: Path, select: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path), select)


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and directory trees; directories are walked for ``*.py``.

    Raises ``FileNotFoundError`` for a missing path -- a typo'd path
    silently linting nothing would defeat the CI gate.
    """
    resolved = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        resolved.append(path)
    findings: list[Finding] = []
    for file in _iter_python_files(resolved):
        findings.extend(lint_file(file, select))
    return sorted(findings)
