"""Compatibility shim: :class:`Finding` now lives in the analyzer.

The per-file linter grew into ``tools.digest_analyzer``; the record type
moved with it. This module keeps the historical import path working.
"""

from __future__ import annotations

from tools.digest_analyzer.findings import Finding

__all__ = ["Finding"]
