"""Finding record shared by the rules and the runner."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Sort order (path, line, col, code) matches the report order, so a list
    of findings can be ``sorted()`` directly.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """ruff/flake8-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
