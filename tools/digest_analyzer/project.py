"""Pass 2 substrate: the whole-project view the cross-module rules run on.

:class:`Project` stitches every file's :class:`~tools.digest_analyzer.
extract.FileFacts` into a symbol table (module-qualified function ids),
an approximate call graph, and interprocedural RNG-stream summaries.
The cross-module rules (:mod:`tools.digest_analyzer.rules_project`) are
pure functions over this object — they never re-read source.

Approximations, stated once: the call graph resolves bare names through
each file's import map, ``self.method`` to the enclosing class (with a
unique-method fallback for inherited calls), and re-exported names by
unique final component. Calls through arbitrary locals
(``pool.acquire(...)``) stay unresolved — absent edges make the
reachability rules (DGL012/DGL013) under-report, never over-report.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Callable, Iterable

from tools.digest_analyzer.extract import (
    LOCAL_PREFIX,
    SELF_PREFIX,
    CallFact,
    FileFacts,
    FunctionFact,
)
from tools.digest_analyzer.streams import _PROJECT_ROOTS, sink_label


def module_name(path: str) -> str:
    """Dotted module for a repo-relative path (``src`` layout aware)."""
    parts = list(PurePosixPath(path.replace("\\", "/")).parts)
    if parts and parts[0] in (".", "/"):
        parts = parts[1:]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(parts)


def path_parts(path: str) -> tuple[str, ...]:
    return tuple(PurePosixPath(path.replace("\\", "/")).parts)


@dataclass
class ProjectFunction:
    """One function with its project-global identity."""

    gid: str  # "<module>.<qualname>", e.g. "repro.core.node.DigestNode.register"
    module: str
    qualname: str  # module-relative
    path: str
    fact: FunctionFact

    @property
    def parts(self) -> tuple[str, ...]:
        return path_parts(self.path)

    @property
    def enclosing_class(self) -> str | None:
        if "." in self.qualname:
            return self.qualname.rsplit(".", 1)[0].split(".")[0]
        return None

    @property
    def takes_self(self) -> bool:
        return bool(self.fact.params) and self.fact.params[0] in ("self", "cls")


class Project:
    """Symbol table + call graph over every analyzed file."""

    def __init__(self, facts_by_path: dict[str, FileFacts]) -> None:
        self.facts_by_path = facts_by_path
        self.functions: dict[str, ProjectFunction] = {}
        #: final name component -> gids defining it (re-export fallback)
        self._by_final: dict[str, list[str]] = {}
        #: method name -> gids (inherited self-call fallback)
        self._by_method: dict[str, list[str]] = {}
        #: "module.Class" strings that look like classes (have methods)
        self._classes: set[str] = set()
        for path, facts in facts_by_path.items():
            module = module_name(path)
            for fact in facts.functions:
                if fact.qualname == "<module>":
                    gid = f"{module}.<module>" if module else "<module>"
                else:
                    gid = f"{module}.{fact.qualname}" if module else fact.qualname
                fn = ProjectFunction(
                    gid=gid,
                    module=module,
                    qualname=fact.qualname,
                    path=path,
                    fact=fact,
                )
                self.functions[gid] = fn
                if "." in fact.qualname:
                    head, final = fact.qualname.rsplit(".", 1)
                    self._classes.add(f"{module}.{head.split('.')[0]}")
                    self._by_method.setdefault(final, []).append(gid)
                else:
                    self._by_final.setdefault(fact.qualname, []).append(gid)
        self._adjacency: dict[str, list[tuple[str, CallFact]]] | None = None
        self._rng_summaries: dict[str, dict[str, frozenset[str]]] | None = None

    # -- resolution ----------------------------------------------------

    def resolve_target(
        self, caller: ProjectFunction, target: str
    ) -> tuple[str, bool] | None:
        """Resolve a call-site target to ``(gid, implicit_self)``.

        ``implicit_self`` is True when the call form binds the first
        parameter implicitly (constructor call or ``self.method``), so
        positional arguments shift by one against the callee signature.
        """
        if target.startswith(LOCAL_PREFIX):
            name = target[len(LOCAL_PREFIX) :]
            return self._resolve_dotted(f"{caller.module}.{name}")
        if target.startswith(SELF_PREFIX):
            method = target[len(SELF_PREFIX) :]
            cls = caller.enclosing_class
            if cls is not None:
                gid = f"{caller.module}.{cls}.{method}"
                if gid in self.functions:
                    return gid, True
            candidates = self._by_method.get(method, [])
            if len(candidates) == 1:
                return candidates[0], True
            return None
        if target.startswith(_PROJECT_ROOTS):
            return self._resolve_dotted(target)
        return None

    def _resolve_dotted(self, dotted: str) -> tuple[str, bool] | None:
        if dotted in self.functions:
            return dotted, False
        init = f"{dotted}.__init__"
        if init in self.functions:
            return init, True
        if dotted in self._classes:
            return None  # class without a recognizable __init__
        final = dotted.rsplit(".", 1)[-1]
        functions = self._by_final.get(final, [])
        if len(functions) == 1:
            return functions[0], False
        inits = [
            gid
            for cls in self._classes
            if cls.rsplit(".", 1)[-1] == final
            for gid in (f"{cls}.__init__",)
            if gid in self.functions
        ]
        if len(inits) == 1:
            return inits[0], True
        return None

    @staticmethod
    def bind_param(
        callee: ProjectFunction, slot: int | str, implicit_self: bool
    ) -> str | None:
        """Callee parameter a call-site argument slot lands on."""
        params = callee.fact.params
        if isinstance(slot, str):
            return slot if slot in params else None
        index = slot + (1 if implicit_self and callee.takes_self else 0)
        return params[index] if 0 <= index < len(params) else None

    # -- call graph ----------------------------------------------------

    @property
    def adjacency(self) -> dict[str, list[tuple[str, CallFact]]]:
        if self._adjacency is None:
            self._adjacency = {}
            for fn in self.functions.values():
                edges: list[tuple[str, CallFact]] = []
                for call in fn.fact.calls:
                    resolved = self.resolve_target(fn, call.target)
                    if resolved is not None:
                        edges.append((resolved[0], call))
                self._adjacency[fn.gid] = edges
        return self._adjacency

    def reach(
        self,
        start: str,
        hit: Callable[[ProjectFunction], bool],
        *,
        skip: Callable[[ProjectFunction], bool] | None = None,
        max_depth: int = 12,
    ) -> list[str] | None:
        """Shortest call chain ``[start, ..., target]`` with ``hit(target)``.

        ``skip`` prunes traversal *through* a function (it is neither
        reported nor descended into). The start node is never a hit.
        """
        parents: dict[str, str | None] = {start: None}
        frontier = [start]
        for _ in range(max_depth):
            if not frontier:
                break
            next_frontier: list[str] = []
            for gid in frontier:
                for callee_gid, _call in self.adjacency.get(gid, []):
                    if callee_gid in parents:
                        continue
                    callee = self.functions[callee_gid]
                    if skip is not None and skip(callee):
                        continue
                    parents[callee_gid] = gid
                    if hit(callee):
                        chain = [callee_gid]
                        cursor: str | None = gid
                        while cursor is not None:
                            chain.append(cursor)
                            cursor = parents[cursor]
                        return list(reversed(chain))
                    next_frontier.append(callee_gid)
            frontier = next_frontier
        return None

    # -- RNG stream summaries (DGL011) ---------------------------------

    @property
    def rng_summaries(self) -> dict[str, dict[str, frozenset[str]]]:
        """Per function: rng parameter -> stream labels it reaches.

        Computed to fixpoint so a generator handed down through any
        depth of helpers still accumulates the labels of the sinks it
        ultimately feeds.
        """
        if self._rng_summaries is not None:
            return self._rng_summaries
        summaries: dict[str, dict[str, set[str]]] = {
            fn.gid: {param: set() for param in fn.fact.rng_params}
            for fn in self.functions.values()
        }
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                mine = summaries[fn.gid]
                for call, taint, labels in self._call_labels(fn, summaries):
                    if taint in mine and not labels <= mine[taint]:
                        mine[taint] |= labels
                        changed = True
        self._rng_summaries = {
            gid: {param: frozenset(labels) for param, labels in entry.items()}
            for gid, entry in summaries.items()
        }
        return self._rng_summaries

    def _call_labels(
        self,
        fn: ProjectFunction,
        summaries: dict[str, dict[str, set[str]]],
    ) -> Iterable[tuple[CallFact, str, set[str]]]:
        """``(call, taint, labels)`` for every rng argument in ``fn``."""
        for call in fn.fact.calls:
            if not call.rng_args:
                continue
            label = sink_label(call.target)
            resolved = (
                None if label is not None else self.resolve_target(fn, call.target)
            )
            if resolved is not None:
                gid = self.functions[resolved[0]].gid
                if gid.endswith(".__init__"):
                    gid = gid[: -len(".__init__")]
                label = sink_label(gid)
                if label is not None:
                    resolved = None  # sinks terminate taint
            for slot, taint in call.rng_args:
                if label is not None:
                    yield call, taint, {label}
                elif resolved is not None:
                    callee_gid, implicit_self = resolved
                    callee = self.functions[callee_gid]
                    param = self.bind_param(callee, slot, implicit_self)
                    if param is not None:
                        labels = set(summaries[callee_gid].get(param, ()))
                        if labels:
                            yield call, taint, labels

    def taint_flows(
        self, fn: ProjectFunction
    ) -> dict[str, list[tuple[CallFact, frozenset[str]]]]:
        """Per taint root in ``fn``: the labeled calls it feeds, in order."""
        summaries = {
            gid: {param: set(labels) for param, labels in entry.items()}
            for gid, entry in self.rng_summaries.items()
        }
        flows: dict[str, list[tuple[CallFact, frozenset[str]]]] = {}
        for call, taint, labels in self._call_labels(fn, summaries):
            flows.setdefault(taint, []).append((call, frozenset(labels)))
        return flows
