"""Pass 1: per-file fact extraction (and the per-file rules).

The analyzer never holds every AST at once. Each file is parsed exactly
once and reduced to a :class:`FileFacts` summary — functions, resolved
call edges, direct raises, wall-clock reads, RNG taint flows, trace
span/event call sites, and trace-name literals. The summaries are small,
JSON-serializable (so the on-disk cache can store them keyed by content
hash), and everything pass 2 (:mod:`tools.digest_analyzer.project`)
needs to run the cross-module rules.

The per-file rules (DGL001-DGL008) run here too, during the same parse;
their *raw* findings (pre-suppression, pre-baseline) are cached alongside
the facts. Suppression and baselining are run-time policy, applied by the
engine after pass 2, so cached entries stay valid when only a pragma or
the baseline changes elsewhere.

Name resolution is import-aware but deliberately shallow, matching the
per-file rules: a call is attributed to ``repro.sampling.pool.SamplePool``
only when the receiver is a plain Name/Attribute chain the import map can
root. ``self.method`` calls resolve to the enclosing class; bare names
resolve to module-level definitions. Aliasing through arbitrary locals is
not chased — except for RNG values, whose assignments and aliases *are*
tracked (that is what DGL011 is for).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from tools.digest_analyzer.findings import Finding
from tools.digest_analyzer.rules_local import (
    _WALL_CLOCK_CALLS,
    ALL_RULES,
    Rule,
    _dotted_parts,
    _import_map,
    _resolve,
)

#: Bump to invalidate every cached entry (facts layout or rule change).
ANALYZER_VERSION = "3"

#: Local markers the resolver uses for names pass 2 must finish resolving.
LOCAL_PREFIX = "@local."  # module-level def in the same file
SELF_PREFIX = "@self."  # method on the enclosing class


@dataclass
class CallFact:
    """One resolved call site inside a function."""

    lineno: int
    col: int
    #: canonical dotted target, ``@local.f``, or ``@self.meth``
    target: str
    #: RNG-ish arguments: ``(slot, taint)`` where slot is a 0-based
    #: positional index or a keyword name, taint the local taint root
    rng_args: list[tuple[int | str, str]] = field(default_factory=list)
    #: classification of a ``ctx=`` keyword argument, when present:
    #: ``"name"`` (a Name/Attribute chain — forwarded), ``"call:<target>"``
    #: (built by calling <target>), ``"dict"`` (hand-built literal),
    #: ``"none"`` (explicit None), or ``"other"`` (DGL015 raw material)
    ctx_arg: str | None = None


@dataclass
class FunctionFact:
    """One function or method, summarized."""

    qualname: str  # module-relative, e.g. "ProtocolSampler._handle_timeout"
    lineno: int
    params: list[str]
    rng_params: list[str]
    is_handler: bool
    calls: list[CallFact] = field(default_factory=list)
    #: direct ``raise`` statements: ``(lineno, exception name or "")``
    raises: list[tuple[int, str]] = field(default_factory=list)
    wall_clock: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class TraceCallFact:
    """One tracer call site: span/event/add_event open, end, or set."""

    kind: str  # "span" | "event" | "add_event" | "end" | "set"
    lineno: int
    col: int
    function: str
    #: literal name value, when the name argument was a string constant
    name_literal: str | None = None
    #: dotted resolution of a constant name argument (e.g.
    #: ``repro.obs.schema.SPAN_WALK``); None when literal or unresolvable
    name_ref: str | None = None
    #: attribute keys set at this call
    attr_keys: list[str] = field(default_factory=list)
    #: rendered span variable: assignment target for "span", the span
    #: argument for "end", the receiver for "set"/"add_event"
    span_var: str | None = None


@dataclass
class ImportFact:
    """One import statement, resolved to the absolute module it names.

    Relative imports (``from .batching import ...``) are resolved against
    the importing file's package so layering rules (DGL014) see the same
    dotted module either way. ``type_checking`` marks imports inside an
    ``if TYPE_CHECKING:`` block — they create no runtime dependency, but
    still couple the layers and are reported (with the guard noted).
    """

    lineno: int
    col: int
    #: absolute dotted module referenced (``repro.core.scheduler``)
    module: str
    type_checking: bool = False


@dataclass
class NameLiteralFact:
    """A string literal in a trace-name position (DGL010 raw material).

    ``context`` records the syntactic position: ``name_cmp`` (compared
    against an ``.name`` attribute) or ``spans_named`` (argument to
    ``Trace.spans_named``).
    """

    lineno: int
    col: int
    value: str
    context: str


@dataclass
class FileFacts:
    """Everything pass 2 needs to know about one file."""

    path: str
    functions: list[FunctionFact] = field(default_factory=list)
    trace_calls: list[TraceCallFact] = field(default_factory=list)
    name_literals: list[NameLiteralFact] = field(default_factory=list)
    imports: list[ImportFact] = field(default_factory=list)
    parse_error: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "parse_error": self.parse_error,
            "functions": [
                {
                    "qualname": f.qualname,
                    "lineno": f.lineno,
                    "params": f.params,
                    "rng_params": f.rng_params,
                    "is_handler": f.is_handler,
                    "calls": [
                        {
                            "lineno": c.lineno,
                            "col": c.col,
                            "target": c.target,
                            "rng_args": [list(a) for a in c.rng_args],
                            "ctx_arg": c.ctx_arg,
                        }
                        for c in f.calls
                    ],
                    "raises": [list(r) for r in f.raises],
                    "wall_clock": [list(w) for w in f.wall_clock],
                }
                for f in self.functions
            ],
            "trace_calls": [
                {
                    "kind": t.kind,
                    "lineno": t.lineno,
                    "col": t.col,
                    "function": t.function,
                    "name_literal": t.name_literal,
                    "name_ref": t.name_ref,
                    "attr_keys": t.attr_keys,
                    "span_var": t.span_var,
                }
                for t in self.trace_calls
            ],
            "name_literals": [
                {
                    "lineno": n.lineno,
                    "col": n.col,
                    "value": n.value,
                    "context": n.context,
                }
                for n in self.name_literals
            ],
            "imports": [
                {
                    "lineno": i.lineno,
                    "col": i.col,
                    "module": i.module,
                    "type_checking": i.type_checking,
                }
                for i in self.imports
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FileFacts":
        facts = cls(path=data["path"], parse_error=data["parse_error"])
        for f in data["functions"]:
            fact = FunctionFact(
                qualname=f["qualname"],
                lineno=f["lineno"],
                params=list(f["params"]),
                rng_params=list(f["rng_params"]),
                is_handler=f["is_handler"],
                raises=[(r[0], r[1]) for r in f["raises"]],
                wall_clock=[(w[0], w[1]) for w in f["wall_clock"]],
            )
            fact.calls = [
                CallFact(
                    lineno=c["lineno"],
                    col=c["col"],
                    target=c["target"],
                    rng_args=[(a[0], a[1]) for a in c["rng_args"]],
                    ctx_arg=c.get("ctx_arg"),
                )
                for c in f["calls"]
            ]
            facts.functions.append(fact)
        facts.trace_calls = [TraceCallFact(**t) for t in data["trace_calls"]]
        facts.name_literals = [
            NameLiteralFact(**n) for n in data["name_literals"]
        ]
        facts.imports = [ImportFact(**i) for i in data.get("imports", [])]
        return facts


#: naming convention for scheduled-delivery entry points (mirrors DGL006)
_HANDLER_PREFIXES = ("_handle", "_deliver", "_receive", "_on_")

#: tracer receivers: last component of the receiver chain must hit this
_TRACER_HINT = "tracer"
_SPAN_HINT = "span"


def _render(node: ast.expr) -> str | None:
    """Best-effort source rendering of a Name/Attribute/Subscript chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _render(node.value)
        return None if base is None else f"{base}.{node.attr}"
    if isinstance(node, ast.Subscript):
        base = _render(node.value)
        return None if base is None else f"{base}[...]"
    return None


def _is_rngish_param(arg: ast.arg) -> bool:
    """Generator-annotated, or named by the ``rng`` convention."""
    if arg.arg == "rng" or arg.arg.endswith("_rng"):
        return True
    if arg.annotation is not None:
        try:
            rendered = ast.unparse(arg.annotation)
        except Exception:  # pragma: no cover - malformed annotation
            return False
        return "Generator" in rendered
    return False


class _FunctionExtractor:
    """Walks one function body; collects calls, raises, taints, spans."""

    def __init__(
        self,
        fact: FunctionFact,
        imports: dict[str, str],
        module_defs: frozenset[str],
        facts: FileFacts,
    ) -> None:
        self.fact = fact
        self.imports = imports
        self.module_defs = module_defs
        self.facts = facts
        #: local taint: alias name -> taint root name
        self.taint: dict[str, str] = {p: p for p in fact.rng_params}
        self._fresh = 0

    # -- resolution ----------------------------------------------------

    def _resolve_call_target(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            if func.id in self.imports:
                return self.imports[func.id]
            if func.id in self.module_defs:
                return LOCAL_PREFIX + func.id
            return None
        if isinstance(func, ast.Attribute):
            parts = _dotted_parts(func)
            if parts is None:
                return None
            if parts[0] == "self" and len(parts) == 2:
                return SELF_PREFIX + parts[1]
            resolved = _resolve(func, self.imports)
            return resolved
        return None

    def _taint_of(self, node: ast.expr) -> str | None:
        """Taint root of an expression used as a call argument."""
        if isinstance(node, ast.Name):
            return self.taint.get(node.id)
        if isinstance(node, ast.Call):
            target = self._resolve_call_target(node.func)
            if target == "numpy.random.default_rng":
                self._fresh += 1
                return f"<fresh#{self._fresh}>"
        return None

    # -- statement walk ------------------------------------------------

    def walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are extracted as their own functions
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = ""
            if isinstance(exc, ast.Name):
                name = exc.id
            elif isinstance(exc, ast.Attribute):
                name = exc.attr
            self.fact.raises.append((stmt.lineno, name))
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._visit_assignment(stmt)
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                self._visit_stmt(node)
            else:
                self._visit_expr_tree(node)

    def _visit_assignment(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        value = stmt.value
        if value is None:
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        simple = [t.id for t in targets if isinstance(t, ast.Name)]
        # rng taint: fresh construction or alias of a tainted local
        taint = self._taint_of(value)
        for name in simple:
            if taint is not None:
                self.taint[name] = taint
            else:
                self.taint.pop(name, None)
        # span variable: record the assignment target on the trace fact
        if isinstance(value, ast.Call):
            trace = self._match_trace_call(value)
            if trace is not None and trace.kind == "span":
                rendered = [_render(t) for t in targets]
                trace.span_var = next(
                    (r for r in rendered if r is not None), None
                )

    def _visit_expr_tree(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                self._visit_call(child)
            elif isinstance(child, ast.Compare):
                self._visit_compare(child)

    # -- call handling -------------------------------------------------

    def _visit_call(self, call: ast.Call) -> None:
        target = self._resolve_call_target(call.func)
        if target is not None:
            if target in _WALL_CLOCK_CALLS:
                self.fact.wall_clock.append((call.lineno, target))
            fact = CallFact(lineno=call.lineno, col=call.col_offset + 1, target=target)
            for index, arg in enumerate(call.args):
                taint = self._taint_of(arg)
                if taint is not None:
                    fact.rng_args.append((index, taint))
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                taint = self._taint_of(keyword.value)
                if taint is not None:
                    fact.rng_args.append((keyword.arg, taint))
                if keyword.arg == "ctx":
                    fact.ctx_arg = self._classify_ctx(keyword.value)
            self.fact.calls.append(fact)
        trace = self._match_trace_call(call)
        if trace is not None and trace not in self.facts.trace_calls:
            self.facts.trace_calls.append(trace)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "spans_named"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            self.facts.name_literals.append(
                NameLiteralFact(
                    lineno=call.args[0].lineno,
                    col=call.args[0].col_offset + 1,
                    value=call.args[0].value,
                    context="spans_named",
                )
            )

    def _classify_ctx(self, value: ast.expr) -> str:
        """Summarize what a ``ctx=`` keyword argument is (DGL015 fuel)."""
        if isinstance(value, ast.Constant) and value.value is None:
            return "none"
        if isinstance(value, (ast.Name, ast.Attribute)):
            return "name" if _render(value) is not None else "other"
        if isinstance(value, ast.Dict):
            return "dict"
        if isinstance(value, ast.Call):
            target = self._resolve_call_target(value.func)
            if target is None:
                target = _render(value.func) or "?"
            return f"call:{target}"
        return "other"

    _trace_seen: dict[int, TraceCallFact] = {}

    def _match_trace_call(self, call: ast.Call) -> TraceCallFact | None:
        """Recognize tracer call sites; memoized per Call node so the
        assignment pass and the expression pass agree on one fact."""
        key = id(call)
        if key in self._trace_seen:
            return self._trace_seen[key]
        fact = self._build_trace_call(call)
        if fact is not None:
            self._trace_seen[key] = fact
        return fact

    def _build_trace_call(self, call: ast.Call) -> TraceCallFact | None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = _render(func.value) or ""
        receiver_last = receiver.rsplit(".", 1)[-1].split("[", 1)[0]
        kind: str | None = None
        if func.attr in ("span", "event") and _TRACER_HINT in receiver_last:
            kind = func.attr
        elif func.attr == "add_event" and _SPAN_HINT in receiver_last:
            kind = "add_event"
        elif func.attr == "end" and _TRACER_HINT in receiver_last:
            kind = "end"
        elif func.attr == "set" and _SPAN_HINT in receiver_last:
            kind = "set"
        elif func.attr == "append" and receiver_last == "events":
            # the hot-path fast form of add_event:
            #   <span>.events.append(TraceEvent(time, NAME, {...}))
            # recognized so inlined emitters stay schema-checked
            return self._build_fast_append(call, receiver)
        if kind is None:
            return None
        fact = TraceCallFact(
            kind=kind,
            lineno=call.lineno,
            col=call.col_offset + 1,
            function=self.fact.qualname,
        )
        skip_keys = {
            "span": ("time", "parent"),
            "event": ("time", "span"),
            "add_event": (),
            "end": ("time",),
            "set": (),
        }[kind]
        fact.attr_keys = [
            k.arg
            for k in call.keywords
            if k.arg is not None and k.arg not in skip_keys
        ]
        name_arg: ast.expr | None = None
        if kind in ("span", "event") and call.args:
            name_arg = call.args[0]
        elif kind == "add_event" and len(call.args) >= 2:
            name_arg = call.args[1]
        if name_arg is not None:
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                fact.name_literal = name_arg.value
            else:
                fact.name_ref = _resolve(name_arg, self.imports)
        if kind == "end" and call.args:
            fact.span_var = _render(call.args[0])
        elif kind in ("add_event", "set"):
            fact.span_var = receiver
        return fact

    def _build_fast_append(
        self, call: ast.Call, receiver: str
    ) -> TraceCallFact | None:
        """``<span>.events.append(TraceEvent(time, NAME, {...}))``.

        Only the fully-literal shape is summarized (a dict built
        elsewhere is opaque to static checking); the owner of the
        ``.events`` list must look like a span variable, mirroring the
        ``add_event`` receiver convention.
        """
        owner = receiver.rsplit(".", 1)[0] if "." in receiver else ""
        owner_last = owner.rsplit(".", 1)[-1].split("[", 1)[0]
        if _SPAN_HINT not in owner_last or len(call.args) != 1:
            return None
        inner = call.args[0]
        if not isinstance(inner, ast.Call):
            return None
        ctor = inner.func
        ctor_name = (
            ctor.id
            if isinstance(ctor, ast.Name)
            else ctor.attr if isinstance(ctor, ast.Attribute) else None
        )
        if ctor_name != "TraceEvent" or len(inner.args) < 2:
            return None
        fact = TraceCallFact(
            kind="add_event",
            lineno=call.lineno,
            col=call.col_offset + 1,
            function=self.fact.qualname,
            span_var=owner,
        )
        name_arg = inner.args[1]
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            fact.name_literal = name_arg.value
        else:
            fact.name_ref = _resolve(name_arg, self.imports)
        if len(inner.args) >= 3 and isinstance(inner.args[2], ast.Dict):
            fact.attr_keys = [
                key.value
                for key in inner.args[2].keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            ]
        return fact

    # -- comparisons (DGL010 raw material) -----------------------------

    def _visit_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        against_name = any(
            isinstance(op, ast.Attribute) and op.attr == "name"
            for op in operands
        )
        if not against_name:
            return
        for op in operands:
            candidates: list[ast.expr] = [op]
            if isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                candidates = list(op.elts)
            for candidate in candidates:
                if isinstance(candidate, ast.Constant) and isinstance(
                    candidate.value, str
                ):
                    self.facts.name_literals.append(
                        NameLiteralFact(
                            lineno=candidate.lineno,
                            col=candidate.col_offset + 1,
                            value=candidate.value,
                            context="name_cmp",
                        )
                    )


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Every def in the module with its module-relative qualname."""

    def walk(
        body: list[ast.stmt], prefix: str
    ) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}" if prefix else node.name
                yield qual, node
                yield from walk(node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                yield from walk(
                    node.body, f"{prefix}{node.name}." if prefix else f"{node.name}."
                )
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # defs guarded by TYPE_CHECKING / try-import still count
                yield from walk(node.body, prefix)

    yield from walk(tree.body, "")


def _file_package(path: str) -> str:
    """Dotted package containing ``path`` (``src`` layout aware).

    ``src/repro/protocol/runtime.py`` -> ``repro.protocol``; for an
    ``__init__.py`` the module *is* the package. Used to resolve
    relative imports to absolute modules.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p not in (".", "")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    if parts[-1].endswith(".py"):
        parts = parts[:-1]  # for __init__.py the directory is the package
    return ".".join(parts)


def _collect_imports(tree: ast.Module, path: str) -> list[ImportFact]:
    """Every import in the file, resolved to absolute dotted modules.

    Walks compound statements (functions, ``try``, conditionals) so
    deferred and guarded imports are seen too; imports under an
    ``if TYPE_CHECKING:`` test carry ``type_checking=True``.
    """
    package = _file_package(path)
    out: list[ImportFact] = []

    def is_type_checking(test: ast.expr) -> bool:
        rendered = _render(test)
        return rendered in ("TYPE_CHECKING", "typing.TYPE_CHECKING")

    def visit(body: list[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    out.append(
                        ImportFact(
                            stmt.lineno, stmt.col_offset + 1, alias.name, guarded
                        )
                    )
            elif isinstance(stmt, ast.ImportFrom):
                module = stmt.module or ""
                if stmt.level:
                    base = package.split(".") if package else []
                    drop = stmt.level - 1
                    base = base[: len(base) - drop] if drop else base
                    module = ".".join(base + ([module] if module else []))
                if module:
                    out.append(
                        ImportFact(
                            stmt.lineno, stmt.col_offset + 1, module, guarded
                        )
                    )
            elif isinstance(stmt, ast.If):
                visit(stmt.body, guarded or is_type_checking(stmt.test))
                visit(stmt.orelse, guarded)
            else:
                fields = ("body", "orelse", "finalbody", "handlers", "cases")
                for field_name in fields:
                    children = getattr(stmt, field_name, None)
                    if not children:
                        continue
                    for child in children:
                        if isinstance(child, (ast.excepthandler, ast.match_case)):
                            visit(child.body, guarded)
                        elif isinstance(child, ast.stmt):
                            visit([child], guarded)

    visit(tree.body, False)
    return out


def extract_file_facts(
    source: str, path: str
) -> tuple[FileFacts, list[Finding]]:
    """Parse ``source`` once; return its facts and raw per-file findings.

    Syntax errors (and the null-byte/decoding failures ``ast.parse``
    raises as ``ValueError``) become a single DGL000 finding and an
    empty, ``parse_error``-marked facts record — one broken file must
    never abort the whole run.
    """
    facts = FileFacts(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        facts.parse_error = True
        return facts, [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="DGL000",
                message=f"syntax error prevents analysis: {exc.msg}",
            )
        ]
    except ValueError as exc:
        facts.parse_error = True
        return facts, [
            Finding(
                path=path,
                line=1,
                col=1,
                code="DGL000",
                message=f"unparseable file: {exc}",
            )
        ]

    facts.imports = _collect_imports(tree, path)
    imports = _import_map(tree)
    module_defs = frozenset(
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    )

    # module level executes too: wrap the module body as "<module>"
    module_fact = FunctionFact(
        qualname="<module>",
        lineno=1,
        params=[],
        rng_params=[],
        is_handler=False,
    )
    extractor = _FunctionExtractor(module_fact, imports, module_defs, facts)
    extractor._trace_seen = {}
    extractor.walk(tree.body)
    facts.functions.append(module_fact)

    for qualname, node in _iter_functions(tree):
        ordered = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        fact = FunctionFact(
            qualname=qualname,
            lineno=node.lineno,
            params=[a.arg for a in ordered],
            rng_params=[a.arg for a in ordered if _is_rngish_param(a)],
            is_handler=node.name.startswith(_HANDLER_PREFIXES),
        )
        extractor = _FunctionExtractor(fact, imports, module_defs, facts)
        extractor._trace_seen = {}
        extractor.walk(node.body)
        facts.functions.append(fact)

    findings = _run_local_rules(tree, path)
    return facts, findings


def _run_local_rules(
    tree: ast.Module, path: str, rules: tuple[Rule, ...] = ALL_RULES
) -> list[Finding]:
    """The migrated per-file rules (DGL001-DGL008), unfiltered."""
    from pathlib import PurePosixPath

    parts = tuple(PurePosixPath(path.replace("\\", "/")).parts)
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(parts):
            findings.extend(rule.check(tree, path))
    return sorted(findings)
