"""Cross-module rules (DGL009-DGL015): pass 2 over the project view.

Unlike the per-file rules these need the whole program: the declared
trace schema, the call graph, or the interprocedural RNG summaries.
Each rule is a pure function over (:class:`Project`, :class:`SchemaFacts`)
returning findings; nothing here touches the filesystem.
"""

from __future__ import annotations

from tools.digest_analyzer.extract import TraceCallFact
from tools.digest_analyzer.findings import Finding
from tools.digest_analyzer.project import (
    Project,
    ProjectFunction,
    module_name,
    path_parts,
)
from tools.digest_analyzer.rules_local import _SIM_SCOPES
from tools.digest_analyzer.schema_facts import SCHEMA_MODULE, SchemaFacts


def _in_src_repro(parts: tuple[str, ...]) -> bool:
    """Shipping simulation code: the ``repro`` package, not its tests."""
    return (
        "repro" in parts
        and "tests" not in parts
        and "benchmarks" not in parts
    )


class ProjectRule:
    """Base: code/name/docs plus the project-wide check hook."""

    code: str = "DGL0XX"
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        raise NotImplementedError

    def _finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path, line=line, col=col, code=self.code, message=message
        )


class TraceSchemaConformance(ProjectRule):
    """DGL009: every span/event call site matches the declared schema."""

    code = "DGL009"
    name = "trace-schema-conformance"
    summary = (
        "tracer.span()/event() call sites must use declared "
        "repro.obs.schema names and declared attribute keys"
    )
    rationale = (
        "The trace schema is the contract between producers and every "
        "trace consumer (RunMetrics derivation, the trace CLI, RESULTS "
        "collection). An undeclared name or attribute key is producer/"
        "consumer drift that corrupts derived results without failing."
    )

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        constants_by_value = {v: k for k, v in schema.constants.items()}
        findings: list[Finding] = []
        for path, facts in project.facts_by_path.items():
            if not _in_src_repro(path_parts(path)):
                continue
            named = [
                t
                for t in facts.trace_calls
                if t.kind in ("span", "event", "add_event")
            ]
            for call in named:
                findings.extend(
                    self._check_named_call(
                        call, path, schema, constants_by_value
                    )
                )
            findings.extend(self._check_lifecycles(facts, path, schema))
        return findings

    def _check_named_call(
        self,
        call: TraceCallFact,
        path: str,
        schema: SchemaFacts,
        constants_by_value: dict[str, str],
    ) -> list[Finding]:
        what = "span" if call.kind == "span" else "event"
        name = self._resolved_name(call, schema)
        if call.name_literal is not None:
            if call.name_literal in schema.names:
                constant = constants_by_value.get(call.name_literal, "?")
                return [
                    self._finding(
                        path,
                        call.lineno,
                        call.col,
                        f"hard-coded {what} name {call.name_literal!r}; "
                        f"use {SCHEMA_MODULE}.{constant}",
                    )
                ]
            return [
                self._finding(
                    path,
                    call.lineno,
                    call.col,
                    f"undeclared {what} name {call.name_literal!r}; "
                    f"declare it in {SCHEMA_MODULE}",
                )
            ]
        if name is None:
            shown = call.name_ref or "<dynamic expression>"
            return [
                self._finding(
                    path,
                    call.lineno,
                    call.col,
                    f"{what} name must be a {SCHEMA_MODULE} constant "
                    f"(got {shown})",
                )
            ]
        findings: list[Finding] = []
        shape = schema.shape_for(name)
        if shape is None:
            findings.append(
                self._finding(
                    path,
                    call.lineno,
                    call.col,
                    f"{SCHEMA_MODULE} constant {call.name_ref} has no "
                    f"registered schema entry for {name!r}",
                )
            )
            return findings
        if shape.kind != what:
            findings.append(
                self._finding(
                    path,
                    call.lineno,
                    call.col,
                    f"{name!r} is declared as a {shape.kind}, "
                    f"but recorded here as a {what}",
                )
            )
            return findings
        undeclared = [k for k in call.attr_keys if k not in shape.attrs]
        if undeclared:
            findings.append(
                self._finding(
                    path,
                    call.lineno,
                    call.col,
                    f"undeclared attribute keys on {what} {name!r}: "
                    f"{', '.join(sorted(undeclared))} "
                    f"(declare them in {SCHEMA_MODULE})",
                )
            )
        if what == "event":
            missing = [k for k in shape.required if k not in call.attr_keys]
            if missing:
                findings.append(
                    self._finding(
                        path,
                        call.lineno,
                        call.col,
                        f"event {name!r} missing required attribute keys: "
                        f"{', '.join(missing)}",
                    )
                )
        return findings

    @staticmethod
    def _resolved_name(call: TraceCallFact, schema: SchemaFacts) -> str | None:
        if call.name_literal is not None:
            return call.name_literal
        return schema.resolve_ref(call.name_ref)

    def _check_lifecycles(
        self, facts, path: str, schema: SchemaFacts
    ) -> list[Finding]:
        """Span opens joined with same-function end/set on the same var:
        undeclared keys at the end/set site, and — when the full
        lifecycle is visible (open + end in one function) — required
        keys present over the union."""
        findings: list[Finding] = []
        opens: dict[tuple[str, str], TraceCallFact] = {}
        for call in facts.trace_calls:
            if call.kind == "span" and call.span_var:
                opens[(call.function, call.span_var)] = call
        closures: dict[tuple[str, str], list[TraceCallFact]] = {}
        for call in facts.trace_calls:
            if call.kind in ("end", "set") and call.span_var:
                closures.setdefault(
                    (call.function, call.span_var), []
                ).append(call)
        for key, open_call in opens.items():
            name = self._resolved_name(open_call, schema)
            if name is None:
                continue
            shape = schema.spans.get(name)
            if shape is None:
                continue
            seen = set(open_call.attr_keys)
            ended = False
            for closure in closures.get(key, []):
                ended = ended or closure.kind == "end"
                seen.update(closure.attr_keys)
                undeclared = [
                    k for k in closure.attr_keys if k not in shape.attrs
                ]
                if undeclared:
                    findings.append(
                        self._finding(
                            path,
                            closure.lineno,
                            closure.col,
                            f"undeclared attribute keys on span {name!r}: "
                            f"{', '.join(sorted(undeclared))} "
                            f"(declare them in {SCHEMA_MODULE})",
                        )
                    )
            if ended:
                missing = [k for k in shape.required if k not in seen]
                if missing:
                    findings.append(
                        self._finding(
                            path,
                            open_call.lineno,
                            open_call.col,
                            f"span {name!r} lifecycle missing required "
                            f"attribute keys: {', '.join(missing)}",
                        )
                    )
        return findings


class TraceNameLiterals(ProjectRule):
    """DGL010: consumers must reference schema constants, not literals."""

    code = "DGL010"
    name = "trace-name-literals"
    summary = (
        "trace-name string literals in consuming code (span.name "
        "comparisons, spans_named(...)) must be schema constants"
    )
    rationale = (
        "A consumer comparing against a hard-coded trace name keeps "
        "'working' after the producer renames the span — it just "
        "matches nothing and reports zeros. Referencing the constant "
        "makes the rename a single-point edit the analyzer can see."
    )

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        constants_by_value = {v: k for k, v in schema.constants.items()}
        findings: list[Finding] = []
        for path, facts in project.facts_by_path.items():
            parts = path_parts(path)
            if "tests" in parts:
                continue
            for literal in facts.name_literals:
                if literal.value not in schema.names:
                    continue
                constant = constants_by_value.get(literal.value, "?")
                where = (
                    "spans_named(...)"
                    if literal.context == "spans_named"
                    else ".name comparison"
                )
                findings.append(
                    self._finding(
                        path,
                        literal.lineno,
                        literal.col,
                        f"hard-coded trace name {literal.value!r} in "
                        f"{where}; use {SCHEMA_MODULE}.{constant}",
                    )
                )
        return findings


class RngStreamCrossing(ProjectRule):
    """DGL011: one generator must not feed two named RNG streams."""

    code = "DGL011"
    name = "rng-stream-crossing"
    summary = (
        "a np.random.Generator must stay inside one named stream "
        "(walk/fault/churn/pool/engine/topology/data)"
    )
    rationale = (
        "Reproducibility is per-stream: each subsystem owns a seeded "
        "generator, so adding a fault draw cannot shift walk draws. A "
        "generator that reaches sinks of two different streams (however "
        "many helpers deep) interleaves their draw sequences and makes "
        "pinned results depend on unrelated subsystems."
    )

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.functions.values():
            if not _in_src_repro(fn.parts):
                continue
            for taint, flow in project.taint_flows(fn).items():
                seen: set[str] = set()
                via: dict[str, str] = {}
                for call, labels in flow:
                    if len(labels) >= 2:
                        continue  # the crossing lives inside the callee
                    fresh = labels - seen
                    if fresh and seen:
                        label = next(iter(fresh))
                        previous = sorted(seen)
                        findings.append(
                            self._finding(
                                fn.path,
                                call.lineno,
                                call.col,
                                f"generator {self._describe(taint)} feeds "
                                f"the {label!r} stream here but already "
                                f"feeds {', '.join(repr(p) for p in previous)} "
                                f"(via {via[previous[0]]}); "
                                "use one seeded stream per subsystem",
                            )
                        )
                    for label in labels:
                        via.setdefault(label, call.target.lstrip("@"))
                    seen |= labels
        return findings

    @staticmethod
    def _describe(taint: str) -> str:
        if taint.startswith("<fresh"):
            return "created inline"
        return repr(taint)


class WallClockReachability(ProjectRule):
    """DGL012: simulation code must not reach a wall-clock reader."""

    code = "DGL012"
    name = "wall-clock-reachability"
    summary = (
        "simulation-scoped code must not reach wall-clock time, "
        "even through helpers outside the simulation packages"
    )
    rationale = (
        "DGL002 catches time.time() written directly in simulation "
        "modules; a helper one package over reintroduces the bug "
        "invisibly. The call graph closes the loophole: any chain from "
        "simulated time into a wall-clock reader is nondeterminism."
    )

    #: profiling is explicitly allowed to read the wall clock
    _EXEMPT_MODULE_PREFIXES = ("repro.obs.profile",)

    def _sim_scoped(self, fn: ProjectFunction) -> bool:
        parts = fn.parts
        return _in_src_repro(parts) and bool(_SIM_SCOPES.intersection(parts))

    def _exempt(self, fn: ProjectFunction) -> bool:
        if fn.module.startswith(self._EXEMPT_MODULE_PREFIXES):
            return True
        parts = fn.parts
        return "tests" in parts or "benchmarks" in parts

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.functions.values():
            if not self._sim_scoped(fn):
                continue
            chain = project.reach(
                fn.gid,
                hit=lambda callee: bool(callee.fact.wall_clock)
                and not self._exempt(callee),
                # sim-scoped intermediates get their own finding; exempt
                # modules absorb the chain
                skip=lambda callee: self._sim_scoped(callee)
                or self._exempt(callee),
            )
            if chain is None:
                continue
            target = project.functions[chain[-1]]
            _line, clock = target.fact.wall_clock[0]
            hops = " -> ".join(chain[1:])
            line, col = self._call_site(project, fn, chain[1])
            findings.append(
                self._finding(
                    fn.path,
                    line,
                    col,
                    f"simulation code reaches wall clock {clock}() "
                    f"via {hops}; thread simulated time instead",
                )
            )
        return findings

    @staticmethod
    def _call_site(
        project: Project, fn: ProjectFunction, first_hop: str
    ) -> tuple[int, int]:
        for callee_gid, call in project.adjacency.get(fn.gid, []):
            if callee_gid == first_hop:
                return call.lineno, call.col
        return fn.fact.lineno, 1


class HandlerRaiseReachability(ProjectRule):
    """DGL013: protocol handlers must not reach a raising helper."""

    code = "DGL013"
    name = "handler-raise-reachability"
    summary = (
        "scheduled protocol handlers must not reach helpers that "
        "raise — failures must be recorded, not thrown into the scheduler"
    )
    rationale = (
        "DGL006 catches a raise written directly in a handler body; "
        "moving the raise one helper down hides it while the scheduler "
        "still unwinds mid-tick and corrupts in-flight protocol state. "
        "Reachability over the call graph closes the indirection."
    )

    #: raises that are contracts, not runtime failures
    _EXEMPT_EXCEPTIONS = frozenset({"NotImplementedError", "AssertionError"})

    def _raises(self, fn: ProjectFunction) -> bool:
        if fn.qualname.rsplit(".", 1)[-1].startswith("__"):
            return False  # constructor/dunder validation is DGL003 land
        return any(
            name not in self._EXEMPT_EXCEPTIONS for _line, name in fn.fact.raises
        )

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.functions.values():
            if not fn.fact.is_handler or not _in_src_repro(fn.parts):
                continue
            chain = project.reach(
                fn.gid,
                hit=lambda callee: self._raises(callee)
                and _in_src_repro(callee.parts),
                # a handler in the chain owns its own finding
                skip=lambda callee: callee.fact.is_handler,
            )
            if chain is None:
                continue
            target = project.functions[chain[-1]]
            line, exc = next(
                (l, n)
                for l, n in target.fact.raises
                if n not in self._EXEMPT_EXCEPTIONS
            )
            hops = " -> ".join(chain[1:])
            site_line, site_col = WallClockReachability._call_site(
                project, fn, chain[1]
            )
            findings.append(
                self._finding(
                    fn.path,
                    site_line,
                    site_col,
                    f"handler {fn.qualname} reaches raise {exc or '?'} "
                    f"({target.path}:{line}) via {hops}; record the "
                    "failure on the walk state instead",
                )
            )
        return findings


class LayeringConformance(ProjectRule):
    """DGL014: imports must respect the declared layer direction."""

    code = "DGL014"
    name = "layering-conformance"
    summary = (
        "repro.protocol must not import repro.core, and repro.network "
        "must not import repro.protocol (stack direction is one-way)"
    )
    rationale = (
        "The protocol stack layers one way: core orchestrates protocol, "
        "protocol runs over network primitives. An import against that "
        "direction (protocol reaching up into core, network reaching up "
        "into protocol) couples a lower layer to its callers, reintroduces "
        "the monolith the stack was split to remove, and blocks swapping "
        "a layer (e.g. an asyncio Transport) independently. TYPE_CHECKING "
        "guards don't exempt a crossing: type-only coupling still pins "
        "the layer boundary."
    )

    #: (importing-layer prefix, forbidden-target prefix)
    _FORBIDDEN: tuple[tuple[str, str], ...] = (
        ("repro.protocol", "repro.core"),
        ("repro.network", "repro.protocol"),
    )

    @staticmethod
    def _within(module: str, prefix: str) -> bool:
        return module == prefix or module.startswith(prefix + ".")

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        findings: list[Finding] = []
        for path, facts in project.facts_by_path.items():
            if not _in_src_repro(path_parts(path)):
                continue
            module = module_name(path)
            layers = [
                (low, high)
                for low, high in self._FORBIDDEN
                if self._within(module, low)
            ]
            if not layers:
                continue
            for imp in facts.imports:
                for low, high in layers:
                    if not self._within(imp.module, high):
                        continue
                    guard = (
                        " (TYPE_CHECKING-guarded, still a layer crossing)"
                        if imp.type_checking
                        else ""
                    )
                    findings.append(
                        self._finding(
                            path,
                            imp.lineno,
                            imp.col,
                            f"layer violation: {low} module imports "
                            f"{imp.module!r}{guard}; the stack direction "
                            f"is {high} -> {low}, invert the dependency",
                        )
                    )
        return findings


class ContextPropagation(ProjectRule):
    """DGL015: message construction must thread TraceContext properly."""

    code = "DGL015"
    name = "context-propagation"
    summary = (
        "walk-message constructors must thread a forwarded TraceContext; "
        "minting is reserved to the lifecycle's sanctioned mint_context"
    )
    rationale = (
        "Causal assembly joins hop segments to walks by the context the "
        "messages carried. A call site that drops ctx breaks the chain "
        "silently (the trace just loses hops); one that hand-builds or "
        "re-mints context mid-flight attaches hops to the wrong tree. "
        "Both corrupt the critical-path report without failing anything "
        "at runtime, so the discipline is enforced statically: forward "
        "the incoming message's ctx unchanged, and mint only from the "
        "origin-side supervisor."
    )

    #: the protocol messages that carry per-walk causal context; their
    #: construction must thread a forwarded ctx (WeightAdvertisement is
    #: control traffic — not caused by any one walk — so ctx=None there
    #: is legitimate and it is deliberately absent from this set)
    _WALK_MESSAGE_CTORS = frozenset(
        {"WalkToken", "BounceBack", "SampleReturn"}
    )
    _MESSAGES_MODULE = "repro.protocol.messages"
    _MINT = "repro.protocol.messages.mint_context"
    #: modules allowed to mint fresh context (the stamping authority and
    #: the definition site itself)
    _MINT_AUTHORITY = ("repro.protocol.lifecycle", _MESSAGES_MODULE)

    def _ctor_name(self, target: str) -> str | None:
        """The walk-message class a call target names, if any."""
        final = target.rsplit(".", 1)[-1]
        if final not in self._WALK_MESSAGE_CTORS:
            return None
        if target.startswith("repro.") or target.startswith("@"):
            return final
        return None

    def check(self, project: Project, schema: SchemaFacts) -> list[Finding]:
        findings: list[Finding] = []
        for fn in project.functions.values():
            if not _in_src_repro(fn.parts):
                continue
            if fn.module == self._MESSAGES_MODULE:
                continue  # the definition site may do as it pleases
            for call in fn.fact.calls:
                findings.extend(self._check_call(fn, call))
        return findings

    def _check_call(self, fn: ProjectFunction, call) -> list[Finding]:
        target = call.target
        # fresh-context creation outside the sanctioned channel
        if target.rsplit(".", 1)[-1] == "TraceContext" and target.startswith(
            ("repro.", "@")
        ):
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    "direct TraceContext(...) construction; fresh context "
                    f"comes only from {self._MINT} (and only the "
                    "lifecycle mints)",
                )
            ]
        if target == self._MINT and not fn.module.startswith(
            self._MINT_AUTHORITY
        ):
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"mint_context() called from {fn.module}; only the "
                    "walk lifecycle is the stamping authority — forward "
                    "the incoming message's ctx instead",
                )
            ]
        ctor = self._ctor_name(target)
        if ctor is None:
            return []
        # a walk-message construction site: ctx must be forwarded
        if call.ctx_arg is None:
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"{ctor}(...) constructed without ctx=; thread the "
                    "walk's TraceContext through every message it sends",
                )
            ]
        if call.ctx_arg == "dict":
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"{ctor}(...) given a hand-built ctx dict; pass the "
                    "TraceContext forwarded from the record or message",
                )
            ]
        if call.ctx_arg == "none":
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"{ctor}(...) explicitly drops context (ctx=None); "
                    "forward the incoming ctx so causal assembly can "
                    "join this hop to its walk",
                )
            ]
        if call.ctx_arg.startswith("call:"):
            built_by = call.ctx_arg[len("call:") :]
            if built_by == self._MINT and fn.module.startswith(
                self._MINT_AUTHORITY
            ):
                return []
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"{ctor}(...) re-mints context at the construction "
                    f"site (ctx={built_by}(...)); forward the incoming "
                    "ctx unchanged",
                )
            ]
        if call.ctx_arg == "other":
            return [
                self._finding(
                    fn.path,
                    call.lineno,
                    call.col,
                    f"{ctor}(...) ctx= is not a plain forwarded "
                    "name/attribute; forward the incoming ctx unchanged",
                )
            ]
        return []  # "name": a forwarded context


ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (
    TraceSchemaConformance(),
    TraceNameLiterals(),
    RngStreamCrossing(),
    WallClockReachability(),
    HandlerRaiseReachability(),
    LayeringConformance(),
    ContextPropagation(),
)

PROJECT_RULES_BY_CODE: dict[str, ProjectRule] = {
    rule.code: rule for rule in ALL_PROJECT_RULES
}
