"""SARIF 2.1.0 rendering for GitHub code scanning.

One run, one tool ("digest-analyzer"), one result per finding. Only the
subset of SARIF that code scanning actually consumes is emitted: rule
metadata (id, short/full description), and per-result message + physical
location. Paths are repo-relative with forward slashes, as the upload
action expects.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from tools.digest_analyzer.findings import Finding, _normalize_path

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "digest-analyzer"
TOOL_URI = "https://github.com/paper-repro/digest/tree/main/tools/digest_analyzer"


def render_sarif(
    findings: Iterable[Finding],
    rule_docs: Mapping[str, tuple[str, str]],
    version: str,
) -> str:
    """SARIF document text. ``rule_docs`` maps code -> (summary, rationale)."""
    findings = list(findings)
    used_codes = sorted({f.code for f in findings} | set(rule_docs))
    rules: list[dict[str, Any]] = []
    index_of: dict[str, int] = {}
    for code in used_codes:
        summary, rationale = rule_docs.get(code, ("", ""))
        index_of[code] = len(rules)
        rule: dict[str, Any] = {"id": code}
        if summary:
            rule["shortDescription"] = {"text": summary}
        if rationale:
            rule["fullDescription"] = {"text": rationale}
        rules.append(rule)
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": index_of[finding.code],
            "level": "error",
            "message": {"text": f"{finding.code} {finding.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _normalize_path(finding.path),
                            "uriBaseId": "ROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "ROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
