"""The per-file rules (DGL001-DGL008), migrated from ``tools.digest_lint``.

Each rule is a small AST pass over one module. Rules are scoped by path
(``applies_to``) so the same engine lints ``src/`` in CI and known-bad
fixtures in the test suite; paths are matched on their components, so
``src/repro/core/x.py`` and a fixture named ``fixtures/core/bad.py`` both
fall under a rule scoped to ``core``. Since the tools/- and tests/-wide
coverage extension, the simulation-structure rules (DGL002/DGL003/DGL006)
explicitly exempt ``tests/`` and ``benchmarks/`` trees -- a test may time
itself or reach into private state to assert on it; only the hygiene
rules (seeded RNGs, float comparison) follow the code everywhere.

The cross-module rules (DGL009-DGL015) live in
``tools.digest_analyzer.rules_project``; they need the whole-program
facts the extractor builds and cannot run per file.

Name resolution is import-aware but deliberately shallow: a call is only
attributed to, say, ``numpy.random`` when the receiver is a plain
``Name``/``Attribute`` chain whose root was imported from numpy. Aliasing
through local variables (``r = np.random; r.seed(0)``) is not chased --
the rules aim at the patterns that actually appear in review, not at
adversarial obfuscation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.digest_analyzer.findings import Finding

# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object paths they were bound to.

    ``import numpy as np`` binds ``np -> numpy``; ``from numpy.random
    import default_rng`` binds ``default_rng -> numpy.random.default_rng``.
    Relative imports are skipped (they can never be numpy/stdlib modules).
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    mapping[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the top-level name ``a``
                    mapping[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                bound = alias.asname if alias.asname is not None else alias.name
                mapping[bound] = f"{node.module}.{alias.name}"
    return mapping


def _dotted_parts(node: ast.expr) -> list[str] | None:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _resolve(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Canonical dotted path of a Name/Attribute chain, or None.

    Returns e.g. ``numpy.random.default_rng`` for ``np.random.default_rng``
    under ``import numpy as np``. Unresolvable roots (local variables,
    ``self``) return None.
    """
    parts = _dotted_parts(node)
    if parts is None:
        return None
    root = imports.get(parts[0])
    if root is None:
        return None
    return ".".join([root, *parts[1:]])


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


class Rule:
    """One lint rule: a code, docs, a path scope, and an AST check."""

    code: str = "DGL000"
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


# ----------------------------------------------------------------------
# DGL001 -- no unseeded / global-state randomness
# ----------------------------------------------------------------------

#: numpy.random attributes that construct explicit, threadable RNG state.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that construct explicit instances.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


class UnseededRandomness(Rule):
    code = "DGL001"
    name = "unseeded-randomness"
    summary = (
        "no unseeded np.random.default_rng() and no module-level "
        "np.random.* / random.* calls; thread an explicit np.random.Generator"
    )
    rationale = (
        "Every coverage number in RESULTS.md assumes bit-identical reruns. "
        "An unseeded Generator or the hidden global RNG makes the (epsilon, "
        "p) guarantee unverifiable: reruns draw different samples, so a "
        "failed coverage check cannot be reproduced. Follow the "
        "network/topology.py:_as_seed convention and accept a Generator "
        "(or explicit seed) parameter instead."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full is None:
                continue
            if full == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self._finding(
                        path,
                        node,
                        "np.random.default_rng() without a seed; pass an "
                        "explicit seed or thread a np.random.Generator "
                        "(see repro.network.topology._as_seed)",
                    )
            elif full.startswith("numpy.random."):
                attr = full.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_ALLOWED:
                    yield self._finding(
                        path,
                        node,
                        f"{full}() uses numpy's hidden global RNG; thread "
                        "an explicit np.random.Generator instead",
                    )
            elif full.startswith("random."):
                attr = full.split(".", 2)[1]
                if attr not in _STDLIB_RANDOM_ALLOWED:
                    yield self._finding(
                        path,
                        node,
                        f"{full}() uses the stdlib global RNG; thread an "
                        "explicit np.random.Generator instead",
                    )


# ----------------------------------------------------------------------
# DGL002 -- no wall-clock reads in simulation code
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_SIM_SCOPES = frozenset({"core", "sim", "sampling", "protocol"})

#: Trees where the simulation-structure rules (DGL002/003/006) do not
#: apply even when a scope component matches: a test may legitimately
#: time itself or reach into private state to assert on it.
_STRUCTURE_EXEMPT = frozenset({"tests", "benchmarks"})


class WallClockInSimulation(Rule):
    code = "DGL002"
    name = "wall-clock-in-simulation"
    summary = (
        "no time.time/perf_counter/datetime.now inside core/, sim/, "
        "sampling/, protocol/; simulated time comes from sim/clock.py"
    )
    rationale = (
        "The paper's cost model is denominated in messages and discrete "
        "occasions, never seconds. A wall-clock read inside the simulated "
        "protocol couples results to host load, which both breaks rerun "
        "determinism (DGL001's goal) and smuggles a second notion of time "
        "past SimulationClock, the single source of truth."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        if _STRUCTURE_EXEMPT.intersection(path_parts):
            return False
        return bool(_SIM_SCOPES.intersection(path_parts))

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full in _WALL_CLOCK_CALLS:
                yield self._finding(
                    path,
                    node,
                    f"wall-clock read {full}() in simulation code; use "
                    "repro.sim.clock.SimulationClock (simulated time)",
                )


# ----------------------------------------------------------------------
# DGL003 -- locality: no private-state reach-through
# ----------------------------------------------------------------------

_LOCALITY_SCOPES = frozenset({"sampling", "protocol"})


class LocalityReachThrough(Rule):
    code = "DGL003"
    name = "locality-reach-through"
    summary = (
        "sampling/ and protocol/ may not access private state of other "
        "objects (obj._attr); remote node state flows through "
        "network/messaging.py"
    )
    rationale = (
        "Theorem 1's message costs assume a walker learns about a remote "
        "node only by sending it a message that MessageLedger records. "
        "Reading another object's underscore state (graph._adjacency, "
        "store._rows) is free telepathy: the simulation stays correct-"
        "looking while the reported message counts undercount the protocol."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        if _STRUCTURE_EXEMPT.intersection(path_parts):
            return False
        return bool(_LOCALITY_SCOPES.intersection(path_parts))

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or _is_dunder(attr):
                continue
            base = node.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls"):
                    continue
                if base.id in imports:
                    # module-level private helper from an explicit import
                    # (e.g. ``mixing._spectral_gap``) -- intra-package
                    # convention, not remote-state reach-through
                    continue
                receiver = base.id
            else:
                rendered = _dotted_parts(base)
                receiver = ".".join(rendered) if rendered else "<expr>"
            yield self._finding(
                path,
                node,
                f"reach-through into private state {receiver!r}.{attr}; "
                "access remote node state via repro.network.messaging "
                "so the message cost is recorded",
            )


# ----------------------------------------------------------------------
# DGL004 -- no float equality against non-sentinel literals
# ----------------------------------------------------------------------


class FloatEquality(Rule):
    code = "DGL004"
    name = "float-equality"
    summary = (
        "no == / != against float literals (other than the exact "
        "sentinels 0.0 and inf) in estimator/threshold code under core/"
    )
    rationale = (
        "Estimator and threshold arithmetic (Sections IV-B, V) decides "
        "whether a sample allocation meets the variance target; an exact "
        "comparison against a rounded float literal flips on the last ulp "
        "and silently changes the allocation. Exact comparison is only "
        "meaningful against values float represents exactly and that the "
        "code assigns literally: 0.0 (empty/degenerate guards) and "
        "float('inf') (unbounded targets)."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        return "core" in path_parts

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and side.value != 0.0
                    ):
                        yield self._finding(
                            path,
                            node,
                            f"float equality against {side.value!r}; use "
                            "math.isclose with an explicit tolerance, or "
                            "compare against an exact sentinel",
                        )


# ----------------------------------------------------------------------
# DGL005 -- public API must be fully annotated
# ----------------------------------------------------------------------


class MissingAnnotations(Rule):
    code = "DGL005"
    name = "missing-annotations"
    summary = (
        "public functions and methods in src/repro/ must annotate every "
        "parameter and the return type"
    )
    rationale = (
        "The package ships py.typed: downstream callers (experiments, "
        "benchmarks, future services) type-check against these signatures, "
        "and mypy's strict-leaning config only checks bodies it can see "
        "types for. A public def without annotations is a hole in both."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        return "repro" in path_parts

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        yield from self._check_body(tree.body, path)

    def _check_body(self, body: list[ast.stmt], path: str) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(node.body, path)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # private helpers may stay unannotated; nested closures are
                # never public API and are not visited at all
                if node.name.startswith("_") and not _is_dunder(node.name):
                    continue
                missing = self._missing(node)
                if missing:
                    kind = "method" if node.args.args and node.args.args[
                        0
                    ].arg in ("self", "cls") else "function"
                    yield self._finding(
                        path,
                        node,
                        f"public {kind} {node.name!r} is missing annotations "
                        f"for: {', '.join(missing)}",
                    )

    def _missing(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        args = node.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        missing = [
            a.arg
            for a in ordered
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        return missing


# ----------------------------------------------------------------------
# DGL006 -- protocol handlers must not let exceptions escape a delivery
# ----------------------------------------------------------------------

#: naming convention for scheduled-delivery entry points in protocol/
_HANDLER_PREFIXES = ("_handle", "_deliver", "_receive", "_on_")


class HandlerRaises(Rule):
    code = "DGL006"
    name = "handler-raises"
    summary = (
        "protocol/ delivery handlers (_handle*/_deliver*/_receive*/_on_*) "
        "and nested closures must not raise; convert failures to recorded "
        "FaultEvents"
    )
    rationale = (
        "A handler runs as a scheduled delivery inside the event loop; an "
        "exception escaping it aborts the whole simulation on the first "
        "lost message or crashed receiver, which is exactly the behavior "
        "the failure model forbids. The degradation contract is: record a "
        "FaultEvent on the fault log, drop the message, and let the "
        "origin-side supervisor recover the walk. Validation raises belong "
        "at the caller-facing API (start_walk, run_walks, __init__), never "
        "inside a delivery. Nested defs are treated as delivery closures "
        "(that is what they are handed to SimulationEngine for)."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        if _STRUCTURE_EXEMPT.intersection(path_parts):
            return False
        return "protocol" in path_parts

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        yield from self._scan(tree, path, nested=False)

    def _scan(self, node: ast.AST, path: str, nested: bool) -> Iterator[Finding]:
        """Visit every def, tracking whether we are inside a function."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_handler = child.name.startswith(_HANDLER_PREFIXES)
                if nested or is_handler:
                    kind = (
                        f"handler {child.name!r}"
                        if is_handler
                        else f"delivery closure {child.name!r}"
                    )
                    for raise_node in self._direct_raises(child):
                        yield self._finding(
                            path,
                            raise_node,
                            f"raise inside {kind}; an exception escaping a "
                            "scheduled delivery aborts the simulation -- "
                            "record a FaultEvent on the fault log and drop "
                            "the message instead",
                        )
                yield from self._scan(child, path, nested=True)
            else:
                yield from self._scan(child, path, nested=nested)

    def _direct_raises(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.Raise]:
        """Raise statements in ``fn``'s own body (nested defs excluded --
        each raise is attributed to its innermost enclosing function)."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Raise):
                yield node
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# DGL007 -- no print() in src/repro/
# ----------------------------------------------------------------------


class NoPrint(Rule):
    code = "DGL007"
    name = "no-print"
    summary = (
        "no print() inside src/repro/; report through "
        "repro.obs.console.emit, the tracer/metrics, or returned structures"
    )
    rationale = (
        "print() is output the telemetry layer cannot see: it bypasses the "
        "trace, cannot be attributed to a span or counter, and is "
        "unredirectable by a harness embedding the package. "
        "repro.obs.console.emit is the one sanctioned stdout chokepoint "
        "(resolved per call, so capture still works); measurements belong "
        "on RunMetrics, spans, or the structures experiments return."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        return "repro" in path_parts

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                hit = func.id == "print" and func.id not in imports
            else:
                hit = _resolve(func, imports) == "builtins.print"
            if hit:
                yield self._finding(
                    path,
                    node,
                    "print() in src/repro/; use repro.obs.console.emit "
                    "(or record on the tracer/metrics) instead",
                )


# ----------------------------------------------------------------------
# DGL008 -- SamplingOperator is constructed only inside repro.sampling
# ----------------------------------------------------------------------


class DirectOperatorConstruction(Rule):
    code = "DGL008"
    name = "direct-operator-construction"
    summary = (
        "no direct SamplingOperator construction outside repro.sampling; "
        "obtain the operator through SamplePool (pool.operator / "
        "pool.lease)"
    )
    rationale = (
        "The multi-query amortization argument (shared walks priced once, "
        "per-consumer reuse cursors, pool_hit/pool_miss accounting) only "
        "holds if every query reaches the sampling substrate through the "
        "one pool that owns it. A privately constructed SamplingOperator "
        "is an unshared side channel: its walks cannot be coalesced with "
        "co-resident queries and its draws never appear in the pool "
        "counters, so the reported amortization overstates itself. "
        "Construct a repro.sampling.pool.SamplePool and use its .operator "
        "(or a per-query .lease) instead; tests and harness code outside "
        "src/repro are exempt."
    )

    def applies_to(self, path_parts: tuple[str, ...]) -> bool:
        return "repro" in path_parts and "sampling" not in path_parts

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        imports = _import_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, imports)
            if full is None:
                continue
            if full.startswith("repro.sampling") and full.endswith(
                ".SamplingOperator"
            ):
                yield self._finding(
                    path,
                    node,
                    "direct SamplingOperator construction outside "
                    "repro.sampling; build a SamplePool and use "
                    ".operator / .lease so walks stay shareable and "
                    "pool accounting stays honest",
                )


#: Registry in code order; the runner and ``--list-rules`` both use it.
ALL_RULES: tuple[Rule, ...] = (
    UnseededRandomness(),
    WallClockInSimulation(),
    LocalityReachThrough(),
    FloatEquality(),
    MissingAnnotations(),
    HandlerRaises(),
    NoPrint(),
    DirectOperatorConstruction(),
)

RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
