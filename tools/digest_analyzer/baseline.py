"""The committed findings baseline: grandfathered debt, pinned.

Extending rules to new paths (or adding interprocedural rules) surfaces
pre-existing findings that are real but out of scope to fix in the same
change. Those are recorded here — keyed by ``(path, code, message)``
with a count, deliberately *without* line numbers so unrelated edits
above a finding don't invalidate the baseline — and the analyzer exits
clean as long as no *new* finding appears.

The contract: the baseline only ever shrinks. ``--write-baseline``
regenerates it from the current findings; review the diff like code.
A baseline entry that no longer matches anything is reported as stale
(exit code unchanged) so fixed debt gets removed from the file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from tools.digest_analyzer.findings import Finding

#: default committed location, repo-relative
DEFAULT_BASELINE_PATH = Path("tools") / "digest_analyzer" / "baseline.json"

BASELINE_VERSION = 1


class BaselineError(RuntimeError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Baseline multiset; missing file means an empty baseline."""
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return Counter()
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path} has an unrecognized layout "
            f"(expected version {BASELINE_VERSION})"
        )
    baseline: Counter[tuple[str, str, str]] = Counter()
    for entry in document["findings"]:
        try:
            key = (entry["path"], entry["code"], entry["message"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"baseline {path} holds a malformed entry: {entry!r}"
            ) from exc
        baseline[key] += count
    return baseline


def apply_baseline(
    findings: list[Finding], baseline: Counter[tuple[str, str, str]]
) -> tuple[list[Finding], Counter[tuple[str, str, str]]]:
    """Split into (new findings, stale baseline entries).

    Matching is multiset subtraction: each baseline entry absorbs at
    most ``count`` findings with the same key. Whatever the baseline
    fails to absorb is new; whatever it over-declares is stale.
    """
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    stale = Counter({key: n for key, n in remaining.items() if n > 0})
    return fresh, stale


def write_baseline(findings: list[Finding], path: Path) -> int:
    """Regenerate the baseline from current findings; returns entry count."""
    counts: Counter[tuple[str, str, str]] = Counter(
        finding.baseline_key() for finding in findings
    )
    entries = [
        {"path": key[0], "code": key[1], "message": key[2], "count": count}
        for key, count in sorted(counts.items())
    ]
    document = {"version": BASELINE_VERSION, "findings": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)
