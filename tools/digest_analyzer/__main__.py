"""CLI: ``python -m tools.digest_analyzer [options] [paths]``.

Exit status: 0 clean (baselined findings do not fail the run), 1 new
findings reported, 2 usage/configuration error. Default output is one
``path:line:col: CODE message`` line per finding, ruff/flake8-style;
``--sarif FILE`` additionally writes SARIF 2.1.0 for code scanning.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from tools.digest_analyzer import (
    ANALYZER_VERSION,
    DEFAULT_BASELINE_PATH,
    DEFAULT_CACHE_PATH,
    DEFAULT_ROOTS,
    RULE_CATALOG,
    analyze_paths,
    write_baseline,
)
from tools.digest_analyzer.baseline import BaselineError
from tools.digest_analyzer.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.digest_analyzer",
        description=(
            "Cross-module static analysis enforcing the Digest "
            "reproduction's simulation invariants (DGL001-DGL015). "
            "Suppress a single line with '# dgl: disable=DGL0xx'."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze (directories are walked for "
            f"*.py; default: {' '.join(DEFAULT_ROOTS)})"
        ),
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=".",
        help="repository root for relative paths, schema, cache, baseline",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write findings as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=str(DEFAULT_BASELINE_PATH),
        help="baseline file of grandfathered findings (relative to --root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=str(DEFAULT_CACHE_PATH),
        help="per-file result cache (relative to --root)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every file from scratch",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print run statistics (files, cache hits, timing) to stderr",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code in sorted(RULE_CATALOG):
            name, summary, _rationale = RULE_CATALOG[code]
            print(f"{code} [{name}]")
            print(f"    {summary}")
        return 0

    root = Path(options.root)
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2

    raw_paths = options.paths or [
        str(root / part) for part in DEFAULT_ROOTS if (root / part).is_dir()
    ]
    select = None
    if options.select:
        select = frozenset(
            code.strip().upper() for code in options.select.split(",")
        )
        unknown = select - set(RULE_CATALOG)
        if unknown:
            print(
                f"error: unknown rule codes: {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    baseline_path = None
    if not options.no_baseline and not options.write_baseline:
        baseline_path = root / options.baseline
    cache_path = None if options.no_cache else root / options.cache

    started = time.perf_counter()
    try:
        result = analyze_paths(
            [Path(p) for p in raw_paths],
            repo_root=root,
            select=select,
            cache_path=cache_path,
            baseline_path=baseline_path,
        )
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=sys.stderr)
        return 2
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    if options.write_baseline:
        count = write_baseline(result.findings, root / options.baseline)
        print(
            f"digest-analyzer: baseline written to {options.baseline} "
            f"({count} entries, {len(result.findings)} findings)",
            file=sys.stderr,
        )
        return 0

    for finding in result.findings:
        print(finding.render())
    if options.sarif:
        docs = {
            code: (summary, rationale)
            for code, (_name, summary, rationale) in RULE_CATALOG.items()
        }
        Path(options.sarif).write_text(
            render_sarif(result.findings, docs, ANALYZER_VERSION),
            encoding="utf-8",
        )

    if result.schema_error:
        print(
            f"digest-analyzer: warning: {result.schema_error} "
            "(DGL009/DGL010 skipped)",
            file=sys.stderr,
        )
    for key in sorted(result.stale_baseline):
        print(
            f"digest-analyzer: stale baseline entry (already fixed): "
            f"{key[0]}: {key[1]} {key[2]}",
            file=sys.stderr,
        )
    if options.stats:
        print(
            f"digest-analyzer: {result.file_count} files in {elapsed:.2f}s "
            f"(cache: {result.cache_hits} hits / {result.cache_misses} "
            f"misses), {len(result.findings)} new findings, "
            f"{result.baselined} baselined",
            file=sys.stderr,
        )

    if result.findings:
        count = len(result.findings)
        plural = "" if count == 1 else "s"
        print(
            f"digest-analyzer: {count} finding{plural}", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
