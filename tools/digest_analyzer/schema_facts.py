"""Static view of the declared trace schema (``repro.obs.schema``).

The analyzer must not import the package it analyzes (a broken checkout
would take the linter down with it, and importing executes code). So the
schema registry is recovered from ``src/repro/obs/schema.py`` by parsing
it: module-level ``NAME = "literal"`` assignments become the constant
table, and the ``SPAN_SCHEMAS`` / ``EVENT_SCHEMAS`` dict comprehensions
are walked for their ``SpanSchema(...)`` / ``EventSchema(...)`` entries.

The parse is deliberately rigid — it understands exactly the shape the
real module uses (constants referenced by name, ``required``/``optional``
as tuples of string literals). If someone restructures the registry into
a form this parser cannot read, :func:`load_schema_facts` raises
``SchemaParseError`` and the analyzer fails loudly instead of silently
checking against an empty schema.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: dotted module the constants live in (what call-site refs resolve to)
SCHEMA_MODULE = "repro.obs.schema"

#: repo-relative location of the schema module's source
SCHEMA_SOURCE = Path("src") / "repro" / "obs" / "schema.py"


class SchemaParseError(RuntimeError):
    """The schema module exists but could not be statically understood."""


@dataclass(frozen=True)
class DeclaredShape:
    """One declared span or event: its name and attribute keys."""

    name: str
    kind: str  # "span" | "event"
    required: tuple[str, ...]
    optional: tuple[str, ...] = ()

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset(self.required) | frozenset(self.optional)


@dataclass
class SchemaFacts:
    """The statically recovered schema registry."""

    #: constant name (e.g. ``SPAN_WALK``) -> its string value
    constants: dict[str, str] = field(default_factory=dict)
    spans: dict[str, DeclaredShape] = field(default_factory=dict)
    events: dict[str, DeclaredShape] = field(default_factory=dict)

    def resolve_ref(self, dotted: str | None) -> str | None:
        """Value of a ``repro.obs.schema.X`` reference, if it is one."""
        if dotted is None or not dotted.startswith(SCHEMA_MODULE + "."):
            return None
        return self.constants.get(dotted[len(SCHEMA_MODULE) + 1 :])

    @property
    def names(self) -> frozenset[str]:
        return frozenset(self.spans) | frozenset(self.events)

    def shape_for(self, name: str) -> DeclaredShape | None:
        return self.spans.get(name) or self.events.get(name)


def _string_tuple(node: ast.expr, what: str) -> tuple[str, ...]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        raise SchemaParseError(f"{what} is not a tuple of string literals")
    values: list[str] = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            raise SchemaParseError(f"{what} holds a non-literal element")
        values.append(element.value)
    return tuple(values)


def _parse_entry(
    call: ast.Call, constants: dict[str, str], kind: str
) -> DeclaredShape:
    if not call.args:
        raise SchemaParseError(f"{kind} schema entry has no name argument")
    name_arg = call.args[0]
    if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
        name = name_arg.value
    elif isinstance(name_arg, ast.Name) and name_arg.id in constants:
        name = constants[name_arg.id]
    else:
        raise SchemaParseError(
            f"{kind} schema entry name is neither a literal nor a known constant"
        )
    required: tuple[str, ...] = ()
    optional: tuple[str, ...] = ()
    for keyword in call.keywords:
        if keyword.arg == "required":
            required = _string_tuple(keyword.value, f"{name}.required")
        elif keyword.arg == "optional":
            optional = _string_tuple(keyword.value, f"{name}.optional")
    return DeclaredShape(
        name=name, kind=kind, required=required, optional=optional
    )


def _registry_entries(node: ast.expr, registry: str) -> list[ast.Call]:
    """The ``Schema(...)`` calls inside a registry dict comprehension."""
    if not isinstance(node, ast.DictComp) or not node.generators:
        raise SchemaParseError(f"{registry} is not a dict comprehension")
    source = node.generators[0].iter
    if not isinstance(source, (ast.Tuple, ast.List)):
        raise SchemaParseError(f"{registry} does not iterate a literal tuple")
    calls: list[ast.Call] = []
    for element in source.elts:
        if not isinstance(element, ast.Call):
            raise SchemaParseError(f"{registry} holds a non-call entry")
        calls.append(element)
    return calls


def parse_schema_source(source: str, path: str = str(SCHEMA_SOURCE)) -> SchemaFacts:
    """Recover :class:`SchemaFacts` from the schema module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        raise SchemaParseError(f"cannot parse {path}: {exc}") from exc

    facts = SchemaFacts()
    registries: dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            facts.constants[target.id] = value.value
        elif target.id in ("SPAN_SCHEMAS", "EVENT_SCHEMAS"):
            registries[target.id] = value

    for registry, kind, store in (
        ("SPAN_SCHEMAS", "span", facts.spans),
        ("EVENT_SCHEMAS", "event", facts.events),
    ):
        if registry not in registries:
            raise SchemaParseError(f"{path} does not define {registry}")
        for call in _registry_entries(registries[registry], registry):
            shape = _parse_entry(call, facts.constants, kind)
            store[shape.name] = shape

    if not facts.spans or not facts.events:
        raise SchemaParseError(f"{path} declares an empty schema registry")
    return facts


def load_schema_facts(repo_root: Path) -> SchemaFacts:
    """Parse the schema module under ``repo_root``."""
    source_path = repo_root / SCHEMA_SOURCE
    try:
        source = source_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SchemaParseError(f"cannot read {source_path}: {exc}") from exc
    return parse_schema_source(source, str(source_path))
