"""Per-file result cache keyed by content hash.

Pass 1 (parse + fact extraction + per-file rules) dominates analyzer
runtime; its result depends only on the file's bytes and the analyzer
version. So each file's :class:`FileFacts` and *raw* per-file findings
are cached under ``sha256(bytes)`` — suppression pragmas and the
baseline are run-time policy applied after pass 2, which is exactly why
the cached findings are stored pre-suppression.

The cache is one JSON document. A corrupt or version-skewed cache is
silently treated as empty — it is an accelerator, never a correctness
input — and rewritten on save.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from tools.digest_analyzer.extract import ANALYZER_VERSION, FileFacts
from tools.digest_analyzer.findings import Finding

#: default on-disk location, repo-relative (gitignored)
DEFAULT_CACHE_PATH = Path(".digest_analyzer_cache.json")


def content_key(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ResultCache:
    """Maps path -> (content hash, facts, raw findings)."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path) -> "ResultCache":
        cache = cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(document, dict)
            or document.get("version") != ANALYZER_VERSION
            or not isinstance(document.get("files"), dict)
        ):
            return cache
        cache._entries = document["files"]
        return cache

    def save(self, path: Path) -> None:
        document = {"version": ANALYZER_VERSION, "files": self._entries}
        try:
            path.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a cache that cannot be written is just a slow cache

    def lookup(
        self, path: str, key: str
    ) -> tuple[FileFacts, list[Finding]] | None:
        entry = self._entries.get(path)
        if entry is None or entry.get("key") != key:
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_json(entry["facts"])
            findings = [Finding(**f) for f in entry["findings"]]
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return facts, findings

    def store(
        self, path: str, key: str, facts: FileFacts, findings: list[Finding]
    ) -> None:
        self._entries[path] = {
            "key": key,
            "facts": facts.to_json(),
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "code": f.code,
                    "message": f.message,
                }
                for f in findings
            ],
        }

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer analyzed."""
        self._entries = {
            path: entry
            for path, entry in self._entries.items()
            if path in live_paths
        }
