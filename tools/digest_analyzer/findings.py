"""Finding record shared by every rule, the engine, and the reporters.

Moved here from ``tools.digest_lint.findings`` when the per-file linter
grew into the cross-module analyzer; ``tools.digest_lint`` re-exports it
unchanged, so the historical import path keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Sort order (path, line, col, code) matches the report order, so a list
    of findings can be ``sorted()`` directly.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """ruff/flake8-style ``path:line:col: CODE message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by the committed baseline: line numbers excluded
        so grandfathered findings survive unrelated edits above them."""
        return (_normalize_path(self.path), self.code, self.message)


def _normalize_path(path: str) -> str:
    """Forward slashes, no leading ``./`` — one spelling per file."""
    normalized = path.replace("\\", "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized
