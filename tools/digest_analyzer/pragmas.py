"""Suppression pragmas: legacy ``# noqa`` and scoped ``# dgl: disable=``.

Two grammars are honored:

* ``# noqa`` / ``# noqa: DGL001, DGL004`` — the flake8/ruff grammar the
  per-file linter has always supported. A bare ``# noqa`` silences every
  rule on its line. Legacy: tolerated, but it carries no unused-detection.
* ``# dgl: disable=DGL011`` / ``# dgl: disable=DGL011,DGL012`` — the
  analyzer's own pragma. It must name explicit codes (there is no bare
  form: a suppression that does not say what it suppresses cannot be
  audited), and every named code must actually suppress a finding on that
  line — an unused suppression is itself reported as
  :data:`UNUSED_SUPPRESSION_CODE` so stale pragmas cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable

from tools.digest_analyzer.findings import Finding

#: Code reported for a ``# dgl: disable=`` code that suppressed nothing.
UNUSED_SUPPRESSION_CODE = "DGL099"

#: bare form, or "noqa:" followed by comma-separated codes.
_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?", re.I
)

#: "dgl: disable=" followed by comma-separated codes (no bare form). The
#: lookahead keeps prose like "DGL0xx" from half-matching as "DGL0".
_DGL_RE = re.compile(
    r"#\s*dgl:\s*disable=(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)(?![A-Za-z])",
    re.I,
)


@dataclass
class LinePragmas:
    """Suppressions declared on one physical line."""

    line: int
    #: None = bare ``# noqa`` (silences everything on the line).
    noqa: frozenset[str] | None | bool = False
    #: explicit ``dgl: disable`` codes, each tracked for use.
    dgl_codes: tuple[str, ...] = ()
    #: column of the dgl pragma (for the unused-suppression finding).
    dgl_col: int = 0
    used: set[str] = field(default_factory=set)

    def suppresses(self, code: str) -> bool:
        if self.noqa is None:
            return True
        if isinstance(self.noqa, frozenset) and code in self.noqa:
            return True
        if code in self.dgl_codes:
            self.used.add(code)
            return True
        return False


def _comment_tokens(source: str) -> Iterable[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment in the source.

    Tokenizing (instead of regexing raw lines) is what keeps pragma
    *examples* inside docstrings and string literals from being parsed
    as live pragmas. Tokenization failures fall back to a line scan —
    a broken file already reports DGL000, and a pragma misread there
    suppresses findings that parse failure hides anyway.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for index, text in enumerate(source.splitlines(), start=1):
            position = text.find("#")
            if position >= 0:
                yield index, position, text[position:]


def parse_pragmas(source: str) -> dict[int, LinePragmas]:
    """All suppression pragmas in the file, keyed by 1-based line."""
    pragmas: dict[int, LinePragmas] = {}
    for line, col, text in _comment_tokens(source):
        entry = LinePragmas(line=line)
        found = False
        dgl = _DGL_RE.search(text)
        if dgl is not None:
            entry.dgl_codes = tuple(
                code.strip().upper() for code in dgl.group("codes").split(",")
            )
            entry.dgl_col = col + dgl.start() + 1
            found = True
        noqa = _NOQA_RE.search(text)
        if noqa is not None:
            codes = noqa.group("codes")
            entry.noqa = (
                None
                if codes is None
                else frozenset(c.strip().upper() for c in codes.split(","))
            )
            found = True
        if found:
            pragmas[line] = entry
    return pragmas


def apply_pragmas(
    findings: Iterable[Finding],
    pragmas_by_path: dict[str, dict[int, LinePragmas]],
    report_unused: bool = True,
) -> list[Finding]:
    """Drop suppressed findings; append unused-suppression findings.

    ``pragmas_by_path`` maps each file's path to its parsed pragma table;
    findings for paths without a table pass through untouched. With
    ``report_unused`` (the default), every ``dgl: disable`` code that
    suppressed nothing becomes an :data:`UNUSED_SUPPRESSION_CODE` finding
    on the pragma's line — disable it only when running a rule subset,
    where "unused" would be an artifact of the selection.
    """
    kept: list[Finding] = []
    for finding in findings:
        table = pragmas_by_path.get(finding.path)
        entry = table.get(finding.line) if table else None
        if entry is not None and entry.suppresses(finding.code):
            continue
        kept.append(finding)
    if report_unused:
        for path, table in pragmas_by_path.items():
            for entry in table.values():
                for code in entry.dgl_codes:
                    if code not in entry.used:
                        kept.append(
                            Finding(
                                path=path,
                                line=entry.line,
                                col=entry.dgl_col,
                                code=UNUSED_SUPPRESSION_CODE,
                                message=(
                                    f"unused suppression: no {code} finding "
                                    "on this line (remove the pragma)"
                                ),
                            )
                        )
    return sorted(kept)
