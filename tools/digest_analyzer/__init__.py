"""Cross-module static analysis for the Digest reproduction.

``tools.digest_lint`` enforced the simulation invariants one file at a
time (DGL001-DGL008). This package is its successor: the same per-file
rules, plus a second pass that parses every file into a shared symbol
table and approximate call graph and runs the rules no single file can
check —

* **DGL009** trace-schema conformance: every ``tracer.span(...)`` /
  ``.event(...)`` call site against the declared registry in
  :mod:`repro.obs.schema`;
* **DGL010** no hard-coded trace-name literals in consuming code;
* **DGL011** RNG-stream provenance: one generator, one named stream;
* **DGL012** wall-clock reachability from simulation code (DGL002
  through any depth of helper indirection);
* **DGL013** handler-raise reachability (DGL006, likewise);
* **DGL014** layering conformance: ``repro.protocol`` must not import
  ``repro.core``, and ``repro.network`` must not import
  ``repro.protocol`` — the protocol stack direction is one-way;
* **DGL015** context propagation: walk-message constructors must thread
  a forwarded :class:`TraceContext`; fresh context is minted only by the
  walk lifecycle through the sanctioned ``mint_context``.

Operationally: ``# dgl: disable=DGLxxx`` pragmas with unused-suppression
detection (DGL099), a committed baseline for grandfathered findings,
SARIF output for code scanning, and a content-hash result cache.

Run it: ``python -m tools.digest_analyzer src tools tests benchmarks``.
"""

from __future__ import annotations

from tools.digest_analyzer.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.digest_analyzer.cache import DEFAULT_CACHE_PATH, ResultCache
from tools.digest_analyzer.extract import (
    ANALYZER_VERSION,
    FileFacts,
    extract_file_facts,
)
from tools.digest_analyzer.findings import Finding
from tools.digest_analyzer.pragmas import UNUSED_SUPPRESSION_CODE
from tools.digest_analyzer.project import Project
from tools.digest_analyzer.rules_local import ALL_RULES, RULES_BY_CODE
from tools.digest_analyzer.rules_project import (
    ALL_PROJECT_RULES,
    PROJECT_RULES_BY_CODE,
)
from tools.digest_analyzer.runner import (
    DEFAULT_ROOTS,
    PARSE_ERROR_CODE,
    AnalysisResult,
    analyze_paths,
    analyze_sources,
)
from tools.digest_analyzer.schema_facts import SchemaFacts, load_schema_facts

#: code -> (name, summary, rationale) for every reportable code,
#: including the two pseudo-rules no Rule object implements.
RULE_CATALOG: dict[str, tuple[str, str, str]] = {
    PARSE_ERROR_CODE: (
        "unparseable-file",
        "file could not be parsed (syntax error, bad encoding, null bytes)",
        "A file the analyzer cannot read is not a clean file; the parse "
        "failure is reported as a finding so the run never aborts.",
    ),
    **{
        rule.code: (rule.name, rule.summary, rule.rationale)
        for rule in ALL_RULES
    },
    **{
        rule.code: (rule.name, rule.summary, rule.rationale)
        for rule in ALL_PROJECT_RULES
    },
    UNUSED_SUPPRESSION_CODE: (
        "unused-suppression",
        "a '# dgl: disable=' code suppressed nothing on its line",
        "Stale pragmas silently widen what the analyzer ignores; an "
        "unused suppression must be removed, not accumulated.",
    ),
}

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "ANALYZER_VERSION",
    "AnalysisResult",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "DEFAULT_ROOTS",
    "FileFacts",
    "Finding",
    "PARSE_ERROR_CODE",
    "PROJECT_RULES_BY_CODE",
    "Project",
    "RULES_BY_CODE",
    "RULE_CATALOG",
    "ResultCache",
    "SchemaFacts",
    "UNUSED_SUPPRESSION_CODE",
    "analyze_paths",
    "analyze_sources",
    "apply_baseline",
    "extract_file_facts",
    "load_baseline",
    "load_schema_facts",
    "write_baseline",
]
