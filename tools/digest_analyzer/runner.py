"""The analysis engine: discovery, both passes, policy, reporting inputs.

Pipeline per run:

1. discover ``*.py`` files (or take an explicit list);
2. pass 1 per file — content-hash cache lookup, else parse once into
   :class:`FileFacts` + raw per-file findings (DGL001-DGL008, DGL000 on
   unparseable files);
3. pass 2 — build the :class:`Project` view, statically parse the trace
   schema, run the cross-module rules (DGL009-DGL015);
4. policy — ``# noqa`` / ``# dgl: disable`` pragmas (with unused-
   suppression findings), then the committed baseline;
5. hand the surviving findings to the caller (CLI, tests, CI).

:func:`analyze_sources` is the pure core (strings in, findings out) the
fixture tests drive; :func:`analyze_paths` wraps it with filesystem
discovery, the cache, and the baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from tools.digest_analyzer.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
)
from tools.digest_analyzer.cache import (
    DEFAULT_CACHE_PATH,
    ResultCache,
    content_key,
)
from tools.digest_analyzer.extract import (
    ANALYZER_VERSION,
    FileFacts,
    extract_file_facts,
)
from tools.digest_analyzer.findings import Finding, _normalize_path
from tools.digest_analyzer.pragmas import apply_pragmas, parse_pragmas
from tools.digest_analyzer.project import Project
from tools.digest_analyzer.rules_project import ALL_PROJECT_RULES
from tools.digest_analyzer.schema_facts import (
    SCHEMA_SOURCE,
    SchemaFacts,
    SchemaParseError,
    load_schema_facts,
    parse_schema_source,
)

#: the parse-failure pseudo-rule; always reported, never selectable-off
PARSE_ERROR_CODE = "DGL000"

#: directories never descended into during discovery
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: default analysis roots, repo-relative
DEFAULT_ROOTS = ("src", "tools", "tests", "benchmarks", "examples")


@dataclass
class AnalysisResult:
    """Everything a reporter needs about one run."""

    findings: list[Finding]
    #: findings absorbed by the committed baseline
    baselined: int = 0
    #: baseline entries that matched nothing (debt already fixed)
    stale_baseline: Counter = field(default_factory=Counter)
    file_count: int = 0
    parse_failures: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: schema registry problems (DGL009/DGL010 were skipped if set)
    schema_error: str | None = None


def _pass1(
    sources: dict[str, str],
    cache: ResultCache | None,
) -> tuple[dict[str, FileFacts], list[Finding]]:
    facts_by_path: dict[str, FileFacts] = {}
    raw: list[Finding] = []
    for path, source in sources.items():
        cached = None
        key = ""
        if cache is not None:
            key = content_key(source.encode("utf-8", errors="replace"))
            key = f"{key}:{ANALYZER_VERSION}"
            cached = cache.lookup(path, key)
        if cached is None:
            facts, findings = extract_file_facts(source, path)
            if cache is not None:
                cache.store(path, key, facts, findings)
        else:
            facts, findings = cached
        facts_by_path[path] = facts
        raw.extend(findings)
    return facts_by_path, raw


def _resolve_schema(
    sources: dict[str, str], repo_root: Path | None
) -> tuple[SchemaFacts | None, str | None]:
    schema_rel = str(SCHEMA_SOURCE)
    for path, source in sources.items():
        if _normalize_path(path) == schema_rel.replace("\\", "/"):
            try:
                return parse_schema_source(source, path), None
            except SchemaParseError as exc:
                return None, str(exc)
    if repo_root is not None:
        try:
            return load_schema_facts(repo_root), None
        except SchemaParseError as exc:
            return None, str(exc)
    return None, "trace schema module not found in the analyzed set"


def analyze_sources(
    sources: dict[str, str],
    select: frozenset[str] | None = None,
    repo_root: Path | None = None,
    cache: ResultCache | None = None,
) -> AnalysisResult:
    """Run both passes over in-memory sources; apply pragma policy.

    ``select`` limits reporting to the given codes (DGL000 is always
    kept — a file the analyzer cannot read is never a clean file).
    Unused-suppression detection is skipped under ``select``: a pragma
    can only be judged unused when every rule it names actually ran.
    """
    facts_by_path, raw = _pass1(sources, cache)
    parse_failures = sum(1 for f in facts_by_path.values() if f.parse_error)

    project = Project(facts_by_path)
    schema, schema_error = _resolve_schema(sources, repo_root)
    findings = list(raw)
    for rule in ALL_PROJECT_RULES:
        if select is not None and rule.code not in select:
            continue
        if schema is None and rule.code in ("DGL009", "DGL010"):
            continue
        findings.extend(rule.check(project, schema or SchemaFacts()))

    if select is not None:
        findings = [
            f
            for f in findings
            if f.code in select or f.code == PARSE_ERROR_CODE
        ]

    pragmas_by_path = {
        path: parse_pragmas(source) for path, source in sources.items()
    }
    findings = apply_pragmas(
        findings, pragmas_by_path, report_unused=select is None
    )
    return AnalysisResult(
        findings=sorted(findings),
        file_count=len(sources),
        parse_failures=parse_failures,
        schema_error=schema_error,
    )


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the ordered list of ``*.py`` files."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py" or path.is_file():
            seen.setdefault(path, None)
        elif not path.exists():
            raise FileNotFoundError(str(path))
    return list(seen)


def _relative(path: Path, repo_root: Path) -> str:
    try:
        rel = path.resolve().relative_to(repo_root.resolve())
    except ValueError:
        rel = path
    return _normalize_path(str(rel))


def analyze_paths(
    paths: list[Path],
    repo_root: Path,
    select: frozenset[str] | None = None,
    cache_path: Path | None = None,
    baseline_path: Path | None = None,
) -> AnalysisResult:
    """Filesystem entry point: discovery + cache + baseline around
    :func:`analyze_sources`.

    ``cache_path`` / ``baseline_path`` of ``None`` disable the cache /
    baseline; pass the DEFAULT_* constants for the standard locations.
    Unreadable files become DGL000 findings, not exceptions.
    """
    files = discover_files(paths)
    sources: dict[str, str] = {}
    unreadable: list[Finding] = []
    for file_path in files:
        rel = _relative(file_path, repo_root)
        try:
            sources[rel] = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Finding(
                    path=rel,
                    line=1,
                    col=1,
                    code=PARSE_ERROR_CODE,
                    message=f"cannot read file: {exc}",
                )
            )

    cache = None
    if cache_path is not None:
        cache = ResultCache.load(cache_path)

    result = analyze_sources(
        sources, select=select, repo_root=repo_root, cache=cache
    )
    result.findings = sorted(result.findings + unreadable)
    result.parse_failures += len(unreadable)
    result.file_count += len(unreadable)

    if cache is not None and cache_path is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
        cache.prune(set(sources))
        cache.save(cache_path)

    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        if baseline:
            before = len(result.findings)
            result.findings, result.stale_baseline = apply_baseline(
                result.findings, baseline
            )
            result.baselined = before - len(result.findings)
    return result
