"""Named RNG streams: which subsystem a generator argument feeds.

The simulation's reproducibility contract partitions randomness into
named seeded streams — a generator is created for one subsystem and
stays there. When one ``np.random.Generator`` feeds two subsystems, the
draw sequences interleave: adding a fault draw shifts every subsequent
walk draw and silently changes pinned results. DGL011 enforces the
partition statically; this module is its ground truth.

A *sink* is a constructor or builder that takes ownership of a generator
argument. Sinks are matched by the final component of the resolved call
target (``repro.core.DigestEngine`` and ``repro.core.engine.DigestEngine``
are the same sink — re-exports must not dodge the rule), restricted to
project-internal targets. A sink terminates taint tracking: what the
subsystem does with its generator internally is its own business.

Direct method draws (``rng.normal(...)``) are unlabeled — a generator
used for inline draws plus exactly one sink is fine (experiment wiring
does this constantly). The violation is two *different* labels.
"""

from __future__ import annotations

#: final call-target component -> stream label
SINK_LABELS: dict[str, str] = {
    # fault injection
    "FaultPlan": "fault",
    # correlated partition / flap schedule
    "PartitionPlan": "partition",
    # membership churn
    "ChurnProcess": "churn",
    # shared sample pool / engine substrate (one stream by design:
    # DigestNode hands the same generator to its pool and engines)
    "SamplePool": "pool",
    "DigestEngine": "engine",
    "DigestSession": "engine",
    "DigestNode": "engine",
    "RepeatedQueryEngine": "engine",
    # walk execution
    "SamplingOperator": "walk",
    "ProtocolSampler": "walk",
    # overlay construction
    "power_law_topology": "topology",
    "random_topology": "topology",
    "small_world_topology": "topology",
    "random_regular_topology": "topology",
    "augmented_mesh_topology": "topology",
    # synthetic data generation
    "TemperatureInstance": "data",
    "MemoryInstance": "data",
    "distribute_units": "data",
    # gossip baseline
    "PushSumProtocol": "baseline",
    "PushSumBaseline": "baseline",
}

#: top-level packages whose call targets count as project-internal
_PROJECT_ROOTS = ("repro.", "tools.", "tests.", "benchmarks.")


def sink_label(target: str) -> str | None:
    """Stream label for a resolved call target, or None if not a sink.

    ``target`` is a globally resolved dotted path (``repro.x.Y``) or a
    still-local marker (``@local.Y`` / ``@self.m``) — local markers are
    project-internal by construction.
    """
    if target.startswith("@"):
        final = target.rsplit(".", 1)[-1]
    elif target.startswith(_PROJECT_ROOTS):
        final = target.rsplit(".", 1)[-1]
    else:
        return None
    return SINK_LABELS.get(final)
