"""Developer tooling for the Digest reproduction (not shipped with the package)."""
