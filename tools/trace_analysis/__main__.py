"""``python -m tools.trace_analysis <summarize|attribute|flame|critpath> ...``"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["trace", *sys.argv[1:]]))
