"""Standalone entry point for telemetry-trace analysis.

The analysis library itself lives in :mod:`repro.obs.analysis` (so the
CLI inside ``src/repro`` can import it — ``src/repro`` must never import
from ``tools/``); this package is the thin out-of-tree wrapper for people
working from a checkout::

    PYTHONPATH=src python -m tools.trace_analysis summarize --input run.jsonl
    PYTHONPATH=src python -m tools.trace_analysis attribute --input run.jsonl --json
    PYTHONPATH=src python -m tools.trace_analysis flame --input run.jsonl

which is equivalent to ``repro-digest trace <subcommand> ...``.
"""

from repro.obs.analysis import (
    COUNTER_FIELDS,
    CausalAssembly,
    CausalHop,
    CriticalPath,
    WalkTree,
    assemble,
    counter_dict,
    critical_paths,
    degraded_timeline,
    fault_timeline,
    folded_stacks,
    hop_latency_attribution,
    message_attribution,
    run_metrics_from_trace,
    trigger_breakdown,
    verify_trace_consistency,
    walk_latency_histogram,
    walk_outcomes,
)

# The declared trace schema (span/event names + attribute keys) is
# re-exported so out-of-tree analysis scripts reference the constants
# instead of hard-coding trace-name literals (digest-analyzer DGL010).
from repro.obs.schema import (
    EVENT_SCHEMAS,
    SPAN_SCHEMAS,
    event_names,
    span_names,
    trace_names,
)

__all__ = [
    "COUNTER_FIELDS",
    "CausalAssembly",
    "CausalHop",
    "CriticalPath",
    "EVENT_SCHEMAS",
    "SPAN_SCHEMAS",
    "WalkTree",
    "assemble",
    "counter_dict",
    "critical_paths",
    "degraded_timeline",
    "event_names",
    "fault_timeline",
    "folded_stacks",
    "hop_latency_attribution",
    "message_attribution",
    "run_metrics_from_trace",
    "span_names",
    "trace_names",
    "trigger_breakdown",
    "verify_trace_consistency",
    "walk_latency_histogram",
    "walk_outcomes",
]
