"""E6 / Table II: dataset parameters — calibration of the generators.

Measures node/unit/update counts, the lag-1 correlation rho and the
cross-sectional sigma of both synthetic workloads against the published
Table II row. Counts scale with REPRO_BENCH_SCALE (exact match at 1.0);
rho and sigma must match at any scale.
"""

import pytest
from conftest import bench_scale, bench_seed

from repro.experiments import table2


@pytest.mark.parametrize("dataset", ["temperature", "memory"])
def test_table2(benchmark, record_table, dataset):
    result = benchmark.pedantic(
        table2.run,
        kwargs={"dataset": dataset, "scale": bench_scale(), "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table(f"table2_{dataset}", result.to_table())
    assert result.measured_rho == pytest.approx(result.paper_rho, abs=0.08)
    assert result.measured_sigma == pytest.approx(result.paper_sigma, rel=0.15)
