"""Design-choice ablation benches (DESIGN.md section 4).

1. Metropolis laziness on bipartite overlays (correctness).
2. Continued walks vs fresh walks (cost).
3. Two-stage vs cluster sampling under intra-node correlation (accuracy).
4. Replacement policy: optimal partition vs all-retain / all-replace.
"""

from conftest import bench_seed

from repro.experiments import ablations


def test_laziness(benchmark, record_table):
    result = benchmark.pedantic(
        ablations.laziness_ablation, rounds=1, iterations=1
    )
    record_table("ablation_laziness", result.to_table())
    assert result.tv_lazy < 0.01
    assert result.tv_nonlazy > 0.4


def test_continued_walks(benchmark, record_table):
    result = benchmark.pedantic(
        ablations.continued_walk_ablation,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    table = (
        result.to_table()
        + f"\nspeedup = {result.speedup:.2f}x (reset time vs full mixing)"
    )
    record_table("ablation_continued_walks", table)
    assert result.speedup > 1.2


def test_cluster_sampling(benchmark, record_table):
    result = benchmark.pedantic(
        ablations.cluster_sampling_ablation,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("ablation_cluster", result.to_table())
    assert result.rmse_cluster > result.rmse_two_stage


def test_replacement_policy(benchmark, record_table):
    result = benchmark.pedantic(
        ablations.replacement_policy_ablation, rounds=1, iterations=1
    )
    record_table("ablation_replacement", result.to_table())
    assert result.variance_optimal < result.variance_all_replace
    assert result.variance_optimal < result.variance_all_retain
