"""E1 / Figure 4-a: snapshot queries vs delta/sigma for ALL and PRED-k.

Regenerates the paper's Figure 4-a series on the TEMPERATURE workload
(epsilon = 2, p = 0.95, delta swept as a multiple of sigma) and checks its
shape: PRED-k <= ALL everywhere, with large reductions at delta/sigma >= 1.
"""

from conftest import bench_scale, bench_seed

from repro.experiments import fig4a


def test_fig4a(benchmark, record_table):
    result = benchmark.pedantic(
        fig4a.run,
        kwargs={"scale": bench_scale(), "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    lines = [result.to_table()]
    last = len(result.ratios) - 1
    for algorithm in result.algorithms[1:]:
        lines.append(
            f"{algorithm} reduction vs ALL at delta/sigma={result.ratios[last]}: "
            f"{100 * result.reduction_vs_all(algorithm, last):.0f}% "
            f"(paper: up to ~75% at delta/sigma=1)"
        )
    record_table("fig4a", "\n".join(lines))

    for algorithm in result.algorithms[1:]:
        for index in range(len(result.ratios)):
            assert (
                result.snapshot_queries[algorithm][index]
                <= result.snapshot_queries["ALL"][index]
            )
        assert result.reduction_vs_all(algorithm, last) > 0.5
