"""Related-work benches: measuring the Section VII claims.

* gossip (push-sum) is only justified when many nodes query
  simultaneously — the crossover K* is reported;
* TAG tree aggregation degrades with churn while Digest's sampling error
  does not.
"""

from conftest import bench_seed

from repro.experiments import related_work


def test_gossip_crossover(benchmark, record_table):
    result = benchmark.pedantic(
        related_work.gossip_crossover,
        kwargs={"scale": 0.3, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("gossip_crossover", result.to_table())
    assert result.digest_messages_per_querier < result.gossip_messages_per_snapshot
    assert result.crossover > 1.0


def test_tag_vs_churn(benchmark, record_table):
    result = benchmark.pedantic(
        related_work.tag_vs_churn,
        kwargs={"scale": 0.15, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("tag_vs_churn", result.to_table())
    rows = result.rows
    assert rows[0].tree_mae < 1e-9  # exact in a static world
    assert rows[-1].tree_mae > rows[0].tree_mae  # degrades with churn
    assert rows[-1].mean_lost_fraction > 0.2  # severe fragmentation
    for row in rows:
        assert row.digest_mae <= 2 * result.epsilon  # Digest unaffected
