"""Extension bench: forward regression (the paper's Section VIII item 1).

Monte-Carlo of the retrospective revision across correlation levels:
gated revision must never hurt and must remove >=10% RMSE at high rho.
"""

import pytest
from conftest import bench_seed

from repro.experiments import forward


@pytest.mark.parametrize("rho", [0.5, 0.85, 0.95])
def test_forward_regression(benchmark, record_table, rho):
    result = benchmark.pedantic(
        forward.simulate,
        kwargs={"rho": rho, "trials": 3000, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table(f"forward_rho{rho}", result.to_table())
    assert result.improvement >= 0.98
    if rho >= 0.85:
        assert result.improvement > 1.05
