"""Protocol-level validation bench.

Executes the sampling walk as a real message protocol (per-hop latency,
local-only handlers) and checks:

* both realizable variants sample the matrix-predicted target;
* the abstract one-message-per-proposal cost model is bracketed by the
  cached (rejections free, advertisements paid) and bounce (rejections
  cost an extra message) protocols.
"""

from conftest import bench_seed

from repro.experiments import protocol_validation


def test_protocol_validation(benchmark, record_table):
    result = benchmark.pedantic(
        protocol_validation.run,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("protocol_validation", result.to_table())
    costs = {row.variant: row.walk_messages_per_walk for row in result.rows}
    assert costs["cached"] <= result.abstract_messages_per_walk
    assert result.abstract_messages_per_walk <= costs["bounce"]
    for row in result.rows:
        assert row.tv_distance < 0.12
