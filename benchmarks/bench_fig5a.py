"""E3+E7 / Figure 5-a: total samples for the four algorithm combinations.

Regenerates the overall-efficiency comparison (delta/sigma = 1,
epsilon/sigma = 0.25, p = 0.95) and the Section VI-B3 improvement numbers:
Digest vs the naive solution (paper: up to 3.2x) and the per-query RPT
improvement factor.
"""

import pytest
from conftest import bench_scale, bench_seed

from repro.experiments import fig5a


@pytest.mark.parametrize("dataset", ["temperature", "memory"])
def test_fig5a(benchmark, record_table, dataset):
    result = benchmark.pedantic(
        fig5a.run,
        kwargs={"dataset": dataset, "scale": bench_scale(), "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    table = (
        result.to_table()
        + f"\nDigest vs naive (ALL+INDEP / PRED3+RPT) = "
        f"{result.digest_vs_naive:.2f}x (paper: up to 3.2x on TEMPERATURE)"
        + f"\nRPT per-query improvement I = {result.rpt_improvement:.2f}"
    )
    record_table(f"fig5a_{dataset}", table)

    digest = result.totals["PRED3+RPT"]
    assert digest <= min(result.totals.values()) * 1.05
    assert result.totals["ALL+INDEP"] == max(result.totals.values())
    assert result.digest_vs_naive > 2.0
    assert result.rpt_improvement > 1.0
