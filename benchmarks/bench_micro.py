"""Micro-benchmarks of the hot paths (pytest-benchmark, multi-round).

These track implementation performance rather than paper artifacts: the
vectorized walk kernel, local-store operations, expression evaluation and
a full engine snapshot step.
"""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.db.store import LocalStore
from repro.network.graph import OverlayGraph
from repro.network.topology import power_law_topology
from repro.sampling.walker import WalkContext, batch_walk
from repro.sampling.weights import uniform_weights


@pytest.fixture(scope="module")
def walk_setup():
    rng = np.random.default_rng(0)
    graph = OverlayGraph(power_law_topology(1000, rng=rng), n_nodes=1000)
    context = WalkContext.from_graph(graph, uniform_weights())
    return context


def test_batch_walk_kernel(benchmark, walk_setup):
    """100 walkers x 100 steps of the vectorized Metropolis kernel."""
    context = walk_setup
    starts = np.zeros(100, dtype=np.int64)

    def run():
        return batch_walk(context, starts, 100, np.random.default_rng(1))

    benchmark(run)


def test_walk_context_snapshot(benchmark, walk_setup):
    """CSR + weight snapshot of a 1000-node overlay (per-occasion cost)."""
    rng = np.random.default_rng(0)
    graph = OverlayGraph(power_law_topology(1000, rng=rng), n_nodes=1000)
    benchmark(WalkContext.from_graph, graph, uniform_weights())


def test_store_insert_delete(benchmark):
    def run():
        store = LocalStore(("v",))
        for i in range(1000):
            store.insert(i, {"v": float(i)})
        for i in range(0, 1000, 2):
            store.delete(i)
        return len(store)

    assert benchmark(run) == 500


def test_expression_scalar_eval(benchmark):
    expression = Expression("0.5 * (memory + storage) - cpu * 2")
    row = {"memory": 1.0, "storage": 2.0, "cpu": 0.25}
    benchmark(expression.evaluate, row)


def test_expression_vectorized_eval(benchmark):
    expression = Expression("0.5 * (memory + storage) - cpu * 2")
    columns = {
        "memory": np.random.default_rng(0).normal(0, 1, 10_000),
        "storage": np.random.default_rng(1).normal(0, 1, 10_000),
        "cpu": np.random.default_rng(2).normal(0, 1, 10_000),
    }
    benchmark(expression.evaluate_columns, columns)


def test_engine_snapshot_step(benchmark):
    """One full snapshot query (repeated sampling) on a 200-node overlay."""
    rng = np.random.default_rng(0)
    graph = OverlayGraph(power_law_topology(200, rng=rng), n_nodes=200)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(4):
            database.insert(node, {"v": float(rng.normal(50, 8))})
    continuous = ContinuousQuery(
        parse_query("SELECT AVG(v) FROM R"),
        Precision(delta=4.0, epsilon=2.0, confidence=0.95),
    )
    engine = DigestEngine(
        graph,
        database,
        continuous,
        origin=0,
        rng=np.random.default_rng(1),
        config=EngineConfig(scheduler="all", evaluator="repeated"),
    )
    clock = {"t": 0}

    def run():
        engine.step(clock["t"])
        clock["t"] += 1

    benchmark.pedantic(run, rounds=30, iterations=1)
