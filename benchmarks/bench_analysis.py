"""Analytical bench: the k-th occasion recursion explains the measured I.

The paper's Eq. 11 one-step improvement at rho = 0.89 is only 1.37, yet
both the paper and this reproduction measure I ~= 1.63 on TEMPERATURE.
The steady-state fixed point of the successive-occasions recursion
(:mod:`repro.core.analysis`) predicts 1.60 — the missing piece. This
bench records the three-way comparison for both datasets.
"""

from conftest import bench_seed

from repro.core.analysis import one_step_improvement, steady_state_improvement
from repro.experiments.report import format_table

PAPER_MEASURED = {"temperature": (0.89, 1.63), "memory": (0.68, 1.21)}


def test_recursion_explains_measured_improvement(benchmark, record_table):
    def compute():
        rows = []
        for dataset, (rho, measured) in PAPER_MEASURED.items():
            rows.append(
                [
                    dataset,
                    rho,
                    one_step_improvement(rho),
                    steady_state_improvement(rho),
                    measured,
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "rho",
            "one-step I (Eq. 11)",
            "steady-state I (recursion)",
            "paper measured I",
        ],
        rows,
        title="Why measured I exceeds Eq. 11: the recursion compounds",
    )
    record_table("analysis_improvement", table)
    for _, rho, one_step, steady, measured in rows:
        assert one_step <= steady
        # the measured value must sit in [one-step, steady-state] (+slack)
        assert one_step - 0.02 <= measured <= steady + 0.07
