"""Guarantee-validation benches: the (epsilon, p) and delta semantics.

The paper defines the fixed-precision semantics (Section II) but never
measures them directly; these benches do:

* empirical confidence coverage >= p (minus sampling slack) for both
  evaluators;
* drift-violation rate on steps PRED-3 skipped stays small.
"""

import pytest
from conftest import bench_seed

from repro.experiments import guarantees


@pytest.mark.parametrize("evaluator", ["independent", "repeated"])
def test_coverage(benchmark, record_table, evaluator):
    result = benchmark.pedantic(
        guarantees.coverage,
        kwargs={
            "evaluator": evaluator,
            "scale": 0.08,
            "trials": 5,
            "steps_per_trial": 30,
            "seed": bench_seed(),
        },
        rounds=1,
        iterations=1,
    )
    record_table(f"coverage_{evaluator}", result.to_table())
    assert result.coverage >= result.confidence - 0.1


def test_resolution(benchmark, record_table):
    result = benchmark.pedantic(
        guarantees.resolution,
        kwargs={"scale": 0.08, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("resolution", result.to_table())
    assert result.skipped_steps > 0
    assert result.violation_rate <= 0.25
