"""E2 / Figure 4-b: samples per snapshot query vs epsilon, INDEP vs RPT.

Regenerates both dataset series and reports the improvement factor
``I = n_indep / n_rpt`` (paper: 1.63 TEMPERATURE, 1.21 MEMORY).
"""

import pytest
from conftest import bench_scale, bench_seed

from repro.experiments import fig4b


@pytest.mark.parametrize("dataset", ["temperature", "memory"])
def test_fig4b(benchmark, record_table, dataset):
    result = benchmark.pedantic(
        fig4b.run,
        kwargs={"dataset": dataset, "scale": bench_scale(), "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    paper_value = {"temperature": 1.63, "memory": 1.21}[dataset]
    table = (
        result.to_table()
        + f"\naverage improvement factor I = {result.improvement_factor:.2f} "
        f"(paper: {paper_value})"
    )
    record_table(f"fig4b_{dataset}", table)

    for indep, rpt in zip(result.samples_indep, result.samples_rpt):
        assert rpt <= indep * 1.05
    assert result.improvement_factor > 1.0


def test_fig4b_correlation_ordering(benchmark, record_table):
    """The higher-rho dataset benefits more from RPT (paper's explanation)."""
    kwargs = {"scale": bench_scale(), "seed": bench_seed()}
    temperature = benchmark.pedantic(
        fig4b.run, kwargs={"dataset": "temperature", **kwargs}, rounds=1, iterations=1
    )
    memory = fig4b.run(dataset="memory", **kwargs)
    record_table(
        "fig4b_ordering",
        f"I(temperature) = {temperature.improvement_factor:.2f} vs "
        f"I(memory) = {memory.improvement_factor:.2f} "
        "(paper: 1.63 vs 1.21 — higher correlation, higher benefit)",
    )
    assert temperature.improvement_factor > memory.improvement_factor
