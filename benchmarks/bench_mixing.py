"""E8 / Theorem 4 + Section VI-B3: sampling cost and its scaling.

Two measurements the paper reports:

* messages per sample at the paper's network sizes (65 on the 530-node
  weather mesh, 43 on the 820-node power-law network);
* poly-logarithmic growth of the mixing time with N on power-law graphs.
"""

from conftest import bench_seed

from repro.experiments import mixing


def test_mixing_scaling(benchmark, record_table):
    result = benchmark.pedantic(
        mixing.run,
        kwargs={"sizes": (128, 256, 512, 1024), "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("mixing_scaling", result.to_table())

    power_rows = [r for r in result.rows if r.topology == "power_law"]
    # Theorem 4 shape: tau / log^4 N bounded (allow generous constant drift)
    ratios = [row.log4_ratio for row in power_rows]
    assert max(ratios) < 5 * max(ratios[0], 0.01)
    # the analytic bound dominates the exact mixing time everywhere
    for row in result.rows:
        assert row.empirical_mix <= row.theorem3_bound


def test_paper_scale_costs(benchmark, record_table):
    """Per-sample message cost at the paper's 530/820-node overlays."""
    from repro.network.graph import OverlayGraph
    from repro.network.topology import augmented_mesh_topology

    def run():
        # the weather overlay is the augmented mesh the TEMPERATURE
        # workload uses (see datasets.temperature for the rationale)
        mesh_row = _measure_augmented_mesh(530, seed=bench_seed())
        power_row = mixing.measure("power_law", 820, seed=bench_seed())
        return mesh_row, power_row

    mesh_cost, power_row = benchmark.pedantic(run, rounds=1, iterations=1)
    table = (
        f"messages/sample: augmented mesh (530 nodes) = {mesh_cost:.0f} "
        f"(paper: 65)\n"
        f"messages/sample: power-law (820 nodes) = "
        f"{power_row.messages_per_sample:.0f} (paper: 43)"
    )
    record_table("mixing_paper_scale", table)
    assert 10 <= mesh_cost <= 300
    assert 10 <= power_row.messages_per_sample <= 300


def _measure_augmented_mesh(n_nodes: int, seed: int) -> float:
    import numpy as np

    from repro.db.relation import P2PDatabase, Schema
    from repro.network.graph import OverlayGraph
    from repro.network.messaging import MessageLedger
    from repro.network.topology import augmented_mesh_topology
    from repro.sampling.operator import SamplerConfig, SamplingOperator

    rng = np.random.default_rng(seed)
    graph = OverlayGraph(
        augmented_mesh_topology(n_nodes, rng=rng), n_nodes=n_nodes
    )
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(1 + int(rng.integers(0, 5))):
            database.insert(node, {"v": float(rng.normal(0, 1))})
    ledger = MessageLedger()
    operator = SamplingOperator(
        graph, rng, ledger, SamplerConfig(gamma=0.05)
    )
    n_samples = 200
    operator.sample_tuples(database, n_samples, origin=0)
    return ledger.total / n_samples
