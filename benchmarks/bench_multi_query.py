"""Multi-query amortization bench: shared session vs. independent engines.

The ISSUE 4 acceptance gate: four co-resident queries with overlapping
epsilon demands must pay >= 30% fewer walk messages per query than four
independent engines, while every query still meets its own ``(epsilon, p)``
contract. Alongside the rendered table this bench saves the
machine-readable ``multi_query.json`` payload that
``collect_results.py`` promotes to ``BENCH_multi_query.json``.
"""

import json
import time

from conftest import bench_seed

from repro.experiments import multi_query


def test_multi_query_amortization(benchmark, record_table, results_dir):
    start = time.perf_counter()
    result = benchmark.pedantic(
        multi_query.run,
        kwargs={
            "scale": 0.08,
            "steps": 30,
            "seed": bench_seed(),
        },
        rounds=1,
        iterations=1,
    )
    wall_clock = time.perf_counter() - start
    record_table("multi_query", result.to_table())
    payload = result.to_json_dict(wall_clock_seconds=wall_clock)
    path = results_dir / "multi_query.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json saved to {path}]")

    # the ISSUE acceptance: >= 30% fewer messages per query via sharing
    assert result.message_savings >= 0.30
    assert result.batches_coalesced > 0
    assert result.pool_hit_rate > 0.5
    # each query's own marginal guarantee, with single-run sampling slack
    for outcome in result.outcomes:
        assert outcome.snapshots > 0
        assert outcome.coverage >= result.confidence - 0.15
