"""E4 / Figure 5-b: total communication cost of the four systems.

Regenerates the message-count comparison for ALL+ALL, ALL+FILTER,
ALL+INDEP and Digest (PRED3+RPT). The paper's ordering (each system an
increasing multiple of Digest) must hold; the orders-of-magnitude spread
grows with scale and matches the paper at REPRO_BENCH_SCALE=1.
"""

from conftest import bench_scale, bench_seed

from repro.experiments import fig5b


def test_fig5b(benchmark, record_table):
    scale = max(0.25, bench_scale())  # below ~0.15 push beats sampling
    result = benchmark.pedantic(
        fig5b.run,
        kwargs={"dataset": "temperature", "scale": scale, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    table = (
        result.to_table()
        + "\npaper: Digest > 10x cheaper than ALL+FILTER, ~100x vs ALL+ALL,"
        + "\n       and even ALL+INDEP beats ALL+FILTER"
    )
    record_table("fig5b", table)

    messages = result.messages
    assert messages["Digest(PRED3+RPT)"] < messages["ALL+INDEP"]
    assert messages["ALL+INDEP"] < messages["ALL+FILTER"]
    assert messages["ALL+FILTER"] < messages["ALL+ALL"]
    assert result.ratio("ALL+ALL") > 10.0
