"""Extension benches: future-work features and added ablations.

* occasion-drift robustness (future work #3): naive stretched-occasion
  estimation lags by ~rate*L/2; timestamp detrending removes the linear
  component;
* Metropolis targeting vs plain-walk importance reweighting (ablation 5).
"""

from conftest import bench_seed

from repro.experiments import occasion_drift
from repro.experiments.ablations import importance_sampling_ablation


def test_occasion_drift(benchmark, record_table):
    result = benchmark.pedantic(
        occasion_drift.run,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("occasion_drift", result.to_table())
    rows = result.rows
    assert rows[-1].naive_mae > 2 * rows[0].naive_mae
    assert rows[-1].detrended_mae < 0.5 * rows[-1].naive_mae


def test_importance_sampling(benchmark, record_table):
    result = benchmark.pedantic(
        importance_sampling_ablation,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("ablation_importance", result.to_table())
    assert result.rmse_metropolis < result.rmse_importance


def test_churn_robustness(benchmark, record_table):
    from repro.experiments import churn_robustness

    result = benchmark.pedantic(
        churn_robustness.run,
        kwargs={"seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    record_table("churn_robustness", result.to_table())
    static_tv = result.rows[0].mean_tv
    for row in result.rows:
        assert row.mean_tv < 2.0 * static_tv + 0.02  # unbiased under churn
        assert row.mean_error < 1.0
    assert result.rows[-1].pool_survival > 0.5
