"""E5 / Table 1: Monte-Carlo verification of the estimator variances.

Checks the closed forms for the regular, regression and combined
estimators (Table 1 / Eq. 8) and the optimal-partition minimum variance
(Eq. 10) against simulation, across three correlation levels.
"""

import pytest
from conftest import bench_seed

from repro.core.repeated import minimum_variance
from repro.experiments import table1


@pytest.mark.parametrize("rho", [0.5, 0.85, 0.95])
def test_table1(benchmark, record_table, rho):
    result = benchmark.pedantic(
        table1.simulate,
        kwargs={"rho": rho, "trials": 3000, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    eq10 = minimum_variance(result.sigma2, result.n, rho)
    table = (
        result.to_table()
        + f"\nEq. 10 minimum variance: {eq10:.5f} "
        f"(empirical combined: {result.empirical['combined']:.5f})"
    )
    record_table(f"table1_rho{rho}", table)

    for name, empirical in result.empirical.items():
        assert empirical == pytest.approx(result.theoretical[name], rel=0.2), name
    assert result.empirical["combined"] == pytest.approx(eq10, rel=0.2)
