"""Aggregate saved benchmark tables into a single RESULTS.md.

Usage::

    pytest benchmarks/ --benchmark-only      # populates benchmarks/results/
    python benchmarks/collect_results.py     # writes RESULTS.md at repo root

Sections are ordered to mirror EXPERIMENTS.md: paper artifacts first,
then guarantee validation, then extensions and ablations.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "RESULTS.md"

SECTIONS: list[tuple[str, list[str]]] = [
    (
        "Paper artifacts",
        [
            "fig4a",
            "fig4b_temperature",
            "fig4b_memory",
            "fig4b_ordering",
            "fig5a_temperature",
            "fig5a_memory",
            "fig5b",
            "table1_rho0.5",
            "table1_rho0.85",
            "table1_rho0.95",
            "table2_temperature",
            "table2_memory",
            "mixing_scaling",
            "mixing_paper_scale",
        ],
    ),
    (
        "Guarantee validation",
        ["coverage_independent", "coverage_repeated", "resolution"],
    ),
    (
        "Extensions",
        [
            "analysis_improvement",
            "forward_rho0.5",
            "forward_rho0.85",
            "forward_rho0.95",
            "gossip_crossover",
            "tag_vs_churn",
            "occasion_drift",
            "churn_robustness",
            "protocol_validation",
        ],
    ),
    (
        "Ablations",
        [
            "ablation_laziness",
            "ablation_continued_walks",
            "ablation_cluster",
            "ablation_replacement",
            "ablation_importance",
        ],
    ),
]


def collect() -> str:
    lines = [
        "# RESULTS — regenerated benchmark tables",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only` followed by",
        "`python benchmarks/collect_results.py`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each table.",
        "",
    ]
    seen: set[str] = set()
    for title, names in SECTIONS:
        section_lines: list[str] = []
        for name in names:
            path = RESULTS_DIR / f"{name}.txt"
            if path.exists():
                seen.add(name)
                section_lines.append("```")
                section_lines.append(path.read_text().rstrip())
                section_lines.append("```")
                section_lines.append("")
        if section_lines:
            lines.append(f"## {title}")
            lines.append("")
            lines.extend(section_lines)
    # anything saved but not explicitly ordered
    extras = sorted(
        p.stem for p in RESULTS_DIR.glob("*.txt") if p.stem not in seen
    )
    if extras:
        lines.append("## Other")
        lines.append("")
        for name in extras:
            lines.append("```")
            lines.append((RESULTS_DIR / f"{name}.txt").read_text().rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def main() -> int:
    if not RESULTS_DIR.exists():
        print(
            "no benchmarks/results/ directory; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    OUTPUT.write_text(collect())
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
