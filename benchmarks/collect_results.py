"""Aggregate saved benchmark tables into a single RESULTS.md.

Usage::

    pytest benchmarks/ --benchmark-only      # populates benchmarks/results/
    python benchmarks/collect_results.py     # writes RESULTS.md at repo root

Sections are ordered to mirror EXPERIMENTS.md: paper artifacts first,
then guarantee validation, then extensions and ablations. Any JSONL
telemetry trace saved under ``benchmarks/results/`` (e.g. by
``python -m repro.experiments.fault_tolerance --trace-out ...``) is
folded in as well: its per-category message attribution and replayed
counters are written to ``benchmarks/results/trace_attribution.json``
and summarized in a final RESULTS.md section (requires ``repro`` on the
path, i.e. ``PYTHONPATH=src`` or an editable install).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
OUTPUT = Path(__file__).parent.parent / "RESULTS.md"
MULTI_QUERY_JSON = Path(__file__).parent.parent / "BENCH_multi_query.json"
FAULTS_JSON = Path(__file__).parent.parent / "BENCH_faults.json"
OBS_JSON = Path(__file__).parent.parent / "BENCH_obs.json"

#: each folded BENCH_*.json and the script whose output it freezes; a
#: payload older than its producer is stale (the producer changed since)
BENCH_PRODUCERS: tuple[tuple[Path, Path], ...] = (
    (OBS_JSON, Path(__file__).parent / "bench_obs_overhead.py"),
    (FAULTS_JSON, Path(__file__).parent / "bench_fault_overhead.py"),
    (
        MULTI_QUERY_JSON,
        Path(__file__).parent.parent
        / "src"
        / "repro"
        / "experiments"
        / "multi_query.py",
    ),
)


def stale_bench_payloads(
    pairs: tuple[tuple[Path, Path], ...] = BENCH_PRODUCERS,
) -> list[str]:
    """Folded BENCH files whose producing bench script is newer (mtime).

    A stale payload means the committed numbers predate the current
    bench code — re-run the producer and re-collect. Returns one warning
    line per stale payload; missing files are not stale (nothing was
    folded yet).
    """
    warnings = []
    for payload, producer in pairs:
        if not payload.exists() or not producer.exists():
            continue
        if payload.stat().st_mtime < producer.stat().st_mtime:
            warnings.append(
                f"{payload.name} is older than {producer.name}; its numbers "
                f"predate the current bench — re-run the bench and re-collect"
            )
    return warnings

SECTIONS: list[tuple[str, list[str]]] = [
    (
        "Paper artifacts",
        [
            "fig4a",
            "fig4b_temperature",
            "fig4b_memory",
            "fig4b_ordering",
            "fig5a_temperature",
            "fig5a_memory",
            "fig5b",
            "table1_rho0.5",
            "table1_rho0.85",
            "table1_rho0.95",
            "table2_temperature",
            "table2_memory",
            "mixing_scaling",
            "mixing_paper_scale",
        ],
    ),
    (
        "Guarantee validation",
        ["coverage_independent", "coverage_repeated", "resolution"],
    ),
    (
        "Extensions",
        [
            "multi_query",
            "analysis_improvement",
            "forward_rho0.5",
            "forward_rho0.85",
            "forward_rho0.95",
            "gossip_crossover",
            "tag_vs_churn",
            "occasion_drift",
            "churn_robustness",
            "protocol_validation",
        ],
    ),
    (
        "Ablations",
        [
            "ablation_laziness",
            "ablation_continued_walks",
            "ablation_cluster",
            "ablation_replacement",
            "ablation_importance",
        ],
    ),
]


def collect() -> str:
    lines = [
        "# RESULTS — regenerated benchmark tables",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only` followed by",
        "`python benchmarks/collect_results.py`. See EXPERIMENTS.md for the",
        "paper-vs-measured discussion of each table.",
        "",
    ]
    seen: set[str] = set()
    for title, names in SECTIONS:
        section_lines: list[str] = []
        for name in names:
            path = RESULTS_DIR / f"{name}.txt"
            if path.exists():
                seen.add(name)
                section_lines.append("```")
                section_lines.append(path.read_text().rstrip())
                section_lines.append("```")
                section_lines.append("")
        if section_lines:
            lines.append(f"## {title}")
            lines.append("")
            lines.extend(section_lines)
    # anything saved but not explicitly ordered
    extras = sorted(
        p.stem for p in RESULTS_DIR.glob("*.txt") if p.stem not in seen
    )
    if extras:
        lines.append("## Other")
        lines.append("")
        for name in extras:
            lines.append("```")
            lines.append((RESULTS_DIR / f"{name}.txt").read_text().rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)


def collect_trace_attribution() -> dict[str, dict[str, object]]:
    """Trace-derived cost attribution for every saved JSONL trace.

    Returns ``{}`` when there are no traces or the ``repro`` package is
    not importable (the tables-only path must keep working standalone).
    """
    traces = sorted(RESULTS_DIR.glob("*.jsonl"))
    if not traces:
        return {}
    try:
        from repro.obs.analysis import (
            counter_dict,
            message_attribution,
            run_metrics_from_trace,
            walk_outcomes,
        )
        from repro.obs.export import import_trace
    except ImportError:
        print(
            "repro not importable (set PYTHONPATH=src); skipping trace "
            "attribution for: "
            + ", ".join(path.name for path in traces),
            file=sys.stderr,
        )
        return {}
    folded: dict[str, dict[str, object]] = {}
    for path in traces:
        trace = import_trace(path)
        folded[path.stem] = {
            "meta": trace.meta,
            "message_attribution": message_attribution(trace),
            "counters": counter_dict(run_metrics_from_trace(trace)),
            "walk_outcomes": walk_outcomes(trace),
        }
    return folded


def render_attribution(folded: dict[str, dict[str, object]]) -> str:
    lines = ["## Trace cost attribution", ""]
    lines.append(
        "Derived by replaying the saved JSONL traces "
        "(`repro trace summarize` shows the same numbers); machine-readable "
        "copy in `benchmarks/results/trace_attribution.json`."
    )
    lines.append("")
    for name, entry in folded.items():
        lines.append(f"### {name}")
        lines.append("")
        lines.append("```json")
        lines.append(json.dumps(entry, indent=2, sort_keys=True))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def emit_multi_query_json() -> bool:
    """Promote the multi-query bench payload to ``BENCH_multi_query.json``.

    The bench (or the CI smoke run via ``python -m
    repro.experiments.multi_query --json-out``) writes
    ``benchmarks/results/multi_query.json`` with messages per query under
    both regimes, the pool hit rate, and wall-clock; this copies it to the
    repo root under the name CI uploads as an artifact. Returns whether
    the payload existed.
    """
    source = RESULTS_DIR / "multi_query.json"
    if not source.exists():
        return False
    payload = json.loads(source.read_text())
    MULTI_QUERY_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {MULTI_QUERY_JSON}")
    return True


def emit_faults_json() -> bool:
    """Promote the fault-overhead bench payload to ``BENCH_faults.json``.

    ``benchmarks/bench_fault_overhead.py`` writes
    ``benchmarks/results/fault_overhead.json`` with the clean vs
    fully-instrumented wall-clock comparison and the RNG-transparency
    verdict; this copies it to the repo root under the name CI uploads as
    an artifact. Returns whether the payload existed.
    """
    source = RESULTS_DIR / "fault_overhead.json"
    if not source.exists():
        return False
    payload = json.loads(source.read_text())
    FAULTS_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {FAULTS_JSON}")
    return True


def emit_obs_json() -> bool:
    """Promote the observability bench payload to ``BENCH_obs.json``.

    ``benchmarks/bench_obs_overhead.py`` writes
    ``benchmarks/results/obs_overhead.json`` with the NullTracer vs
    full-telemetry-stack wall-clock comparison (gated end-to-end session
    plus the informational bare-walk hot path) and the RNG-transparency
    verdicts; this copies it to the repo root under the name CI uploads
    as an artifact. Returns whether the payload existed.
    """
    source = RESULTS_DIR / "obs_overhead.json"
    if not source.exists():
        return False
    payload = json.loads(source.read_text())
    OBS_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OBS_JSON}")
    return True


def render_obs_overhead() -> str:
    """RESULTS.md section for the observability-overhead payload ('' if absent)."""
    source = RESULTS_DIR / "obs_overhead.json"
    if not source.exists():
        return ""
    payload = json.loads(source.read_text())
    hot = payload.get("hot_path", {})
    lines = [
        "## Observability overhead",
        "",
        "Full telemetry stack (tracer + counters + live windows + alert",
        "engine + guarantee auditor) vs `NullTracer`, bit-identical",
        "outputs required; machine-readable copy in `BENCH_obs.json`.",
        "",
        "```",
        f"session (gated):  {payload['overhead']:+.1%} "
        f"(budget {payload['overhead_budget']:.0%}), "
        f"{payload['windows_closed']} windows, "
        f"estimates identical: {payload['samples_identical']}",
    ]
    if hot:
        lines.append(
            f"walk hot path:    {hot['overhead']:+.1%} (informational), "
            f"samples identical: {hot['samples_identical']}"
        )
    lines.extend(["```", ""])
    return "\n".join(lines)


def main() -> int:
    if not RESULTS_DIR.exists():
        print(
            "no benchmarks/results/ directory; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    emit_multi_query_json()
    emit_faults_json()
    emit_obs_json()
    for warning in stale_bench_payloads():
        print(f"warning: {warning}", file=sys.stderr)
    output = collect()
    obs_section = render_obs_overhead()
    if obs_section:
        output = output.rstrip("\n") + "\n\n" + obs_section
    folded = collect_trace_attribution()
    if folded:
        attribution_json = RESULTS_DIR / "trace_attribution.json"
        attribution_json.write_text(
            json.dumps(folded, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {attribution_json}")
        output = output.rstrip("\n") + "\n\n" + render_attribution(folded)
    OUTPUT.write_text(output)
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
