"""Overhead of the failure-model machinery when nothing actually fails.

The robustness layers (fault plan, retry supervision, partition gate,
health-aware routing) sit on the per-message hot path, so their cost must
be paid even on a perfectly healthy overlay. This bench runs the same
supervised-walk workload twice — once bare, once with a no-op
:class:`~repro.network.faults.FaultPlan`, an empty
:class:`~repro.network.partitions.PartitionPlan`, retry supervision, and
:class:`~repro.network.health.HealthConfig` all engaged — and asserts the
machinery costs < 15% wall-clock over the bare runtime while drawing
bit-identical samples (the RNG-transparency contract).

Writes ``benchmarks/results/fault_overhead.json``, which
``collect_results.py`` promotes to ``BENCH_faults.json`` at the repo
root; CI runs this module standalone (``python
benchmarks/bench_fault_overhead.py --json-out BENCH_faults.json``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.health import HealthConfig
from repro.network.messaging import MessageLedger
from repro.network.partitions import PartitionPlan, PartitionSchedule
from repro.network.topology import power_law_topology
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import SimulationEngine

OVERHEAD_BUDGET = 0.15


def _run_workload(
    instrumented: bool,
    seed: int,
    n_nodes: int,
    n_walks: int,
    walk_length: int,
) -> tuple[list[int], float]:
    """One workload run; returns (samples, wall-clock seconds)."""
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        SimulationEngine(),
        np.random.default_rng(seed + 1),
        MessageLedger(),
        ProtocolConfig(variant="bounce"),
        # all machinery engaged, none of it injecting anything: the noop
        # fault plan draws nothing, the empty partition plan blocks
        # nothing, the timeout is too large to ever fire
        faults=FaultPlan(FaultConfig(), rng=seed + 100) if instrumented else None,
        retry=(
            RetryPolicy(timeout=1_000_000, max_retries=0)
            if instrumented
            else None
        ),
        partitions=(
            PartitionPlan(PartitionSchedule(), rng=seed + 101)
            if instrumented
            else None
        ),
        health=HealthConfig() if instrumented else None,
    )
    start = time.perf_counter()
    sampled = sampler.run_walks(origin=0, n=n_walks, walk_length=walk_length)
    return sampled, time.perf_counter() - start


def measure(
    seed: int = 0,
    n_nodes: int = 64,
    n_walks: int = 150,
    walk_length: int = 25,
    repeats: int = 5,
) -> dict[str, object]:
    """Median-of-repeats comparison; clean and instrumented interleaved."""
    clean_times: list[float] = []
    instrumented_times: list[float] = []
    clean_samples: list[int] = []
    instrumented_samples: list[int] = []
    for _ in range(repeats):
        clean_samples, elapsed = _run_workload(
            False, seed, n_nodes, n_walks, walk_length
        )
        clean_times.append(elapsed)
        instrumented_samples, elapsed = _run_workload(
            True, seed, n_nodes, n_walks, walk_length
        )
        instrumented_times.append(elapsed)
    clean = statistics.median(clean_times)
    instrumented = statistics.median(instrumented_times)
    return {
        "workload": {
            "n_nodes": n_nodes,
            "n_walks": n_walks,
            "walk_length": walk_length,
            "repeats": repeats,
            "seed": seed,
        },
        "clean_seconds": clean,
        "instrumented_seconds": instrumented,
        "overhead": (instrumented - clean) / clean,
        "overhead_budget": OVERHEAD_BUDGET,
        "samples_identical": clean_samples == instrumented_samples,
    }


def test_fault_machinery_overhead(results_dir):
    payload = measure()
    path = results_dir / "fault_overhead.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json saved to {path}]")
    # the noop machinery must be RNG-transparent and nearly free
    assert payload["samples_identical"]
    assert payload["overhead"] < OVERHEAD_BUDGET, (
        f"failure-model machinery costs {payload['overhead']:.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).parent / "results" / "fault_overhead.json"),
        help="where to write the machine-readable payload",
    )
    args = parser.parse_args(argv)
    payload = measure(seed=args.seed, repeats=args.repeats)
    out = Path(args.json_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"clean {payload['clean_seconds']:.3f}s, instrumented "
        f"{payload['instrumented_seconds']:.3f}s, overhead "
        f"{payload['overhead']:.1%} (budget {OVERHEAD_BUDGET:.0%}) "
        f"-> {out}"
    )
    if not payload["samples_identical"]:
        print("FAIL: noop machinery perturbed the sampled nodes")
        return 1
    if payload["overhead"] >= OVERHEAD_BUDGET:
        print("FAIL: overhead budget exceeded")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
