"""What does observability itself cost on a real continuous-query run?

Every span, event, and live-window update sits inside the hot loop, so
the whole telemetry stack — the :class:`~repro.obs.tracer.SinkTracer`,
the :class:`~repro.obs.tracer.RunMetricsSink` counters, the streaming
:class:`~repro.obs.live.LivePipeline` windows, the
:class:`~repro.obs.alerts.AlertEngine` evaluating rules at every window
close, and the :class:`~repro.obs.audit.GuaranteeAuditor` — must be
cheap enough to leave on. The gated measurement runs the same
multi-query :class:`~repro.core.session.DigestSession` twice: once with
the no-op :class:`~repro.obs.tracer.NullTracer` (the zero-cost baseline
every uninstrumented run gets) and once with the full stack attached,
and asserts the stack costs < 20% wall-clock while producing
bit-identical snapshot estimates (tracing must never touch an RNG
stream).

The payload also gates the *walk hot path* in isolation — a bare
supervised-walk workload with nothing but walks, the worst case for
relative overhead since there is no estimator work to amortize against.
Since the lifecycle hooks gained the ``is_recording`` fast path (span
events are constructed only when a sink retains them; live analytics
read the aggregate ``messages_by_category`` span attribute instead),
this worst case is pinned below :data:`HOT_PATH_BUDGET`.

Writes ``benchmarks/results/obs_overhead.json``, which
``collect_results.py`` promotes to ``BENCH_obs.json`` at the repo root;
CI runs this module standalone (``python
benchmarks/bench_obs_overhead.py --json-out BENCH_obs.json``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.query import ContinuousQuery, Precision, Query
from repro.core.session import DigestSession, EngineConfig
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.experiments.slo_audit import default_rules
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, power_law_topology
from repro.obs.alerts import AlertEngine
from repro.obs.live import LivePipeline, WindowConfig
from repro.obs.tracer import NULL_TRACER, RunMetricsSink, SinkTracer
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler
from repro.sampling.weights import uniform_weights
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import RunMetrics

OVERHEAD_BUDGET = 0.20
#: bare-walk worst case: per-hop/per-message hooks with no estimator
#: work to amortize against (was ~45% before the is_recording fast path)
HOT_PATH_BUDGET = 0.30


def _run_session(
    instrumented: bool,
    seed: int,
    n_nodes: int,
    per_node: int,
    steps: int,
    n_queries: int,
) -> tuple[list[tuple[int, str, float, float]], float, int]:
    """One audited session run; returns (estimates, seconds, windows)."""
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(per_node):
            database.insert(node, {"v": float(rng.normal(50.0, 10.0))})
    tracer = SinkTracer() if instrumented else NULL_TRACER
    session = DigestSession(
        graph,
        database,
        origin=0,
        rng=np.random.default_rng(seed + 1),
        tracer=tracer,
    )
    if instrumented:
        session.attach_live(default_rules(), WindowConfig(width=10, slide=3))
    config = EngineConfig(scheduler="all", evaluator="independent")
    for _ in range(n_queries):
        session.add_query(
            ContinuousQuery(
                Query(AggregateOp.AVG, Expression("v")),
                Precision(delta=0.8, epsilon=0.8, confidence=0.9),
                duration=steps,
            ),
            config=config,
        )
    estimates: list[tuple[int, str, float, float]] = []
    start = time.perf_counter()
    for tick in range(steps):
        for qid, estimate in session.step(tick).items():
            estimates.append((tick, qid, estimate.aggregate, estimate.variance))
    session.finish_live(steps)
    elapsed = time.perf_counter() - start
    pipeline = session.live_pipeline
    windows = len(pipeline.windows) if pipeline is not None else 0
    return estimates, elapsed, windows


def _run_walks(
    instrumented: bool,
    seed: int,
    n_nodes: int,
    n_walks: int,
    walk_length: int,
) -> tuple[list[int], float]:
    """One bare supervised-walk run; returns (samples, seconds)."""
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    engine = SimulationEngine()
    if instrumented:
        pipeline = LivePipeline(WindowConfig(width=50, slide=4))
        AlertEngine(pipeline, [])
        tracer = SinkTracer(
            sinks=[RunMetricsSink(RunMetrics()), pipeline],
            clock=engine.clock,
        )
    else:
        tracer = NULL_TRACER
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        engine,
        np.random.default_rng(seed + 1),
        MessageLedger(),
        ProtocolConfig(variant="bounce"),
        tracer=tracer,
    )
    start = time.perf_counter()
    sampled = sampler.run_walks(origin=0, n=n_walks, walk_length=walk_length)
    elapsed = time.perf_counter() - start
    return sampled, elapsed


def measure(
    seed: int = 0,
    n_nodes: int = 36,
    per_node: int = 5,
    steps: int = 40,
    n_queries: int = 2,
    repeats: int = 5,
) -> dict[str, object]:
    """Median-of-repeats comparison; baseline and instrumented interleaved."""
    baseline_times: list[float] = []
    instrumented_times: list[float] = []
    baseline_estimates: list[tuple[int, str, float, float]] = []
    instrumented_estimates: list[tuple[int, str, float, float]] = []
    windows_closed = 0
    for _ in range(repeats):
        baseline_estimates, elapsed, _ = _run_session(
            False, seed, n_nodes, per_node, steps, n_queries
        )
        baseline_times.append(elapsed)
        instrumented_estimates, elapsed, windows_closed = _run_session(
            True, seed, n_nodes, per_node, steps, n_queries
        )
        instrumented_times.append(elapsed)
    baseline = statistics.median(baseline_times)
    instrumented = statistics.median(instrumented_times)

    walk_base_times: list[float] = []
    walk_instr_times: list[float] = []
    walk_base_samples: list[int] = []
    walk_instr_samples: list[int] = []
    for _ in range(repeats):
        walk_base_samples, elapsed = _run_walks(False, seed, 64, 150, 25)
        walk_base_times.append(elapsed)
        walk_instr_samples, elapsed = _run_walks(True, seed, 64, 150, 25)
        walk_instr_times.append(elapsed)
    walk_base = statistics.median(walk_base_times)
    walk_instr = statistics.median(walk_instr_times)

    return {
        "workload": {
            "n_nodes": n_nodes,
            "per_node": per_node,
            "steps": steps,
            "n_queries": n_queries,
            "repeats": repeats,
            "seed": seed,
        },
        "baseline_seconds": baseline,
        "instrumented_seconds": instrumented,
        "overhead": (instrumented - baseline) / baseline,
        "overhead_budget": OVERHEAD_BUDGET,
        "windows_closed": windows_closed,
        "samples_identical": baseline_estimates == instrumented_estimates,
        "hot_path": {
            "workload": {"n_nodes": 64, "n_walks": 150, "walk_length": 25},
            "baseline_seconds": walk_base,
            "instrumented_seconds": walk_instr,
            "overhead": (walk_instr - walk_base) / walk_base,
            "overhead_budget": HOT_PATH_BUDGET,
            "samples_identical": walk_base_samples == walk_instr_samples,
        },
    }


def test_obs_stack_overhead(results_dir):
    payload = measure()
    path = results_dir / "obs_overhead.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[json saved to {path}]")
    # the telemetry stack must be RNG-transparent (end to end and on the
    # bare walk path), actually stream windows, and stay within its
    # wall-clock budget on the real workload
    assert payload["samples_identical"]
    assert payload["hot_path"]["samples_identical"]
    assert payload["windows_closed"] > 0
    assert payload["overhead"] < OVERHEAD_BUDGET, (
        f"telemetry stack costs {payload['overhead']:.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
    assert payload["hot_path"]["overhead"] < HOT_PATH_BUDGET, (
        f"bare-walk hot path costs {payload['hot_path']['overhead']:.1%} "
        f"(budget {HOT_PATH_BUDGET:.0%})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).parent / "results" / "obs_overhead.json"),
        help="where to write the machine-readable payload",
    )
    args = parser.parse_args(argv)
    payload = measure(seed=args.seed, repeats=args.repeats)
    out = Path(args.json_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"session: baseline {payload['baseline_seconds']:.3f}s, "
        f"instrumented {payload['instrumented_seconds']:.3f}s, overhead "
        f"{payload['overhead']:.1%} (budget {OVERHEAD_BUDGET:.0%}), "
        f"{payload['windows_closed']} windows; hot path: "
        f"{payload['hot_path']['overhead']:.1%} -> {out}"
    )
    if not payload["samples_identical"]:
        print("FAIL: tracing perturbed the session's estimates")
        return 1
    if not payload["hot_path"]["samples_identical"]:
        print("FAIL: tracing perturbed the sampled nodes")
        return 1
    if payload["windows_closed"] == 0:
        print("FAIL: live pipeline closed no windows")
        return 1
    if payload["overhead"] >= OVERHEAD_BUDGET:
        print("FAIL: overhead budget exceeded")
        return 1
    if payload["hot_path"]["overhead"] >= HOT_PATH_BUDGET:
        print("FAIL: hot-path overhead budget exceeded")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
