"""Benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor for the figure benches
  (default 0.1; 1.0 = the paper's full published sizes).
* ``REPRO_BENCH_SEED`` — RNG seed (default 0).

Each figure bench writes its rendered table to ``benchmarks/results/`` so
the regenerated paper artifacts survive the pytest output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: float = 0.1) -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", 0))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a rendered experiment table to the results directory."""

    def write(name: str, table: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[table saved to {path}]")

    return write
