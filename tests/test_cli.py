"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestExperimentCommand:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "combined" in out

    def test_table2_small(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.05"]) == 0
        assert "rho" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])


class TestQueryCommand:
    def test_basic_query(self, capsys):
        code = main(
            [
                "query",
                "--query",
                "SELECT AVG(temperature) FROM R",
                "--scale",
                "0.04",
                "--steps",
                "6",
                "--scheduler",
                "all",
                "--evaluator",
                "independent",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot queries" in out
        assert "estimate=" in out

    def test_filtered_avg_falls_back(self, capsys):
        code = main(
            [
                "query",
                "--query",
                "SELECT AVG(temperature) FROM R WHERE temperature > 55",
                "--scale",
                "0.04",
                "--steps",
                "4",
            ]
        )
        assert code == 0
        assert "falling back" in capsys.readouterr().out

    def test_query_required(self):
        with pytest.raises(SystemExit):
            main(["query"])


class TestTraceCommands:
    def test_record_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert (
            main(
                [
                    "trace",
                    "record",
                    "--output",
                    path,
                    "--scale",
                    "0.04",
                    "--steps",
                    "5",
                ]
            )
            == 0
        )
        assert "recorded" in capsys.readouterr().out
        assert (
            main(
                [
                    "trace",
                    "replay",
                    "--input",
                    path,
                    "--query",
                    "SELECT AVG(temperature) FROM R",
                    "--delta",
                    "2",
                    "--epsilon",
                    "1.5",
                ]
            )
            == 0
        )
        assert "replayed 5 steps" in capsys.readouterr().out
