"""Tests for the cross-module digest analyzer (tools.digest_analyzer).

Organization mirrors the architecture: fixture-driven tests per
cross-module rule (DGL009-DGL015) — each seeded violation must be
caught, and for the reachability rules the same fixture is shown to be
*invisible* to the old per-file rule it upgrades — then the pragma
layer, the baseline, the cache, SARIF, the CLI, and the repository
meta-test (the invariant CI enforces: zero non-baselined findings).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.digest_analyzer import (
    RULE_CATALOG,
    AnalysisResult,
    Finding,
    analyze_paths,
    analyze_sources,
    write_baseline,
)
from tools.digest_analyzer.baseline import apply_baseline, load_baseline
from tools.digest_analyzer.pragmas import parse_pragmas
from tools.digest_analyzer.sarif import render_sarif
from tools.digest_analyzer.schema_facts import (
    SchemaParseError,
    parse_schema_source,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SCHEMA_PATH = "src/repro/obs/schema.py"
SCHEMA_TEXT = (REPO_ROOT / SCHEMA_PATH).read_text(encoding="utf-8")


def analyze(
    sources: dict[str, str], select: set[str] | None = None
) -> AnalysisResult:
    """Run the engine over dedented fixture sources plus the real schema."""
    merged = {SCHEMA_PATH: SCHEMA_TEXT}
    merged.update(
        {path: textwrap.dedent(text) for path, text in sources.items()}
    )
    return analyze_sources(
        merged, select=frozenset(select) if select else None
    )


def codes(
    sources: dict[str, str], select: set[str] | None = None
) -> list[str]:
    return [f.code for f in analyze(sources, select).findings]


def run_cli(*args: str, cwd: Path = REPO_ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.digest_analyzer", *args],
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT)},
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# DGL009 -- trace-schema conformance
# ----------------------------------------------------------------------


class TestTraceSchemaConformance:
    PATH = "src/repro/core/snippet.py"

    def test_undeclared_span_name_literal(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                def run(tracer, t):
                    span = tracer.span("bogus_span", time=t)
                """
            },
            select={"DGL009"},
        )
        assert [f.code for f in result.findings] == ["DGL009"]
        assert "undeclared span name 'bogus_span'" in result.findings[0].message

    def test_declared_literal_must_become_constant(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                def run(tracer, t):
                    span = tracer.span("walk", time=t)
                """
            },
            select={"DGL009"},
        )
        assert [f.code for f in result.findings] == ["DGL009"]
        assert "repro.obs.schema.SPAN_WALK" in result.findings[0].message

    def test_undeclared_attribute_key(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                from repro.obs.schema import SPAN_WALK

                def run(tracer, t):
                    tracer.span(SPAN_WALK, time=t, walker_id=1, bogus_key=2)
                """
            },
            select={"DGL009"},
        )
        messages = [f.message for f in result.findings]
        assert any("bogus_key" in m for m in messages)

    def test_missing_required_keys_over_visible_lifecycle(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                from repro.obs.schema import SPAN_WALK

                def run(tracer, t):
                    span = tracer.span(SPAN_WALK, time=t, walker_id=1)
                    tracer.end(span, time=t + 1, outcome="completed")
                """
            },
            select={"DGL009"},
        )
        missing = [f for f in result.findings if "required" in f.message]
        assert len(missing) == 1
        for key in ("origin", "walk_length", "attempts"):
            assert key in missing[0].message

    def test_complete_lifecycle_is_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    from repro.obs.schema import SPAN_WALK

                    def run(tracer, t):
                        span = tracer.span(
                            SPAN_WALK, time=t, walker_id=1, origin=0, walk_length=8
                        )
                        tracer.end(
                            span, time=t + 1, outcome="completed", attempts=1
                        )
                    """
                },
                select={"DGL009"},
            )
            == []
        )

    def test_span_constant_recorded_as_event(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                from repro.obs.schema import SPAN_WALK

                def run(tracer, t):
                    tracer.event(SPAN_WALK, time=t)
                """
            },
            select={"DGL009"},
        )
        assert [f.code for f in result.findings] == ["DGL009"]
        assert "declared as a span" in result.findings[0].message

    def test_dynamic_name_expression(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                def run(tracer, t, which):
                    tracer.event(which, time=t)
                """
            },
            select={"DGL009"},
        )
        assert [f.code for f in result.findings] == ["DGL009"]
        assert "must be a repro.obs.schema constant" in result.findings[0].message

    def test_event_missing_required_keys(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                from repro.obs.schema import EVENT_HOP

                def run(tracer, t, span):
                    tracer.event(EVENT_HOP, time=t, span=span, node=3)
                """
            },
            select={"DGL009"},
        )
        assert [f.code for f in result.findings] == ["DGL009"]
        assert "steps_remaining" in result.findings[0].message

    def test_tests_are_out_of_scope(self) -> None:
        assert (
            codes(
                {
                    "tests/obs/snippet.py": """\
                    def run(tracer):
                        tracer.span("walk", time=0)
                    """
                },
                select={"DGL009"},
            )
            == []
        )

    def test_repo_producers_are_clean(self) -> None:
        """The real src/repro tree conforms to its own schema."""
        result = analyze_paths(
            [REPO_ROOT / "src"],
            repo_root=REPO_ROOT,
            select=frozenset({"DGL009"}),
        )
        assert result.findings == []


class TestFastAppendExtraction:
    """The inlined hot-path emitter shape stays schema-checked.

    ``<span>.events.append(TraceEvent(time, NAME, {...}))`` is the
    allocation-light equivalent of ``span.add_event(...)``; the
    extractor must summarize it as an ``add_event`` fact so DGL009 sees
    the same attribute keys it would on the method form.
    """

    PATH = "src/repro/core/snippet.py"

    def test_fact_shape_matches_add_event(self) -> None:
        from tools.digest_analyzer.extract import extract_file_facts

        source = textwrap.dedent(
            """\
            from repro.obs.schema import EVENT_HOP
            from repro.obs.tracer import TraceEvent

            def run(span, t, node):
                span.events.append(
                    TraceEvent(t, EVENT_HOP, {"node": node, "bogus_key": 1})
                )
            """
        )
        facts, _findings = extract_file_facts(source, self.PATH)
        (fact,) = facts.trace_calls
        assert fact.kind == "add_event"
        assert fact.name_ref == "repro.obs.schema.EVENT_HOP"
        assert fact.name_literal is None
        assert fact.attr_keys == ["node", "bogus_key"]
        assert fact.span_var == "span"

    def test_fast_append_is_schema_checked(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                from repro.obs.schema import EVENT_HOP, SPAN_WALK
                from repro.obs.tracer import TraceEvent

                def run(tracer, t, node):
                    span = tracer.span(
                        SPAN_WALK, time=t, walker_id=1, origin=0, walk_length=4
                    )
                    span.events.append(
                        TraceEvent(t, EVENT_HOP, {"node": node, "bogus": 1})
                    )
                    tracer.end(span, time=t + 1, outcome="completed", attempts=1)
                """
            },
            select={"DGL009"},
        )
        messages = [f.message for f in result.findings]
        assert any("steps_remaining" in m for m in messages)
        assert any("bogus" in m for m in messages)

    def test_conforming_fast_append_is_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    from repro.obs.schema import EVENT_HOP, SPAN_WALK
                    from repro.obs.tracer import TraceEvent

                    def run(tracer, t, node, left):
                        span = tracer.span(
                            SPAN_WALK, time=t, walker_id=1, origin=0, walk_length=4
                        )
                        span.events.append(
                            TraceEvent(
                                t, EVENT_HOP, {"node": node, "steps_remaining": left}
                            )
                        )
                        tracer.end(
                            span, time=t + 1, outcome="completed", attempts=1
                        )
                    """
                },
                select={"DGL009"},
            )
            == []
        )

    def test_non_span_receiver_is_not_matched(self) -> None:
        from tools.digest_analyzer.extract import extract_file_facts

        source = textwrap.dedent(
            """\
            from repro.obs.tracer import TraceEvent

            def run(queue, t):
                queue.events.append(TraceEvent(t, "hop", {}))
            """
        )
        facts, _findings = extract_file_facts(source, self.PATH)
        assert facts.trace_calls == []


# ----------------------------------------------------------------------
# DGL010 -- hard-coded trace names in consumers
# ----------------------------------------------------------------------


class TestTraceNameLiterals:
    def test_name_comparison_literal(self) -> None:
        result = analyze(
            {
                "src/repro/obs/consumer.py": """\
                def walks(trace):
                    return [s for s in trace.spans if s.name == "walk"]
                """
            },
            select={"DGL010"},
        )
        assert [f.code for f in result.findings] == ["DGL010"]
        assert "SPAN_WALK" in result.findings[0].message

    def test_spans_named_literal(self) -> None:
        result = analyze(
            {
                "tools/trace_analysis/extra.py": """\
                def pool_serves(trace):
                    return trace.spans_named("pool_serve")
                """
            },
            select={"DGL010"},
        )
        assert [f.code for f in result.findings] == ["DGL010"]
        assert "SPAN_POOL_SERVE" in result.findings[0].message

    def test_membership_comparison_literals(self) -> None:
        result = analyze(
            {
                "benchmarks/collect.py": """\
                def interesting(span):
                    return span.name in ("walk", "pool_serve")
                """
            },
            select={"DGL010"},
        )
        assert [f.code for f in result.findings] == ["DGL010", "DGL010"]

    def test_non_trace_literal_is_clean(self) -> None:
        assert (
            codes(
                {
                    "src/repro/obs/consumer.py": """\
                    def named_bob(things):
                        return [t for t in things if t.name == "bob"]
                    """
                },
                select={"DGL010"},
            )
            == []
        )

    def test_attr_value_literal_is_clean(self) -> None:
        """'walk' as an attribute *value* is not a name position."""
        assert (
            codes(
                {
                    "src/repro/obs/consumer.py": """\
                    def walk_messages(events):
                        return [e for e in events if e.attrs.get("category") == "walk"]
                    """
                },
                select={"DGL010"},
            )
            == []
        )

    def test_tests_are_out_of_scope(self) -> None:
        assert (
            codes(
                {
                    "tests/obs/snippet.py": """\
                    def walks(trace):
                        return trace.spans_named("walk")
                    """
                },
                select={"DGL010"},
            )
            == []
        )


# ----------------------------------------------------------------------
# DGL011 -- RNG-stream provenance
# ----------------------------------------------------------------------


class TestRngStreamCrossing:
    PATH = "src/repro/experiments/snippet.py"

    def test_one_generator_two_streams(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                import numpy as np
                from repro.network.churn import ChurnProcess
                from repro.network.faults import FaultPlan

                def wire(graph, config, rng: np.random.Generator):
                    plan = FaultPlan(config, rng=rng)
                    churn = ChurnProcess(graph, rng=rng)
                    return plan, churn
                """
            },
            select={"DGL011"},
        )
        assert [f.code for f in result.findings] == ["DGL011"]
        message = result.findings[0].message
        assert "'churn'" in message and "'fault'" in message

    def test_crossing_hidden_behind_helper(self) -> None:
        """The generator reaches the second stream only through a local
        helper -- invisible to any per-file syntactic check."""
        result = analyze(
            {
                self.PATH: """\
                import numpy as np
                from repro.network.churn import ChurnProcess
                from repro.network.faults import FaultPlan

                def _build_faults(config, rng: np.random.Generator):
                    return FaultPlan(config, rng=rng)

                def wire(graph, config, rng: np.random.Generator):
                    plan = _build_faults(config, rng)
                    churn = ChurnProcess(graph, rng=rng)
                    return plan, churn
                """
            },
            select={"DGL011"},
        )
        assert [f.code for f in result.findings] == ["DGL011"]
        assert result.findings[0].line == 10  # the ChurnProcess call
        assert "_build_faults" in result.findings[0].message

    def test_separate_streams_are_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    import numpy as np
                    from repro.network.churn import ChurnProcess
                    from repro.network.faults import FaultPlan

                    def wire(graph, config, seed: int):
                        fault_rng = np.random.default_rng(seed)
                        churn_rng = np.random.default_rng(seed + 1)
                        plan = FaultPlan(config, rng=fault_rng)
                        churn = ChurnProcess(graph, rng=churn_rng)
                        return plan, churn
                    """
                },
                select={"DGL011"},
            )
            == []
        )

    def test_alias_does_not_launder_the_stream(self) -> None:
        result = analyze(
            {
                self.PATH: """\
                import numpy as np
                from repro.network.churn import ChurnProcess
                from repro.network.faults import FaultPlan

                def wire(graph, config, rng: np.random.Generator):
                    plan = FaultPlan(config, rng=rng)
                    other = rng
                    churn = ChurnProcess(graph, rng=other)
                    return plan, churn
                """
            },
            select={"DGL011"},
        )
        assert [f.code for f in result.findings] == ["DGL011"]

    def test_same_stream_twice_is_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    import numpy as np
                    from repro.network.faults import FaultPlan

                    def wire(config, other_config, rng: np.random.Generator):
                        first = FaultPlan(config, rng=rng)
                        second = FaultPlan(other_config, rng=rng)
                        return first, second
                    """
                },
                select={"DGL011"},
            )
            == []
        )

    def test_inline_draws_plus_one_sink_are_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    import numpy as np
                    from repro.network.topology import power_law_topology

                    def build(n: int, seed: int):
                        rng = np.random.default_rng(seed)
                        edges = power_law_topology(n, rng=rng)
                        weights = rng.normal(0.0, 1.0, n)
                        return edges, weights
                    """
                },
                select={"DGL011"},
            )
            == []
        )


# ----------------------------------------------------------------------
# DGL012 -- wall-clock reachability
# ----------------------------------------------------------------------

_TIMING_HELPER = """\
import time

def now_ms() -> int:
    return int(time.time() * 1000)
"""

_SIM_CALLER = """\
from repro.util.timing import now_ms

def tick() -> int:
    return now_ms()
"""


class TestWallClockReachability:
    def test_reaches_wall_clock_through_helper_module(self) -> None:
        sources = {
            "src/repro/util/timing.py": _TIMING_HELPER,
            "src/repro/core/runner.py": _SIM_CALLER,
        }
        result = analyze(sources, select={"DGL012"})
        assert [f.code for f in result.findings] == ["DGL012"]
        finding = result.findings[0]
        assert finding.path == "src/repro/core/runner.py"
        assert "time.time" in finding.message
        assert "repro.util.timing.now_ms" in finding.message

    def test_old_per_file_rule_misses_the_same_fixture(self) -> None:
        """DGL002 is blind to the indirection DGL012 exists to catch:
        the wall-clock read lives outside the simulation scopes, the
        simulation file never names a clock."""
        sources = {
            "src/repro/util/timing.py": _TIMING_HELPER,
            "src/repro/core/runner.py": _SIM_CALLER,
        }
        assert codes(sources, select={"DGL002"}) == []

    def test_two_level_indirection(self) -> None:
        sources = {
            "src/repro/util/timing.py": _TIMING_HELPER,
            "src/repro/util/stats.py": """\
            from repro.util.timing import now_ms

            def stamp() -> int:
                return now_ms()
            """,
            "src/repro/sampling/walker.py": """\
            from repro.util.stats import stamp

            def step() -> int:
                return stamp()
            """,
        }
        result = analyze(sources, select={"DGL012"})
        assert [
            (f.code, f.path) for f in result.findings
        ] == [("DGL012", "src/repro/sampling/walker.py")]

    def test_profiling_module_is_exempt(self) -> None:
        sources = {
            "src/repro/obs/profile_extra.py": """\
            import time

            def profile_now() -> float:
                return time.perf_counter()
            """,
            "src/repro/core/runner.py": """\
            from repro.obs.profile_extra import profile_now

            def tick() -> float:
                return profile_now()
            """,
        }
        # only repro.obs.profile* modules are whitelisted wall-clock readers
        result = analyze(sources, select={"DGL012"})
        assert result.findings == []

    def test_sim_scoped_callee_owns_its_finding(self) -> None:
        """core -> core -> util chain: the finding lands once, on the
        sim function that makes the boundary-crossing call."""
        sources = {
            "src/repro/util/timing.py": _TIMING_HELPER,
            "src/repro/core/inner.py": _SIM_CALLER.replace("tick", "inner_tick"),
            "src/repro/core/outer.py": """\
            from repro.core.inner import inner_tick

            def outer_tick() -> int:
                return inner_tick()
            """,
        }
        result = analyze(sources, select={"DGL012"})
        assert [f.path for f in result.findings] == ["src/repro/core/inner.py"]


# ----------------------------------------------------------------------
# DGL013 -- handler-raise reachability
# ----------------------------------------------------------------------

_RAISING_HANDLER_INDIRECT = """\
class Router:
    def _handle_packet(self, message):
        self._validate(message)

    def _validate(self, message):
        if message is None:
            raise ValueError("empty message")
"""


class TestHandlerRaiseReachability:
    PATH = "src/repro/protocol/snippet.py"

    def test_raise_hidden_in_helper_method(self) -> None:
        result = analyze(
            {self.PATH: _RAISING_HANDLER_INDIRECT}, select={"DGL013"}
        )
        assert [f.code for f in result.findings] == ["DGL013"]
        message = result.findings[0].message
        assert "_handle_packet" in message
        assert "ValueError" in message

    def test_old_per_file_rule_misses_the_same_fixture(self) -> None:
        """DGL006 only sees a raise written inside the handler body; the
        helper method hides it completely."""
        assert codes({self.PATH: _RAISING_HANDLER_INDIRECT}, select={"DGL006"}) == []

    def test_cross_module_helper(self) -> None:
        sources = {
            "src/repro/protocol/checks.py": """\
            def require_alive(node, graph):
                if node not in graph:
                    raise KeyError(node)
            """,
            "src/repro/protocol/router.py": """\
            from repro.protocol.checks import require_alive

            class Router:
                def _deliver_sample(self, node, graph):
                    require_alive(node, graph)
            """,
        }
        result = analyze(sources, select={"DGL013"})
        assert [
            (f.code, f.path) for f in result.findings
        ] == [("DGL013", "src/repro/protocol/router.py")]

    def test_not_implemented_error_is_exempt(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    class Router:
                        def _handle_packet(self, message):
                            self._dispatch(message)

                        def _dispatch(self, message):
                            raise NotImplementedError
                    """
                },
                select={"DGL013"},
            )
            == []
        )

    def test_recording_instead_of_raising_is_clean(self) -> None:
        assert (
            codes(
                {
                    self.PATH: """\
                    class Router:
                        def _handle_packet(self, message):
                            self._record(message)

                        def _record(self, message):
                            self.faults.append(message)
                    """
                },
                select={"DGL013"},
            )
            == []
        )


# ----------------------------------------------------------------------
# DGL014 -- layering conformance
# ----------------------------------------------------------------------


class TestLayeringConformance:
    def test_protocol_importing_core_is_flagged(self) -> None:
        sources = {
            "src/repro/protocol/snippet.py": """\
            from repro.core.scheduler import WalkBatchPlan

            def plan():
                return WalkBatchPlan
            """
        }
        result = analyze(sources, select={"DGL014"})
        assert [
            (f.code, f.path, f.line) for f in result.findings
        ] == [("DGL014", "src/repro/protocol/snippet.py", 1)]
        assert "repro.core.scheduler" in result.findings[0].message

    def test_network_importing_protocol_is_flagged(self) -> None:
        sources = {
            "src/repro/network/snippet.py": """\
            import repro.protocol.runtime
            """
        }
        assert codes(sources, select={"DGL014"}) == ["DGL014"]

    def test_stack_direction_is_allowed(self) -> None:
        """core -> protocol and protocol -> network flow with the stack."""
        sources = {
            "src/repro/core/snippet.py": """\
            from repro.protocol.runtime import ProtocolSampler
            """,
            "src/repro/protocol/other.py": """\
            from repro.network.graph import OverlayGraph
            """,
        }
        assert codes(sources, select={"DGL014"}) == []

    def test_type_checking_guard_is_still_a_crossing(self) -> None:
        sources = {
            "src/repro/protocol/snippet.py": """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.core.scheduler import WalkBatchPlan
            """
        }
        result = analyze(sources, select={"DGL014"})
        assert [f.code for f in result.findings] == ["DGL014"]
        assert "TYPE_CHECKING" in result.findings[0].message

    def test_relative_import_resolves_to_absolute(self) -> None:
        """``from ..core import x`` in repro/protocol is repro.core."""
        sources = {
            "src/repro/protocol/snippet.py": """\
            from ..core import scheduler
            """
        }
        assert codes(sources, select={"DGL014"}) == ["DGL014"]

    def test_deferred_function_level_import_is_seen(self) -> None:
        sources = {
            "src/repro/network/snippet.py": """\
            def lazily():
                from repro.protocol.runtime import ProtocolSampler
                return ProtocolSampler
            """
        }
        assert codes(sources, select={"DGL014"}) == ["DGL014"]

    def test_tests_and_benchmarks_are_exempt(self) -> None:
        sources = {
            "tests/protocol/snippet.py": """\
            from repro.core.session import DigestSession
            from repro.protocol.runtime import ProtocolSampler
            """,
            "benchmarks/bench_snippet.py": """\
            from repro.core.session import DigestSession
            from repro.protocol.runtime import ProtocolSampler
            """,
        }
        assert codes(sources, select={"DGL014"}) == []


# ----------------------------------------------------------------------
# DGL015 -- context propagation
# ----------------------------------------------------------------------


class TestContextPropagation:
    PATH = "src/repro/protocol/snippet.py"

    def test_forwarded_ctx_name_passes(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import WalkToken

            def forward(token):
                return WalkToken(
                    walker_id=token.walker_id,
                    origin=token.origin,
                    steps_remaining=token.steps_remaining - 1,
                    sender=0,
                    sender_weight=1.0,
                    sender_degree=4,
                    ctx=token.ctx,
                )
            """
        }
        assert codes(sources, select={"DGL015"}) == []

    def test_missing_ctx_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import SampleReturn

            def respond(token):
                return SampleReturn(
                    walker_id=token.walker_id,
                    origin=token.origin,
                    sampled_node=3,
                    at_node=3,
                )
            """
        }
        result = analyze(sources, select={"DGL015"})
        assert [(f.code, f.path) for f in result.findings] == [
            ("DGL015", self.PATH)
        ]
        assert "without ctx=" in result.findings[0].message

    def test_explicit_ctx_none_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import BounceBack

            def bounce(token):
                return BounceBack(
                    walker_id=token.walker_id, origin=token.origin, ctx=None
                )
            """
        }
        result = analyze(sources, select={"DGL015"})
        assert [f.code for f in result.findings] == ["DGL015"]
        assert "drops context" in result.findings[0].message

    def test_hand_built_ctx_dict_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import WalkToken

            def forge(token):
                return WalkToken(
                    walker_id=0,
                    origin=0,
                    steps_remaining=1,
                    sender=0,
                    sender_weight=1.0,
                    sender_degree=4,
                    ctx={"trace_id": 1, "span_id": 1, "attempt": 1},
                )
            """
        }
        result = analyze(sources, select={"DGL015"})
        assert [f.code for f in result.findings] == ["DGL015"]
        assert "hand-built ctx dict" in result.findings[0].message

    def test_direct_trace_context_construction_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import TraceContext

            def forge():
                return TraceContext(trace_id=1, span_id=1, attempt=1)
            """
        }
        result = analyze(sources, select={"DGL015"})
        assert [f.code for f in result.findings] == ["DGL015"]
        assert "direct TraceContext" in result.findings[0].message

    def test_minting_outside_the_lifecycle_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import mint_context

            def remint(record):
                return mint_context(record.span_id, record.span_id, 2)
            """
        }
        result = analyze(sources, select={"DGL015"})
        assert [f.code for f in result.findings] == ["DGL015"]
        assert "stamping authority" in result.findings[0].message

    def test_reminting_at_the_construction_site_is_flagged(self) -> None:
        sources = {
            self.PATH: """\
            from repro.protocol.messages import WalkToken, mint_context

            def launch(span_id):
                return WalkToken(
                    walker_id=0,
                    origin=0,
                    steps_remaining=5,
                    sender=0,
                    sender_weight=1.0,
                    sender_degree=4,
                    ctx=mint_context(span_id, span_id, 1),
                )
            """
        }
        # both the mint-outside-authority and the re-mint-at-ctor findings
        assert codes(sources, select={"DGL015"}) == ["DGL015", "DGL015"]

    def test_lifecycle_module_may_mint(self) -> None:
        sources = {
            "src/repro/protocol/lifecycle.py": """\
            from repro.protocol.messages import WalkToken, mint_context

            def launch(span_id, attempt):
                ctx = mint_context(span_id, span_id, attempt)
                return WalkToken(
                    walker_id=0,
                    origin=0,
                    steps_remaining=5,
                    sender=0,
                    sender_weight=1.0,
                    sender_degree=4,
                    ctx=ctx,
                )
            """
        }
        assert codes(sources, select={"DGL015"}) == []

    def test_weight_advertisement_is_control_traffic(self) -> None:
        """WeightAdvertisement is caused by no single walk; ctx-free
        construction is legitimate there."""
        sources = {
            "src/repro/network/snippet.py": """\
            from repro.protocol.messages import WeightAdvertisement

            def advertise(node):
                return WeightAdvertisement(sender=node, weight=1.0, degree=4)
            """
        }
        assert codes(sources, select={"DGL015"}) == []

    def test_tests_and_tools_are_exempt(self) -> None:
        sources = {
            "tests/protocol/snippet.py": """\
            from repro.protocol.messages import TraceContext, WalkToken

            def fixture():
                return WalkToken(
                    walker_id=0,
                    origin=0,
                    steps_remaining=1,
                    sender=0,
                    sender_weight=1.0,
                    sender_degree=4,
                    ctx=TraceContext(trace_id=1, span_id=1, attempt=1),
                )
            """
        }
        assert codes(sources, select={"DGL015"}) == []


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    PATH = "src/repro/sampling/snippet.py"

    def test_dgl_disable_suppresses_exactly_the_named_rule(self) -> None:
        assert (
            codes(
                {
                    self.PATH: (
                        "import numpy as np\n"
                        "rng = np.random.default_rng()  # dgl: disable=DGL001\n"
                    )
                }
            )
            == []
        )

    def test_dgl_disable_with_wrong_code_does_not_suppress(self) -> None:
        result = analyze(
            {
                self.PATH: (
                    "import numpy as np\n"
                    "rng = np.random.default_rng()  # dgl: disable=DGL004\n"
                )
            }
        )
        found = {f.code for f in result.findings}
        assert "DGL001" in found  # the real finding survives
        assert "DGL099" in found  # and the useless pragma is reported

    def test_unused_suppression_is_reported(self) -> None:
        result = analyze(
            {self.PATH: "x = 1  # dgl: disable=DGL007\n"}
        )
        assert [f.code for f in result.findings] == ["DGL099"]
        assert "DGL007" in result.findings[0].message

    def test_unused_detection_skipped_under_select(self) -> None:
        assert (
            codes(
                {self.PATH: "x = 1  # dgl: disable=DGL007\n"},
                select={"DGL001"},
            )
            == []
        )

    def test_bare_noqa_still_works_without_unused_reporting(self) -> None:
        assert (
            codes(
                {
                    self.PATH: (
                        "import numpy as np\n"
                        "rng = np.random.default_rng()  # noqa\n"
                    )
                }
            )
            == []
        )

    def test_docstring_example_is_not_a_pragma(self) -> None:
        source = (
            '"""Suppress with `# dgl: disable=DGL001` on the line."""\n'
            "x = 1\n"
        )
        assert parse_pragmas(source) == {}

    def test_multiple_codes_one_pragma(self) -> None:
        pragmas = parse_pragmas("y = a == 1.0  # dgl: disable=DGL004, DGL001\n")
        assert pragmas[1].dgl_codes == ("DGL004", "DGL001")


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------


def _finding(path: str, line: int, code: str, message: str) -> Finding:
    return Finding(path=path, line=line, col=1, code=code, message=message)


class TestBaseline:
    def test_round_trip_absorbs_findings_line_independently(
        self, tmp_path: Path
    ) -> None:
        old = [_finding("src/a.py", 10, "DGL004", "float equality")]
        baseline_file = tmp_path / "baseline.json"
        write_baseline(old, baseline_file)
        # the same finding, drifted to another line, still matches
        drifted = [_finding("src/a.py", 99, "DGL004", "float equality")]
        fresh, stale = apply_baseline(drifted, load_baseline(baseline_file))
        assert fresh == [] and not stale

    def test_new_findings_are_not_absorbed(self, tmp_path: Path) -> None:
        baseline_file = tmp_path / "baseline.json"
        write_baseline(
            [_finding("src/a.py", 1, "DGL004", "float equality")], baseline_file
        )
        new = [
            _finding("src/a.py", 1, "DGL004", "float equality"),
            _finding("src/a.py", 2, "DGL004", "other message"),
        ]
        fresh, stale = apply_baseline(new, load_baseline(baseline_file))
        assert [f.message for f in fresh] == ["other message"]
        assert not stale

    def test_counts_are_a_multiset(self, tmp_path: Path) -> None:
        pair = [
            _finding("src/a.py", 1, "DGL004", "float equality"),
            _finding("src/a.py", 2, "DGL004", "float equality"),
        ]
        baseline_file = tmp_path / "baseline.json"
        write_baseline(pair, baseline_file)
        triple = pair + [_finding("src/a.py", 3, "DGL004", "float equality")]
        fresh, _stale = apply_baseline(triple, load_baseline(baseline_file))
        assert len(fresh) == 1

    def test_stale_entries_are_reported(self, tmp_path: Path) -> None:
        baseline_file = tmp_path / "baseline.json"
        write_baseline(
            [_finding("src/gone.py", 1, "DGL004", "fixed long ago")],
            baseline_file,
        )
        fresh, stale = apply_baseline([], load_baseline(baseline_file))
        assert fresh == []
        assert sum(stale.values()) == 1

    def test_missing_baseline_is_empty(self, tmp_path: Path) -> None:
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_committed_baseline_loads(self) -> None:
        baseline = load_baseline(
            REPO_ROOT / "tools" / "digest_analyzer" / "baseline.json"
        )
        assert baseline  # grandfathered findings exist and parse


# ----------------------------------------------------------------------
# schema facts (static parse)
# ----------------------------------------------------------------------


class TestSchemaFacts:
    def test_real_schema_parses(self) -> None:
        facts = parse_schema_source(SCHEMA_TEXT, SCHEMA_PATH)
        assert "walk" in facts.spans
        assert "fault" in facts.events
        assert facts.resolve_ref("repro.obs.schema.SPAN_WALK") == "walk"
        assert facts.resolve_ref("somewhere.else.SPAN_WALK") is None
        assert "outcome" in facts.spans["walk"].required

    def test_restructured_registry_fails_loudly(self) -> None:
        with pytest.raises(SchemaParseError):
            parse_schema_source(
                "SPAN_SCHEMAS = build_registry()\nEVENT_SCHEMAS = {}\n",
                "schema.py",
            )


# ----------------------------------------------------------------------
# engine: unparseable files, cache, SARIF
# ----------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self) -> None:
        result = analyze({"src/repro/core/broken.py": "def f(:\n    pass\n"})
        broken = [
            f for f in result.findings if f.path == "src/repro/core/broken.py"
        ]
        assert [f.code for f in broken] == ["DGL000"]
        assert broken[0].line == 1
        assert result.parse_failures == 1

    def test_null_bytes_are_a_finding_not_a_crash(self) -> None:
        result = analyze({"src/repro/core/binary.py": "x = 1\x00"})
        assert [
            f.code
            for f in result.findings
            if f.path == "src/repro/core/binary.py"
        ] == ["DGL000"]

    def test_cache_hits_on_second_run(self, tmp_path: Path) -> None:
        (tmp_path / "proj").mkdir()
        target = tmp_path / "proj" / "mod.py"
        target.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        cache_file = tmp_path / "cache.json"
        first = analyze_paths(
            [tmp_path / "proj"], repo_root=tmp_path, cache_path=cache_file
        )
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = analyze_paths(
            [tmp_path / "proj"], repo_root=tmp_path, cache_path=cache_file
        )
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert [f.code for f in second.findings] == [
            f.code for f in first.findings
        ]

    def test_cache_invalidated_by_content_change(self, tmp_path: Path) -> None:
        (tmp_path / "proj").mkdir()
        target = tmp_path / "proj" / "mod.py"
        target.write_text("x = 1\n")
        cache_file = tmp_path / "cache.json"
        analyze_paths(
            [tmp_path / "proj"], repo_root=tmp_path, cache_path=cache_file
        )
        target.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        result = analyze_paths(
            [tmp_path / "proj"], repo_root=tmp_path, cache_path=cache_file
        )
        assert result.cache_misses == 1
        assert [f.code for f in result.findings] == ["DGL001"]

    def test_sarif_document_shape(self) -> None:
        finding = _finding("src/a.py", 3, "DGL011", "stream crossing")
        document = json.loads(
            render_sarif([finding], {"DGL011": ("summary", "rationale")}, "1")
        )
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "digest-analyzer"
        result = run["results"][0]
        assert result["ruleId"] == "DGL011"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/a.py"
        assert location["region"]["startLine"] == 3
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids.index("DGL011") == result["ruleIndex"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_list_rules_covers_the_full_catalog(self) -> None:
        process = run_cli("--list-rules")
        assert process.returncode == 0
        for code in (
            "DGL000",
            "DGL001",
            "DGL008",
            "DGL009",
            "DGL010",
            "DGL011",
            "DGL012",
            "DGL013",
            "DGL099",
        ):
            assert code in process.stdout
        assert set(RULE_CATALOG) >= {"DGL009", "DGL013", "DGL099"}

    def test_findings_exit_one_and_render_locations(
        self, tmp_path: Path
    ) -> None:
        bad = tmp_path / "src" / "repro" / "sampling" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        process = run_cli(
            "--root", str(tmp_path), "--no-cache", "--select", "DGL001"
        )
        assert process.returncode == 1
        assert "bad.py:2:7: DGL001" in process.stdout

    def test_unknown_rule_code_exits_two(self) -> None:
        process = run_cli("--select", "DGL999", "src")
        assert process.returncode == 2

    def test_missing_path_exits_two(self) -> None:
        process = run_cli("definitely/not/here")
        assert process.returncode == 2

    def test_sarif_output_is_written(self, tmp_path: Path) -> None:
        bad = tmp_path / "src" / "repro" / "sampling" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        sarif_file = tmp_path / "out.sarif"
        process = run_cli(
            "--root",
            str(tmp_path),
            "--no-cache",
            "--sarif",
            str(sarif_file),
        )
        assert process.returncode == 1
        document = json.loads(sarif_file.read_text())
        assert document["runs"][0]["results"]

    def test_write_baseline_then_clean(self, tmp_path: Path) -> None:
        bad = tmp_path / "src" / "repro" / "sampling" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        write = run_cli("--root", str(tmp_path), "--no-cache", "--write-baseline")
        assert write.returncode == 0
        check = run_cli("--root", str(tmp_path), "--no-cache")
        assert check.returncode == 0, check.stdout + check.stderr


# ----------------------------------------------------------------------
# the repository meta-test
# ----------------------------------------------------------------------


class TestRepositoryIsClean:
    def test_analyzer_reports_zero_non_baselined_findings(self) -> None:
        """The CI invariant: the repo analyzes clean against its own
        committed baseline (and the baseline itself has no stale
        entries)."""
        process = run_cli("--no-cache", "--stats")
        assert process.returncode == 0, process.stdout + process.stderr
        assert "stale baseline entry" not in process.stderr

    def test_runs_fast_enough_for_ci(self) -> None:
        import time

        started = time.perf_counter()
        run_cli("--no-cache")
        elapsed = time.perf_counter() - started
        # "under a few seconds" with generous CI headroom
        assert elapsed < 30.0
