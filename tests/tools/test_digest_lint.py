"""Tests for the digest-lint static-analysis suite.

Organization mirrors the rule catalog: one test class per rule with
known-bad fixtures (must flag) and known-good fixtures (must pass), then
engine-level behavior (noqa, scoping, select, CLI), and finally the
meta-test asserting the repository's own ``src/repro`` is clean -- the
invariant CI enforces.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.digest_lint import ALL_RULES, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


def codes(source: str, path: str) -> list[str]:
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# DGL001 -- unseeded randomness
# ----------------------------------------------------------------------


class TestUnseededRandomness:
    PATH = "src/repro/sampling/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng()\n",
            "from numpy.random import default_rng\nrng = default_rng()\n",
            "import numpy as np\nnp.random.seed(7)\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy.random as npr\nx = npr.choice([1, 2])\n",
            "import random\nx = random.random()\n",
            "import random\nrandom.shuffle([1, 2, 3])\n",
            "from random import randint\nx = randint(0, 9)\n",
        ],
    )
    def test_flags_unseeded_and_global_rng(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # explicit seeds and threaded generators are the convention
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import numpy as np\ndef f(seed: int) -> object:\n    return np.random.default_rng(seed)\n",
            "from numpy.random import default_rng\nrng = default_rng(0)\n",
            "import numpy as np\nrng = np.random.Generator(np.random.PCG64(1))\n",
            "import random\nrng = random.Random(7)\n",
            # method calls on a threaded generator are not module-level calls
            "def step(rng: object) -> float:\n    return rng.normal()\n",
        ],
    )
    def test_allows_explicit_state(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_fires_anywhere_in_src(self) -> None:
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(bad, "src/repro/experiments/snippet.py") == ["DGL001"]


# ----------------------------------------------------------------------
# DGL002 -- wall-clock reads in simulation code
# ----------------------------------------------------------------------


class TestWallClockInSimulation:
    PATH = "src/repro/core/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic_ns()\n",
            "from time import perf_counter\nt = perf_counter()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "import datetime\nt = datetime.datetime.utcnow()\n",
            "import datetime\nt = datetime.date.today()\n",
        ],
    )
    @pytest.mark.parametrize("scope", ["core", "sim", "sampling", "protocol"])
    def test_flags_wall_clock_in_simulation_scopes(
        self, snippet: str, scope: str
    ) -> None:
        assert codes(snippet, f"src/repro/{scope}/snippet.py") == ["DGL002"]

    def test_out_of_scope_paths_are_exempt(self) -> None:
        # experiments/ may time themselves; they are reporting, not protocol
        snippet = "import time\nt = time.perf_counter()\n"
        assert codes(snippet, "src/repro/experiments/snippet.py") == []

    def test_sleep_is_not_a_clock_read(self) -> None:
        assert codes("import time\ntime.sleep(0.1)\n", self.PATH) == []


# ----------------------------------------------------------------------
# DGL003 -- locality reach-through
# ----------------------------------------------------------------------


class TestLocalityReachThrough:
    PATH = "src/repro/sampling/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            # classic telepathy: reading the graph's private adjacency
            "def walk(graph: object) -> int:\n    return graph._adjacency[0]\n",
            # reaching into a store owned by another node
            "def peek(store: object) -> list:\n    return store._rows\n",
            # chained receiver: self's operator is fine, *its* cache is not
            "class W:\n    def f(self) -> list:\n        return self._op._cache\n",
        ],
    )
    def test_flags_private_reach_through(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "class W:\n    def f(self) -> list:\n        return self._cache\n",
            "class W:\n    @classmethod\n    def f(cls) -> dict:\n        return cls._registry\n",
            # module-private helpers from explicit imports are intra-package
            "from repro.sampling import mixing\ng = mixing._spectral_gap\n",
            # dunders are protocol, not private state
            "def f(obj: object) -> type:\n    return obj.__class__\n",
            # the public messaging API is exactly what the rule steers to
            "def f(ledger: object, hops: int) -> None:\n    ledger.record_sample_return(hops)\n",
        ],
    )
    def test_allows_local_and_public_access(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_only_sampling_and_protocol_are_in_scope(self) -> None:
        snippet = "def walk(graph: object) -> int:\n    return graph._adjacency[0]\n"
        assert codes(snippet, "src/repro/network/snippet.py") == []
        assert codes(snippet, "src/repro/protocol/snippet.py") == ["DGL003"]


# ----------------------------------------------------------------------
# DGL004 -- float equality
# ----------------------------------------------------------------------


class TestFloatEquality:
    PATH = "src/repro/core/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x: float) -> bool:\n    return x == 0.5\n",
            "def f(x: float) -> bool:\n    return x != 1.5\n",
            "def f(x: float) -> bool:\n    return 0.95 == x\n",
            "def f(a: float, b: float) -> bool:\n    return a < b == 2.5\n",
        ],
    )
    def test_flags_non_sentinel_float_equality(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x: float) -> bool:\n    return x == 0.0\n",  # degenerate guard
            "def f(x: float) -> bool:\n    return x == -0.0\n",
            'def f(x: float) -> bool:\n    return x == float("inf")\n',
            "def f(x: float) -> bool:\n    return x == 1\n",  # int comparison
            "def f(x: float) -> bool:\n    return x < 0.5\n",  # ordering is fine
            "import math\ndef f(x: float) -> bool:\n    return math.isclose(x, 0.5)\n",
        ],
    )
    def test_allows_sentinels_and_ordering(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_out_of_scope_paths_are_exempt(self) -> None:
        snippet = "def f(x: float) -> bool:\n    return x == 0.5\n"
        assert codes(snippet, "src/repro/db/snippet.py") == []


# ----------------------------------------------------------------------
# DGL005 -- missing annotations on public API
# ----------------------------------------------------------------------


class TestMissingAnnotations:
    PATH = "src/repro/core/snippet.py"

    @pytest.mark.parametrize(
        "snippet,missing",
        [
            ("def f(x):\n    return x\n", "x, return"),
            ("def f(x: int):\n    return x\n", "return"),
            ("def f(x) -> int:\n    return x\n", "x"),
            ("def f(*args, **kw) -> None:\n    pass\n", "*args, **kw"),
            (
                "class C:\n    def __init__(self, x: int):\n        self.x = x\n",
                "return",
            ),
            ("class C:\n    def m(self, x) -> None:\n        pass\n", "x"),
        ],
    )
    def test_flags_annotation_gaps(self, snippet: str, missing: str) -> None:
        findings = lint_source(snippet, self.PATH)
        assert [f.code for f in findings] == ["DGL005"]
        assert findings[0].message.endswith(missing)

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x: int) -> int:\n    return x\n",
            "def _helper(x):\n    return x\n",  # private: exempt
            "class C:\n    def _m(self, x):\n        pass\n",
            # closures are not public API
            "def f() -> int:\n    def inner(x):\n        return x\n    return inner(1)\n",
            "class C:\n    def m(self) -> None:\n        pass\n",
        ],
    )
    def test_allows_annotated_private_and_nested(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_only_repro_paths_are_in_scope(self) -> None:
        assert codes("def f(x):\n    return x\n", "somewhere/else/snippet.py") == []


# ----------------------------------------------------------------------
# DGL006 -- protocol handlers must not let exceptions escape a delivery
# ----------------------------------------------------------------------


class TestHandlerRaises:
    PATH = "src/repro/protocol/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            # a raise inside a scheduled-delivery handler aborts the run
            """\
            class Sampler:
                def _handle_step(self, message: object) -> None:
                    if message is None:
                        raise ValueError("bad message")
            """,
            """\
            class Sampler:
                def _receive_token(self, token: object) -> None:
                    raise RuntimeError("unreachable holder")
            """,
            # nested defs are delivery closures even under a benign name
            """\
            class Sampler:
                def transmit(self, node: int) -> None:
                    def deliver(time: int) -> None:
                        raise RuntimeError("boom")
                    self.simulation.schedule_in(1, deliver)
            """,
            # module-level handler functions count too
            """\
            def _on_timeout(state: object) -> None:
                raise TimeoutError(state)
            """,
        ],
    )
    def test_flags_raises_in_delivery_paths(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL006"]

    def test_each_raise_is_reported_once(self) -> None:
        # a raise belongs to its innermost function only -- a handler
        # containing a raising closure yields one finding, not two
        snippet = """\
        class Sampler:
            def _handle_return(self, message: object) -> None:
                def forward(time: int) -> None:
                    raise RuntimeError("next hop gone")
                self.simulation.schedule_in(1, forward)
        """
        assert codes(snippet, self.PATH) == ["DGL006"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # the degradation contract: record the fault and drop the message
            """\
            class Sampler:
                def _handle_step(self, message: object) -> None:
                    if message is None:
                        self.fault_log.record(0, "message_loss")
                        return
            """,
            # validation raises at the caller-facing API are legal
            """\
            class Sampler:
                def start_walk(self, origin: int) -> None:
                    if origin < 0:
                        raise ValueError("bad origin")
            """,
            """\
            class Sampler:
                def run_walks(self, n: int) -> list:
                    if n <= 0:
                        raise ValueError("need at least one walk")
                    return []
            """,
        ],
    )
    def test_allows_recording_and_api_validation(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_only_protocol_is_in_scope(self) -> None:
        snippet = """\
        class Sampler:
            def _handle_step(self, message: object) -> None:
                raise ValueError("bad message")
        """
        assert codes(snippet, "src/repro/sampling/snippet.py") == []
        assert codes(snippet, self.PATH) == ["DGL006"]


# ----------------------------------------------------------------------
# DGL007 -- no print() in src/repro/
# ----------------------------------------------------------------------


class TestNoPrint:
    PATH = "src/repro/experiments/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            'print("hello")\n',
            "def main() -> int:\n    print(1, 2, sep=',')\n    return 0\n",
            'import builtins\nbuiltins.print("x")\n',
            # file= does not excuse it: redirection goes through emit()
            'import sys\nprint("x", file=sys.stderr)\n',
        ],
    )
    def test_flags_print_calls(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL007"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # the sanctioned chokepoint
            'from repro.obs.console import emit\nemit("hello")\n',
            # a method named print on some object is not builtins.print
            'def f(doc: object) -> None:\n    doc.print("x")\n',
            # an explicitly imported print is a deliberate rebinding
            "from repro.obs.console import emit as print\nprint()\n",
            # mentioning print in a docstring is not a call
            '"""Example::\n\n    print(engine.result)\n"""\n',
        ],
    )
    def test_allows_emit_and_non_builtin_print(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_only_repro_paths_are_in_scope(self) -> None:
        # tools/ and benchmarks/ are harness-side; they may print
        assert codes('print("x")\n', "tools/somewhere/snippet.py") == []
        assert codes('print("x")\n', self.PATH) == ["DGL007"]


# ----------------------------------------------------------------------
# DGL008 -- SamplingOperator constructed only inside repro.sampling
# ----------------------------------------------------------------------


class TestDirectOperatorConstruction:
    PATH = "src/repro/core/snippet.py"

    @pytest.mark.parametrize(
        "snippet",
        [
            # the canonical offender: a private, unshareable substrate
            "from repro.sampling.operator import SamplingOperator\n"
            "op = SamplingOperator(g, rng)\n",
            # package re-export and aliasing do not launder it
            "from repro.sampling import SamplingOperator\n"
            "op = SamplingOperator(g, rng)\n",
            "from repro.sampling.operator import SamplingOperator as SO\n"
            "op = SO(g, rng)\n",
            "import repro.sampling.operator as operator\n"
            "op = operator.SamplingOperator(g, rng)\n",
        ],
    )
    def test_flags_construction_outside_sampling(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == ["DGL008"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # the sanctioned route: the pool owns the operator
            "from repro.sampling.pool import SamplePool\n"
            "pool = SamplePool(g, rng)\nop = pool.operator\n",
            # importing the type for annotations is fine; only calls flag
            "from repro.sampling.operator import SamplingOperator\n"
            "def f(op: SamplingOperator) -> None:\n    pass\n",
            # a same-named class from elsewhere is not ours
            "from somewhere.else_ import SamplingOperator\n"
            "op = SamplingOperator()\n",
        ],
    )
    def test_allows_pool_route_and_annotations(self, snippet: str) -> None:
        assert codes(snippet, self.PATH) == []

    def test_sampling_package_itself_is_exempt(self) -> None:
        snippet = (
            "from repro.sampling.operator import SamplingOperator\n"
            "op = SamplingOperator(g, rng)\n"
        )
        assert codes(snippet, "src/repro/sampling/pool.py") == []
        assert codes(snippet, "src/repro/experiments/snippet.py") == ["DGL008"]


# ----------------------------------------------------------------------
# engine behavior: noqa, select, errors
# ----------------------------------------------------------------------


class TestEngine:
    PATH = "src/repro/sampling/snippet.py"
    BAD = "import numpy as np\nrng = np.random.default_rng()"

    def test_noqa_with_matching_code_suppresses(self) -> None:
        assert codes(f"{self.BAD}  # noqa: DGL001\n", self.PATH) == []

    def test_bare_noqa_suppresses(self) -> None:
        assert codes(f"{self.BAD}  # noqa\n", self.PATH) == []

    def test_noqa_with_other_code_does_not_suppress(self) -> None:
        assert codes(f"{self.BAD}  # noqa: DGL002\n", self.PATH) == ["DGL001"]

    def test_noqa_code_list(self) -> None:
        assert codes(f"{self.BAD}  # noqa: DGL004, DGL001\n", self.PATH) == []

    def test_select_restricts_rules(self) -> None:
        bad_both = (
            "import numpy as np\nimport time\n"
            "rng = np.random.default_rng()\nt = time.time()\n"
        )
        path = "src/repro/core/snippet.py"
        all_codes = [f.code for f in lint_source(bad_both, path)]
        assert all_codes == ["DGL001", "DGL002"]
        only = [f.code for f in lint_source(bad_both, path, select=["DGL002"])]
        assert only == ["DGL002"]

    def test_unknown_select_raises(self) -> None:
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", self.PATH, select=["DGL999"])

    def test_syntax_error_reports_dgl000(self) -> None:
        findings = lint_source("def broken(:\n", self.PATH)
        assert [f.code for f in findings] == ["DGL000"]

    def test_missing_path_raises(self, tmp_path: Path) -> None:
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_findings_are_sorted_and_renderable(self, tmp_path: Path) -> None:
        scoped = tmp_path / "core"
        scoped.mkdir()
        bad = scoped / "bad.py"
        bad.write_text(
            "import time\n\n"
            "def f(x: float) -> float:\n"
            "    return time.time() if x == 0.5 else 0\n"
        )
        # tmp_path has no ``repro`` component, so DGL005 stays out of scope
        findings = lint_paths([tmp_path])
        assert findings == sorted(findings)
        assert {f.code for f in findings} == {"DGL002", "DGL004"}
        rendered = findings[0].render()
        assert str(bad) in rendered and ":DGL" not in rendered

    def test_rule_catalog_is_complete(self) -> None:
        assert [r.code for r in ALL_RULES] == [
            "DGL001",
            "DGL002",
            "DGL003",
            "DGL004",
            "DGL005",
            "DGL006",
            "DGL007",
            "DGL008",
        ]
        for rule in ALL_RULES:
            assert rule.summary and rule.rationale


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def run_cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "tools.digest_lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_tree_exits_zero(self) -> None:
        result = run_cli("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout == ""

    def test_each_rule_bad_fixture_exits_nonzero(self, tmp_path: Path) -> None:
        fixtures = {
            "DGL001": (
                "sampling",
                "import numpy as np\nrng = np.random.default_rng()\n",
            ),
            "DGL002": ("core", "import time\nt = time.time()\n"),
            "DGL003": ("protocol", "def f(g):\n    return g._adjacency\n"),
            "DGL004": ("core", "def f(x):\n    return x == 0.5\n"),
            "DGL005": ("repro", "def f(x):\n    return x\n"),
            "DGL006": (
                "protocol",
                "def _handle_x(m: object) -> None:\n    raise ValueError(m)\n",
            ),
            "DGL007": ("repro", 'print("hi")\n'),
            "DGL008": (
                "repro/core",
                "from repro.sampling.operator import SamplingOperator\n"
                "op = SamplingOperator(None, None)\n",
            ),
        }
        for code, (scope, source) in fixtures.items():
            scoped = tmp_path / code / scope
            scoped.mkdir(parents=True)
            bad = scoped / "bad.py"
            bad.write_text(source)
            result = run_cli(str(bad))
            assert result.returncode == 1, (code, result.stdout, result.stderr)
            assert code in result.stdout

    def test_list_rules(self) -> None:
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.code in result.stdout

    def test_no_paths_is_usage_error(self) -> None:
        assert run_cli().returncode == 2

    def test_missing_path_is_usage_error(self) -> None:
        result = run_cli("definitely/not/a/path")
        assert result.returncode == 2
        assert "error" in result.stderr


# ----------------------------------------------------------------------
# meta: the repository itself must be clean
# ----------------------------------------------------------------------


class TestRepositoryIsClean:
    def test_src_repro_has_zero_findings(self) -> None:
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tools_are_clean_too(self) -> None:
        # the linter lints itself (DGL001/DGL002 scopes apply everywhere
        # relevant; DGL005 does not, because tools/ is not repro/)
        findings = lint_paths([REPO_ROOT / "tools"])
        assert findings == [], "\n".join(f.render() for f in findings)
