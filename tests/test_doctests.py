"""Run the doctest examples embedded in public docstrings.

Keeps every ``>>>`` example in the documentation executable — a stale
docstring example fails the suite.
"""

import doctest

import pytest

import repro.core.estimators
import repro.core.query
import repro.db.expression
import repro.db.predicate

MODULES = [
    repro.db.expression,
    repro.db.predicate,
    repro.core.query,
    repro.core.estimators,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
