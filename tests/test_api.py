"""Public-API surface tests."""

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_docstring():
    """The package docstring's quickstart must actually run."""
    rng = np.random.default_rng(0)
    graph = repro.OverlayGraph(
        repro.power_law_topology(60, rng=rng), n_nodes=60
    )
    db = repro.P2PDatabase(repro.Schema(("temperature",)), graph.nodes())
    for node in graph.nodes():
        db.insert(node, {"temperature": float(rng.normal(70, 8))})

    continuous = repro.ContinuousQuery(
        repro.parse_query("SELECT AVG(temperature) FROM R"),
        repro.Precision(delta=2.0, epsilon=2.0, confidence=0.95),
        duration=10,
    )
    engine = repro.DigestEngine(graph, db, continuous, origin=0, rng=rng)
    for t in range(10):
        engine.step(t)
    estimate = engine.result.last().estimate
    truth = db.exact_values(repro.Expression("temperature")).mean()
    assert abs(estimate - truth) < 5.0


def test_errors_are_digest_errors():
    for name in (
        "ExpressionError",
        "QueryError",
        "SamplingError",
        "SimulationError",
        "StoreError",
        "TopologyError",
    ):
        assert issubclass(getattr(repro, name), repro.DigestError)
