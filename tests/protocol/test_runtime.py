"""Tests for the message-level sampling protocol."""

import numpy as np
import pytest

from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, ring_topology
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler
from repro.sampling.metropolis import stationary_distribution
from repro.sampling.mixing import total_variation
from repro.sampling.weights import table_weights, uniform_weights
from repro.sim.engine import SimulationEngine


def _sampler(graph, weight, variant="bounce", seed=0, ledger=None):
    return ProtocolSampler(
        graph,
        weight,
        SimulationEngine(),
        np.random.default_rng(seed),
        ledger,
        ProtocolConfig(variant=variant),
    )


@pytest.fixture
def mesh():
    return OverlayGraph(mesh_topology(16), n_nodes=16)


class TestConfig:
    def test_rejects_unknown_variant(self):
        with pytest.raises(SamplingError):
            ProtocolConfig(variant="telepathy")

    def test_rejects_bad_latency(self):
        with pytest.raises(SamplingError):
            ProtocolConfig(hop_latency=0)

    def test_rejects_disconnected_overlay(self):
        graph = OverlayGraph([(0, 1)], n_nodes=3)
        with pytest.raises(TopologyError):
            _sampler(graph, uniform_weights())


class TestWalkMechanics:
    def test_walk_completes_and_returns(self, mesh):
        sampler = _sampler(mesh, uniform_weights())
        sampled = sampler.run_walks(origin=0, n=5, walk_length=30)
        assert len(sampled) == 5
        assert all(node in mesh for node in sampled)
        for walker_id in range(5):
            outcome = sampler.outcome(walker_id)
            assert outcome is not None
            assert outcome.completed_at > 0  # latency actually elapsed

    def test_invalid_walk_parameters(self, mesh):
        sampler = _sampler(mesh, uniform_weights())
        with pytest.raises(SamplingError):
            sampler.start_walk(origin=99, walk_length=10)
        with pytest.raises(SamplingError):
            sampler.start_walk(origin=0, walk_length=0)

    def test_return_messages_match_hop_distance(self, mesh):
        """Every return costs exactly the sampled node's hop distance."""
        ledger = MessageLedger()
        sampler = _sampler(mesh, uniform_weights(), ledger=ledger)
        sampled = sampler.run_walks(origin=0, n=20, walk_length=25)
        distances = mesh.hop_distances(0)
        expected = sum(distances[node] for node in sampled)
        assert ledger.sample_returns == expected

    def test_latency_scales_completion_time(self, mesh):
        times = {}
        for latency in (1, 3):
            sampler = ProtocolSampler(
                mesh,
                uniform_weights(),
                SimulationEngine(),
                np.random.default_rng(0),
                config=ProtocolConfig(hop_latency=latency),
            )
            sampler.run_walks(origin=0, n=1, walk_length=20)
            times[latency] = sampler.outcome(0).completed_at
        assert times[3] == 3 * times[1]


class TestVariantCosts:
    def test_bounce_counts_rejections(self):
        """Bounce messages appear exactly when weights are nonuniform."""
        graph = OverlayGraph(ring_topology(8), n_nodes=8)
        weights = {node: float(1 + node % 3) for node in graph.nodes()}
        sampler = _sampler(graph, table_weights(weights), variant="bounce")
        sampler.run_walks(origin=0, n=30, walk_length=40)
        assert sampler.bounces > 0
        assert sampler.advertisements_sent == 0

    def test_uniform_weights_never_bounce_on_regular_graph(self):
        graph = OverlayGraph(ring_topology(8), n_nodes=8)  # 2-regular
        sampler = _sampler(graph, uniform_weights(), variant="bounce")
        sampler.run_walks(origin=0, n=20, walk_length=30)
        assert sampler.bounces == 0

    def test_cached_setup_flood_costs(self, mesh):
        ledger = MessageLedger()
        sampler = _sampler(mesh, uniform_weights(), variant="cached", ledger=ledger)
        assert sampler.advertisements_sent == 2 * mesh.n_edges()
        assert ledger.breakdown()["control:weight_advertisement"] == (
            2 * mesh.n_edges()
        )

    def test_weight_change_readvertises(self, mesh):
        weights = {node: 1.0 for node in mesh.nodes()}
        sampler = _sampler(mesh, table_weights(weights), variant="cached")
        before = sampler.advertisements_sent
        weights[5] = 9.0
        sampler.notify_weight_change(5)
        assert sampler.advertisements_sent == before + mesh.degree(5)

    def test_bounce_variant_ignores_weight_notifications(self, mesh):
        sampler = _sampler(mesh, uniform_weights(), variant="bounce")
        sampler.notify_weight_change(0)
        assert sampler.advertisements_sent == 0

    def test_cost_bracketing(self):
        """cached <= abstract <= bounce walk messages per walk."""
        from repro.experiments.protocol_validation import run

        result = run(n_nodes=40, n_walks=600, walk_length=60, seed=1)
        costs = {row.variant: row.walk_messages_per_walk for row in result.rows}
        assert costs["cached"] <= result.abstract_messages_per_walk
        assert result.abstract_messages_per_walk <= costs["bounce"]


class TestDistributionalAgreement:
    @pytest.mark.parametrize("variant", ["bounce", "cached"])
    def test_matches_target_distribution(self, variant):
        """Protocol-executed walks sample the Metropolis target."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        weights = {node: float(1 + node % 4) for node in graph.nodes()}
        weight = table_weights(weights)
        _, target = stationary_distribution(graph, weight)
        sampler = _sampler(graph, weight, variant=variant, seed=2)
        sampled = sampler.run_walks(origin=0, n=4000, walk_length=150)
        counts = np.zeros(16)
        for node in sampled:
            counts[node] += 1
        assert total_variation(counts / counts.sum(), target) < 0.05
