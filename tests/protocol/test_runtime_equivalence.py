"""Golden-trace equivalence: the layered stack replays the monolith.

The transport/lifecycle/routing refactor of :mod:`repro.protocol` claims
*seed-for-seed identical* behavior — not "statistically the same", but
the same RNG draws in the same order, the same messages at the same
ticks, the same fault-log entries, the same span ids. The only proof
strong enough for that claim is byte equality of exported traces.

These tests re-run two small fixed-seed workloads — a faulted run (loss
+ jitter + retries, both a plain ``run_walks`` and a coalesced
``run_walk_batch``) and a partitioned run (a scheduled cut with
health-aware breaker routing) — and compare the exported JSONL trace
byte-for-byte against reference files committed *before* the refactor
(``tests/protocol/golden/``). Any reordering of RNG draws, scheduling,
fault recording, or trace emission shows up as a diff.

Regenerate the fixtures (only when an *intentional* behavior change is
being made, with a CHANGES.md entry explaining why) with::

    PYTHONPATH=src python -m tests.protocol.test_runtime_equivalence --write
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.health import HealthConfig
from repro.network.messaging import MessageLedger
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import mesh_topology
from repro.obs.export import export_trace
from repro.obs.tracer import RecordingTracer
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import PRIORITY_CHURN, SimulationEngine

GOLDEN_DIR = Path(__file__).parent / "golden"

#: every fixture the CI bench-smoke uploads as an artifact
FIXTURES = ("faulted_trace.jsonl", "partitioned_trace.jsonl")


def _faulted_trace_text(tmp_dir: Path) -> str:
    """A lossy, jittery run: plain walks plus one coalesced batch."""
    from repro.core.scheduler import WalkDemand, coalesce_demands

    n_nodes = 16
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    simulation = SimulationEngine()
    tracer = RecordingTracer(clock=simulation.clock)
    plan = FaultPlan(
        FaultConfig(message_loss=0.08, latency_jitter=2), rng=417
    )
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        simulation,
        np.random.default_rng(41),
        MessageLedger(),
        ProtocolConfig(variant="bounce"),
        faults=plan,
        retry=RetryPolicy(timeout=40, max_retries=2),
        tracer=tracer,
    )
    sampler.run_walks(origin=0, n=12, walk_length=8, allow_partial=True)
    batch = coalesce_demands(
        [WalkDemand("q0", 6), WalkDemand("q1", 9), WalkDemand("q2", 3)]
    )
    sampler.run_walk_batch(origin=0, plan=batch, walk_length=6, allow_partial=True)
    path = export_trace(tracer.trace(), tmp_dir / "faulted_trace.jsonl")
    return path.read_text(encoding="utf-8")


def _partitioned_trace_text(tmp_dir: Path) -> str:
    """A scheduled cut with breaker routing: drops, trips, heal, probes."""
    n_nodes = 16
    duration = 60
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    simulation = SimulationEngine()
    tracer = RecordingTracer(clock=simulation.clock)
    plan = PartitionPlan(
        PartitionSchedule(
            episodes=(PartitionEpisode(start=0, duration=duration),)
        ),
        rng=53,
    )
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        simulation,
        np.random.default_rng(7),
        MessageLedger(),
        ProtocolConfig(variant="bounce"),
        retry=RetryPolicy(timeout=12, max_retries=1),
        tracer=tracer,
        partitions=plan,
        health=HealthConfig(failure_threshold=2, cooldown=10),
    )
    simulation.schedule_every(
        1,
        lambda t: plan.step(t, graph),
        priority=PRIORITY_CHURN,
        start=0,
        until=duration + 30,
    )
    # two generations of walks: the first meets the cut (drops, timeouts,
    # breaker trips), the second runs against the healed overlay and
    # re-closes the breakers through half-open probes
    sampler.run_walks(origin=0, n=14, walk_length=6, allow_partial=True)
    sampler.run_walks(origin=0, n=8, walk_length=6, allow_partial=True)
    path = export_trace(tracer.trace(), tmp_dir / "partitioned_trace.jsonl")
    return path.read_text(encoding="utf-8")


_PRODUCERS = {
    "faulted_trace.jsonl": _faulted_trace_text,
    "partitioned_trace.jsonl": _partitioned_trace_text,
}


class TestGoldenTraces:
    def test_fixtures_exist(self):
        for name in FIXTURES:
            assert (GOLDEN_DIR / name).is_file(), (
                f"missing golden fixture {name}; regenerate with "
                f"python -m tests.protocol.test_runtime_equivalence --write"
            )

    def test_faulted_run_replays_byte_identically(self, tmp_path):
        produced = _faulted_trace_text(tmp_path)
        committed = (GOLDEN_DIR / "faulted_trace.jsonl").read_text(
            encoding="utf-8"
        )
        assert produced == committed

    def test_partitioned_run_replays_byte_identically(self, tmp_path):
        produced = _partitioned_trace_text(tmp_path)
        committed = (GOLDEN_DIR / "partitioned_trace.jsonl").read_text(
            encoding="utf-8"
        )
        assert produced == committed

    def test_traces_exercise_the_failure_machinery(self, tmp_path):
        """The fixtures are only meaningful if faults actually fired."""
        faulted = (GOLDEN_DIR / "faulted_trace.jsonl").read_text(
            encoding="utf-8"
        )
        partitioned = (GOLDEN_DIR / "partitioned_trace.jsonl").read_text(
            encoding="utf-8"
        )
        assert '"message_loss"' in faulted
        assert '"shared_walk_batch"' in faulted
        assert '"partition_drop"' in partitioned
        assert '"breaker_trip"' in partitioned


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args != ["--write"]:
        print(__doc__)
        return 2
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, producer in _PRODUCERS.items():
        text = producer(GOLDEN_DIR)
        print(f"wrote {GOLDEN_DIR / name} ({len(text.splitlines())} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
