"""Tests for span-context propagation through the protocol stack.

The contract under test: the origin-side supervisor is the *only*
stamping authority — it mints one fresh :class:`TraceContext` per
attempt — and every message of that attempt carries the context
unchanged, so hop segments recorded at other nodes join back to the walk
that caused them (trace format v2, assembled by :mod:`repro.obs.causal`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology
from repro.obs.schema import (
    EVENT_CTX_FORWARD,
    EVENT_HOP,
    EVENT_RETRY,
    SPAN_HOP_SEGMENT,
    SPAN_WALK,
)
from repro.obs.tracer import RecordingTracer
from repro.protocol.messages import (
    SampleReturn,
    TraceContext,
    WalkToken,
    mint_context,
)
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import SimulationEngine


def _mesh(n=16):
    return OverlayGraph(mesh_topology(n), n_nodes=n)


def _traced_sampler(variant="bounce", seed=3, faults=None, retry=None):
    simulation = SimulationEngine()
    tracer = RecordingTracer(clock=simulation.clock)
    sampler = ProtocolSampler(
        _mesh(),
        uniform_weights(),
        simulation,
        np.random.default_rng(seed),
        MessageLedger(),
        ProtocolConfig(variant=variant),
        faults=faults,
        retry=retry,
        tracer=tracer,
    )
    return sampler, tracer


class TestMinting:
    def test_mint_context_builds_the_frozen_triple(self):
        ctx = mint_context(7, 7, 2)
        assert ctx == TraceContext(trace_id=7, span_id=7, attempt=2)

    def test_context_is_immutable(self):
        ctx = mint_context(1, 1, 1)
        try:
            ctx.attempt = 5  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover - frozen dataclass must refuse
            raise AssertionError("TraceContext is not frozen")

    def test_launch_stamps_context_rooted_at_the_walk_span(self):
        sampler, _tracer = _traced_sampler()
        sampler.run_walks(origin=0, n=3, walk_length=5)
        for walker_id in range(3):
            record = sampler._lifecycle.record(walker_id)
            assert record.ctx is not None
            assert record.ctx.trace_id == record.span.span_id
            assert record.ctx.span_id == record.span.span_id
            assert record.ctx.attempt == record.attempt

    def test_context_minted_even_without_a_recording_tracer(self):
        """Minting is unconditional: the wire format carries context even
        when nothing records it (a remote peer might be tracing)."""
        sampler = ProtocolSampler(
            _mesh(),
            uniform_weights(),
            SimulationEngine(),
            np.random.default_rng(0),
            MessageLedger(),
            ProtocolConfig(variant="bounce"),
        )
        sampler.run_walks(origin=0, n=1, walk_length=4)
        record = sampler._lifecycle.record(0)
        assert record.ctx is not None
        assert record.ctx.attempt == 1

    def test_retry_remints_with_a_bumped_attempt(self):
        # near-total loss: every attempt times out, so each retry re-mints
        sampler, tracer = _traced_sampler(
            faults=FaultPlan(FaultConfig(message_loss=0.99), rng=1),
            retry=RetryPolicy(timeout=10, max_retries=2),
        )
        sampler.run_walks(origin=0, n=1, walk_length=4, allow_partial=True)
        record = sampler._lifecycle.record(0)
        assert record.attempt >= 2  # at least one timeout happened
        assert record.ctx is not None
        assert record.ctx.attempt == record.attempt
        assert record.ctx.trace_id == record.span.span_id
        retries = [
            event
            for span in tracer.trace().spans_named(SPAN_WALK)
            for event in span.events
            if event.name == EVENT_RETRY
        ]
        assert [event.attrs["ctx_attempt"] for event in retries] == list(
            range(2, record.attempt + 1)
        )
        assert all(
            event.attrs["ctx_trace"] == record.span.span_id
            for event in retries
        )


class TestMessageThreading:
    def test_messages_default_to_no_context(self):
        token = WalkToken(
            walker_id=0,
            origin=0,
            steps_remaining=3,
            sender=0,
            sender_weight=1.0,
            sender_degree=4,
        )
        assert token.ctx is None

    def test_replace_forwards_context_untouched(self):
        """The forwarding idiom — ``dataclasses.replace`` — must preserve
        ctx without naming it (what keeps DGL015's job tractable)."""
        ctx = mint_context(9, 9, 1)
        message = SampleReturn(
            walker_id=0, origin=0, sampled_node=5, at_node=5, ctx=ctx
        )
        assert replace(message, at_node=3).ctx is ctx


class TestHopSegments:
    def _segments(self, tracer):
        return list(tracer.trace().spans_named(SPAN_HOP_SEGMENT))

    def test_every_segment_carries_its_walks_context(self):
        for variant in ("bounce", "cached"):
            sampler, tracer = _traced_sampler(variant=variant)
            sampler.run_walks(origin=0, n=4, walk_length=6)
            trace = tracer.trace()
            walk_ids = {
                span.span_id for span in trace.spans_named(SPAN_WALK)
            }
            segments = self._segments(tracer)
            assert segments, variant
            for segment in segments:
                assert segment.attrs["ctx_trace"] in walk_ids
                assert segment.attrs["ctx_span"] == segment.attrs["ctx_trace"]
                assert segment.attrs["ctx_attempt"] == 1
                assert segment.end is not None
                assert segment.attrs["delivered"] is True
                assert segment.attrs["orphaned"] is False
                # the segment nests under its walk span
                assert segment.parent_id in walk_ids

    def test_one_context_per_attempt_not_per_hop(self):
        """All segments of one walk share one context: nothing re-mints
        mid-flight."""
        sampler, tracer = _traced_sampler()
        sampler.run_walks(origin=0, n=1, walk_length=8)
        segments = self._segments(tracer)
        assert len(segments) > 1
        assert len({s.attrs["ctx_trace"] for s in segments}) == 1

    def test_hop_events_carry_context_attrs(self):
        sampler, tracer = _traced_sampler()
        sampler.run_walks(origin=0, n=2, walk_length=5)
        for span in tracer.trace().spans_named(SPAN_WALK):
            hops = [e for e in span.events if e.name == EVENT_HOP]
            assert hops
            for event in hops:
                assert event.attrs["ctx_trace"] == span.span_id
                assert event.attrs["ctx_attempt"] == 1

    def test_return_forwarding_records_ctx_forward_events(self):
        sampler, tracer = _traced_sampler()
        sampler.run_walks(origin=0, n=6, walk_length=6)
        forwards = [
            event
            for span in tracer.trace().spans_named(SPAN_WALK)
            for event in span.events
            if event.name == EVENT_CTX_FORWARD
        ]
        # mesh(16) has diameter > 1 from node 0, so some return crossed
        # an intermediate hop and forwarded its context there
        assert forwards
        for event in forwards:
            assert event.attrs["ctx_trace"] > 0
            assert event.attrs["from_node"] != event.attrs["to_node"]

    def test_dropped_transits_never_export_a_segment(self):
        """A lost message's segment is never closed, so it never reaches
        the export: the causal chain has a gap, not a bogus delivery."""
        sampler, tracer = _traced_sampler(
            faults=FaultPlan(FaultConfig(message_loss=0.25), rng=11),
            retry=RetryPolicy(timeout=30, max_retries=2),
        )
        sampler.run_walks(origin=0, n=10, walk_length=6, allow_partial=True)
        assert sampler.fault_log.count("message_loss") > 0
        for segment in self._segments(tracer):
            assert segment.end is not None
            assert segment.attrs["delivered"] is True

    def test_non_recording_run_creates_no_segments(self):
        """The bench fast path: without a recording sink no hop spans are
        allocated at all (the overhead gates depend on this)."""
        simulation = SimulationEngine()
        sampler = ProtocolSampler(
            _mesh(),
            uniform_weights(),
            simulation,
            np.random.default_rng(5),
            MessageLedger(),
            ProtocolConfig(variant="bounce"),
        )
        sampler.run_walks(origin=0, n=5, walk_length=6)
        assert sampler._lifecycle.begin_hop_segment(0, "walk", 0, 1, None) is None
