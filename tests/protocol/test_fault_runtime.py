"""Tests for the protocol runtime under the failure model.

Covers fault injection at the delivery points, origin-side walk
supervision (timeouts, bounded retries, backoff), retry-ledger
accounting, return routing across topology change, the cached-variant
advertisement repair paths, and end-to-end determinism.
"""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.network.faults import CrashProcess, FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, ring_topology
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import table_weights, uniform_weights
from repro.sim.engine import PRIORITY_CHURN, SimulationEngine


def _faulty_sampler(
    graph,
    weight,
    fault_config,
    variant="bounce",
    seed=0,
    retry=RetryPolicy(timeout=120, max_retries=40, backoff=1.2),
):
    simulation = SimulationEngine()
    ledger = MessageLedger()
    plan = FaultPlan(fault_config, rng=seed + 100)
    sampler = ProtocolSampler(
        graph,
        weight,
        simulation,
        np.random.default_rng(seed),
        ledger,
        ProtocolConfig(variant=variant),
        faults=plan,
        retry=retry,
    )
    return sampler, plan, simulation, ledger


@pytest.fixture
def mesh():
    return OverlayGraph(mesh_topology(16), n_nodes=16)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SamplingError):
            RetryPolicy(timeout=0)
        with pytest.raises(SamplingError):
            RetryPolicy(timeout=5, max_retries=-1)
        with pytest.raises(SamplingError):
            RetryPolicy(timeout=5, backoff=0.5)

    def test_backoff_scales_timeouts(self):
        policy = RetryPolicy(timeout=10, backoff=2.0)
        assert policy.timeout_for(1) == 10
        assert policy.timeout_for(2) == 20
        assert policy.timeout_for(3) == 40


class TestLossRecovery:
    def test_walks_recover_from_heavy_message_loss(self, mesh):
        sampler, plan, _, ledger = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(message_loss=0.10)
        )
        sampled = sampler.run_walks(origin=0, n=40, walk_length=20)
        assert len(sampled) == 40
        stats = sampler.walk_stats
        assert stats.completion_rate == 1.0
        assert plan.log.count("message_loss") > 0
        # lost attempts were retried, and that traffic is ledgered apart
        assert stats.timeouts > 0
        assert ledger.retries > 0

    def test_retry_traffic_kept_out_of_base_categories(self, mesh):
        # fault-free run first to know the base cost profile
        base_sampler, _, _, base_ledger = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(), seed=1
        )
        base_sampler.run_walks(origin=0, n=20, walk_length=15)
        assert base_ledger.retries == 0

        sampler, _, _, ledger = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(message_loss=0.15), seed=1
        )
        sampler.run_walks(origin=0, n=20, walk_length=15)
        # first-attempt categories stay comparable; retries separate
        assert ledger.retries > 0
        assert ledger.breakdown()["retries"] == ledger.retries

    def test_walk_fails_after_retry_budget(self, mesh):
        sampler, plan, _, _ = _faulty_sampler(
            mesh,
            uniform_weights(),
            # lose nearly everything: retries cannot save the walks
            FaultConfig(message_loss=0.95),
            retry=RetryPolicy(timeout=60, max_retries=2),
        )
        sampled = sampler.run_walks(
            origin=0, n=5, walk_length=10, allow_partial=True
        )
        stats = sampler.walk_stats
        assert stats.failed + stats.completed == 5
        assert stats.failed > 0
        assert len(sampled) == stats.completed
        assert plan.log.count("walk_failed") == stats.failed
        # every failed walk burned its full attempt budget (1 + 2 retries)
        assert plan.log.count("walk_timeout") >= stats.failed * 3

    def test_partial_mode_off_raises_with_fault_summary(self, mesh):
        sampler, _, _, _ = _faulty_sampler(
            mesh,
            uniform_weights(),
            FaultConfig(message_loss=0.95),
            retry=RetryPolicy(timeout=60, max_retries=1),
        )
        with pytest.raises(SamplingError, match="message_loss"):
            sampler.run_walks(origin=0, n=5, walk_length=10)

    def test_latency_jitter_still_completes(self, mesh):
        sampler, _, _, _ = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(latency_jitter=3)
        )
        sampled = sampler.run_walks(origin=0, n=10, walk_length=12)
        assert len(sampled) == 10

    def test_deadline_expires_unfinished_walks(self, mesh):
        sampler, plan, _, _ = _faulty_sampler(
            mesh,
            uniform_weights(),
            FaultConfig(),
            # timeout far beyond the deadline so retries never fire
            retry=RetryPolicy(timeout=100_000, max_retries=0),
        )
        sampled = sampler.run_walks(
            origin=0, n=4, walk_length=50, allow_partial=True, deadline=10
        )
        assert len(sampled) < 4
        assert plan.log.count("walk_failed") == 4 - len(sampled)


class TestRetryExhaustion:
    """Every attempt of a doomed walk is paid for and accounted; the
    caller gets an honest degraded result, never an exception."""

    def _doomed_sampler(self, mesh, n_retries=3):
        # laziness=0 so every attempt sends exactly one (lost) message:
        # the attempt accounting below is exact, not probabilistic
        simulation = SimulationEngine()
        ledger = MessageLedger()
        plan = FaultPlan(FaultConfig(message_loss=0.999), rng=100)
        sampler = ProtocolSampler(
            mesh,
            uniform_weights(),
            simulation,
            np.random.default_rng(0),
            ledger,
            ProtocolConfig(variant="bounce", laziness=0.0),
            faults=plan,
            retry=RetryPolicy(timeout=30, max_retries=n_retries),
        )
        return sampler, plan, ledger

    def test_all_attempts_lost_never_raises(self, mesh):
        sampler, plan, _ = self._doomed_sampler(mesh)
        sampled = sampler.run_walks(
            origin=0, n=4, walk_length=5, allow_partial=True
        )
        assert sampled == []
        stats = sampler.walk_stats
        assert stats.failed == 4
        assert stats.completed == 0
        # full budget burned: 1 initial + 3 retries per walk, all timed out
        assert stats.attempts == stats.timeouts == 4 * 4
        assert plan.log.count("walk_failed") == 4
        failures = [
            event for event in plan.log.events if event.kind == "walk_failed"
        ]
        assert all(e.detail == "retries_exhausted" for e in failures)

    def test_every_attempt_lands_in_the_ledger(self, mesh):
        """First attempts bill as walk traffic, every retry attempt bills
        to ``retries`` -- nothing a doomed walk sent goes unaccounted."""
        sampler, _, ledger = self._doomed_sampler(mesh, n_retries=3)
        sampler.run_walks(origin=0, n=4, walk_length=5, allow_partial=True)
        assert ledger.walk_steps == 4  # one lost first hop per walk
        assert ledger.retries == 4 * 3  # one lost first hop per retry
        assert ledger.breakdown()["retries"] == ledger.retries

    def test_exhausted_walks_surface_degraded_estimate(self):
        """End to end through the evaluator path: a cell whose walks
        exhaust their retries reports ``degraded`` instead of raising."""
        from repro.experiments import fault_tolerance
        from repro.obs.tracer import RecordingTracer

        config = fault_tolerance.FaultSweepConfig(
            n_nodes=30, walk_length=10, timeout=40, max_retries=1
        )
        row = fault_tolerance._run_cell(
            config,
            message_loss=0.9,
            crash_probability=0.0,
            seed=0,
            tracer=RecordingTracer(),
        )
        assert row.n_achieved < row.n_required
        assert row.degraded


class TestCrashSurvival:
    def test_walks_survive_mid_run_crashes(self):
        graph = OverlayGraph(mesh_topology(25), n_nodes=25)
        sampler, plan, simulation, _ = _faulty_sampler(
            graph,
            uniform_weights(),
            FaultConfig(crash_probability=0.05, min_nodes=12),
        )
        crash = CrashProcess(graph, plan, protected={0})

        def crash_round(time):
            crashed = crash.step(time)
            sampler.handle_topology_change(left=crashed)

        simulation.schedule_every(
            10, crash_round, priority=PRIORITY_CHURN, start=10, until=120
        )
        sampled = sampler.run_walks(origin=0, n=30, walk_length=25)
        assert len(sampled) == 30
        assert plan.log.count("node_crash") > 0

    def test_return_path_rerouted_after_crash(self):
        """A return message mid-route survives its next hop crashing:
        routing re-resolves against the live topology each hop."""
        graph = OverlayGraph(ring_topology(12), n_nodes=12)
        sampler, plan, simulation, _ = _faulty_sampler(
            graph, uniform_weights(), FaultConfig()
        )
        crash = CrashProcess(graph, plan, protected={0})

        def crash_some(time):
            # force a specific topology change while returns are in flight
            for node in (3, 7):
                if node in graph and len(graph) > 4:
                    graph.leave(node, rewire=True)
                    plan.record(time, "node_crash", node=node)

        simulation.schedule_in(30, crash_some, priority=PRIORITY_CHURN)
        sampled = sampler.run_walks(origin=0, n=20, walk_length=30)
        assert len(sampled) == 20


class TestCachedVariantRepair:
    def test_cache_miss_probed_instead_of_raising(self):
        """A node joining mid-run without notify_weight_change used to kill
        the walk with a cache-miss SamplingError; now the holder pays a
        2-message probe and proceeds."""
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        weights = {node: 1.0 + node % 3 for node in graph.nodes()}
        simulation = SimulationEngine()
        ledger = MessageLedger()
        sampler = ProtocolSampler(
            graph,
            table_weights({**weights, 9: 2.0, 10: 2.0}),
            simulation,
            np.random.default_rng(0),
            ledger,
            ProtocolConfig(variant="cached"),
        )

        def join_silently(time):
            graph.join(attach_to=[0, 4])  # no advertisement sent

        simulation.schedule_in(3, join_silently, priority=PRIORITY_CHURN)
        sampled = sampler.run_walks(origin=0, n=25, walk_length=40)
        assert len(sampled) == 25
        misses = sampler.fault_log.count("advertisement_cache_miss")
        assert misses > 0
        assert ledger.breakdown()["control:weight_probe"] == 2 * misses

    def test_topology_change_refreshes_advertisements(self):
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        weights = {node: 1.0 + node % 3 for node in range(12)}
        simulation = SimulationEngine()
        sampler = ProtocolSampler(
            graph,
            table_weights(weights),
            simulation,
            np.random.default_rng(0),
            MessageLedger(),
            ProtocolConfig(variant="cached"),
        )
        before = sampler.advertisements_sent
        joined = graph.join(attach_to=[0, 4])
        graph.leave(8, rewire=True)
        sampler.handle_topology_change(joined=[joined], left=[8])
        # the join and the leave-rewiring edges all got advertisements
        assert sampler.advertisements_sent > before
        sampled = sampler.run_walks(origin=0, n=20, walk_length=30)
        assert len(sampled) == 20
        # repaired caches mean no probe fallbacks were needed
        assert sampler.fault_log.count("advertisement_cache_miss") == 0


class TestDeterminism:
    def _run(self, seed):
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        sampler, plan, simulation, ledger = _faulty_sampler(
            graph,
            uniform_weights(),
            FaultConfig(
                message_loss=0.08, crash_probability=0.03, latency_jitter=2
            ),
            seed=seed,
        )
        crash = CrashProcess(graph, plan, protected={0})

        def crash_round(time):
            sampler.handle_topology_change(left=crash.step(time))

        simulation.schedule_every(
            15, crash_round, priority=PRIORITY_CHURN, start=15, until=90
        )
        sampled = sampler.run_walks(
            origin=0, n=25, walk_length=15, allow_partial=True
        )
        return sampled, ledger.breakdown(), plan.log.counts()

    def test_identical_ledgers_across_reruns(self):
        assert self._run(5) == self._run(5)

    def test_fault_seed_does_not_perturb_walks(self, mesh):
        """The fault RNG is separate: a fault-free plan yields the same
        samples as no plan at all (same walk RNG seed)."""
        plain = ProtocolSampler(
            mesh,
            uniform_weights(),
            SimulationEngine(),
            np.random.default_rng(3),
            MessageLedger(),
            ProtocolConfig(),
        )
        expected = plain.run_walks(origin=0, n=15, walk_length=20)
        sampler, _, _, _ = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(), seed=3
        )
        assert sampler.run_walks(origin=0, n=15, walk_length=20) == expected


class TestWalkStats:
    def test_fault_free_stats(self, mesh):
        sampler, _, _, _ = _faulty_sampler(
            mesh, uniform_weights(), FaultConfig(), seed=2
        )
        sampler.run_walks(origin=0, n=10, walk_length=10)
        stats = sampler.walk_stats
        assert stats.launched == stats.completed == stats.attempts == 10
        assert stats.failed == stats.timeouts == 0
        assert stats.completion_rate == 1.0
        assert stats.recovery_rate == 1.0
