"""Protocol runtime under partitions and health-aware routing.

Exercises the correlated-failure path end to end at the message layer:
cross-region deliveries drop silently at ``_transmit``, the origin's
supervision feeds the first-hop breakers, correlated timeouts trip them,
tripped links are skipped (or the whole walk fast-fails honestly), the
partition detector fires on the correlation, and after the heal the
half-open probes re-admit the links one walk at a time.
"""

import numpy as np
import pytest

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.health import CLOSED, HealthConfig
from repro.network.messaging import MessageLedger
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import mesh_topology
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import PRIORITY_CHURN, SimulationEngine


def _partitioned_sampler(seed=0, duration=40, health=None, n_nodes=16):
    """A sampler on a mesh whose overlay is cut from t=0 to ``duration``.

    The plan is stepped every simulator tick (like a driver would), so
    walks launched before the heal see the cut and walks launched after
    it see the healed overlay.
    """
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    simulation = SimulationEngine()
    ledger = MessageLedger()
    plan = PartitionPlan(
        PartitionSchedule(
            episodes=(PartitionEpisode(start=0, duration=duration),)
        ),
        rng=seed,
    )
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        simulation,
        np.random.default_rng(seed),
        ledger,
        ProtocolConfig(variant="bounce"),
        retry=RetryPolicy(timeout=15, max_retries=1),
        partitions=plan,
        health=health,
    )
    simulation.schedule_every(
        1,
        lambda t: plan.step(t, graph),
        priority=PRIORITY_CHURN,
        start=0,
        until=duration + 20,
    )
    return sampler, plan, graph, simulation


class TestPartitionedDelivery:
    def test_cross_region_messages_drop_as_partition_drops(self):
        sampler, plan, graph, _ = _partitioned_sampler()
        sampled = sampler.run_walks(
            origin=0, n=20, walk_length=6, allow_partial=True
        )
        counts = sampler.fault_log.counts()
        assert counts["partition_drop"] > 0
        # dropped attempts die by origin-side timeout, never an exception
        assert counts["walk_timeout"] > 0
        stats = sampler.walk_stats
        assert stats.failed > 0
        assert len(sampled) == stats.completed
        # completed walks never left the origin's region
        scope = set(plan.reachable(graph, 0)) if plan.active else None
        if scope is not None:
            assert set(sampled) <= scope

    def test_paid_for_but_dropped(self):
        """A partition drop is silence, not refusal: the sender still
        pays for the message (it was sent), the receiver never runs."""
        sampler, _, _, _ = _partitioned_sampler()
        ledger = sampler.ledger
        sampler.run_walks(origin=0, n=10, walk_length=6, allow_partial=True)
        drops = sampler.fault_log.count("partition_drop")
        assert drops > 0
        assert ledger.walk_steps + ledger.retries >= drops

    def test_delivery_restored_after_heal(self):
        sampler, plan, _, simulation = _partitioned_sampler(duration=10)
        simulation.run_until(30)  # plan steps past the heal
        assert not plan.active
        before = sampler.fault_log.count("partition_drop")
        sampled = sampler.run_walks(origin=0, n=15, walk_length=8)
        assert len(sampled) == 15
        assert sampler.fault_log.count("partition_drop") == before

    def test_partition_drops_are_deterministic(self):
        def run(seed):
            sampler, _, _, _ = _partitioned_sampler(seed=seed)
            sampled = sampler.run_walks(
                origin=0, n=20, walk_length=6, allow_partial=True
            )
            return (
                sampled,
                sampler.ledger.breakdown(),
                sampler.fault_log.counts(),
            )

        assert run(3) == run(3)


class TestBreakerRouting:
    def _lossy_health_sampler(self, threshold=2, cooldown=1000):
        """Total loss: every first hop dies, so breakers must trip."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        simulation = SimulationEngine()
        sampler = ProtocolSampler(
            graph,
            uniform_weights(),
            simulation,
            np.random.default_rng(1),
            MessageLedger(),
            ProtocolConfig(variant="bounce", laziness=0.0),
            faults=FaultPlan(FaultConfig(message_loss=0.999), rng=200),
            retry=RetryPolicy(timeout=10, max_retries=2),
            health=HealthConfig(
                failure_threshold=threshold,
                cooldown=cooldown,
                detect_fraction=0.5,
            ),
        )
        return sampler, graph

    def test_correlated_timeouts_trip_every_first_hop_breaker(self):
        sampler, graph = self._lossy_health_sampler()
        sampler.run_walks(origin=0, n=12, walk_length=5, allow_partial=True)
        assert sampler.health is not None
        # origin 0 has two mesh neighbors; both links look dead
        assert sampler.health.trips == len(graph.neighbors(0))
        assert sampler.fault_log.count("breaker_trip") == sampler.health.trips
        fraction = sampler.health.open_fraction(0, len(graph.neighbors(0)))
        assert fraction == 1.0

    def test_all_breakers_open_fast_fails_retries(self):
        """Once every link is suppressed, a relaunched attempt fails at
        the origin without sending anything or burning its timeout."""
        sampler, _ = self._lossy_health_sampler()
        sampler.run_walks(origin=0, n=12, walk_length=5, allow_partial=True)
        counts = sampler.fault_log.counts()
        assert counts["breaker_suppressed"] > 0
        exhausted = [
            event
            for event in sampler.fault_log.events
            if event.kind == "walk_failed"
        ]
        assert any(e.detail == "all_breakers_open" for e in exhausted)
        # fast-failed attempts sent no messages: first attempts all paid
        # one hop each, suppressed relaunches paid nothing
        stats = sampler.walk_stats
        ledger = sampler.ledger
        assert ledger.walk_steps + ledger.retries < stats.attempts

    def test_correlated_failures_raise_partition_suspicion(self):
        sampler, _ = self._lossy_health_sampler()
        sampler.run_walks(origin=0, n=12, walk_length=5, allow_partial=True)
        assert sampler.health is not None
        assert sampler.health.partition_suspected(0)
        assert sampler.fault_log.count("partition_suspected") == 1

    def test_health_free_runtime_is_rng_identical(self):
        """health=None must not perturb first-hop draws: same samples as
        a sampler constructed without the health machinery."""

        def run(health):
            graph = OverlayGraph(mesh_topology(16), n_nodes=16)
            sampler = ProtocolSampler(
                graph,
                uniform_weights(),
                SimulationEngine(),
                np.random.default_rng(7),
                MessageLedger(),
                ProtocolConfig(),
                health=health,
            )
            return sampler.run_walks(origin=0, n=15, walk_length=12)

        # a fault-free run never records failures, so the health-aware
        # first-hop choice admits everyone and must draw identically
        assert run(HealthConfig()) == run(None)


class TestHealRecovery:
    def test_probe_walks_reclose_breakers_after_heal(self):
        """The full lifecycle: cut -> trips + suspicion -> heal -> one
        probe walk per link -> breakers close, suspicion cleared."""
        sampler, plan, graph, _ = _partitioned_sampler(
            duration=40,
            health=HealthConfig(failure_threshold=2, cooldown=5),
        )
        monitor = sampler.health
        assert monitor is not None

        # phase 1: the cut strangles cross-region walks until both of
        # the origin's first-hop links trip
        sampler.run_walks(origin=0, n=20, walk_length=6, allow_partial=True)
        assert monitor.trips == len(graph.neighbors(0))
        assert monitor.partition_suspected(0)
        assert sampler.fault_log.count("partition_drop") > 0

        # phase 2: the plan healed while the queue drained; the next
        # walks go out as half-open probes (one per link) and succeed
        probe_walks = sampler.run_walks(
            origin=0, n=2, walk_length=6, allow_partial=True
        )
        assert len(probe_walks) == 2
        assert monitor.probes == len(graph.neighbors(0))
        for neighbor in graph.neighbors(0):
            assert monitor.breaker(0, neighbor).state == CLOSED
        assert not monitor.partition_suspected(0)
        assert sampler.fault_log.count("partition_cleared") == 1

        # phase 3: with the breakers closed, routing is fully restored
        sampled = sampler.run_walks(origin=0, n=10, walk_length=6)
        assert len(sampled) == 10

    def test_probe_is_rationed_one_walk_per_link(self):
        """While a probe is in flight its link stays suppressed: a burst
        launched right after cooldown gets exactly one probe per link and
        fast-fails the rest instead of stampeding a recovering link."""
        sampler, plan, graph, _ = _partitioned_sampler(
            duration=40,
            health=HealthConfig(failure_threshold=2, cooldown=5),
        )
        sampler.run_walks(origin=0, n=20, walk_length=6, allow_partial=True)
        monitor = sampler.health
        assert monitor is not None
        trips_before = monitor.trips
        burst = sampler.run_walks(
            origin=0, n=10, walk_length=6, allow_partial=True
        )
        # the burst launches at one tick: one probe per tripped link gets
        # through, the other eight walks fail fast while both are pending
        assert monitor.probes == len(graph.neighbors(0))
        assert len(burst) == len(graph.neighbors(0))
        assert monitor.trips == trips_before  # probes succeeded, no re-trip
