"""The walk lifecycle state machine, exhaustively.

The machine is data (:data:`repro.protocol.lifecycle.TRANSITIONS`), so
the tests enumerate it: every legal ``(phase, event)`` pair advances to
its declared target, every illegal pair raises ``AssertionError``, and
structural invariants (terminal phases have no outgoing edges, every
phase and event appears in the table) hold by construction.

The property test then drives a real :class:`WalkLifecycle` over a
:class:`SimTransport` with a hypothesis-chosen per-attempt behavior —
complete after a delay, fail outright, or go silent and let the
supervision timeout fire — and asserts that *every* interleaving of
completions, failures, timeouts, and stale-attempt races lands the walk
in a terminal phase with consistent bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.faults import FaultLog
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.obs.tracer import NULL_TRACER
from repro.protocol.lifecycle import (
    EVENTS,
    FAILED,
    IN_FLIGHT,
    PENDING,
    PHASES,
    RETRYING,
    TERMINAL_PHASES,
    TRANSITIONS,
    DONE,
    RetryPolicy,
    WalkLifecycle,
    next_phase,
)
from repro.protocol.routing import UniformRouting
from repro.protocol.transport import SimTransport
from repro.sim.engine import SimulationEngine


class TestTransitionTable:
    @pytest.mark.parametrize(
        "phase,event", [(p, e) for p in PHASES for e in EVENTS]
    )
    def test_every_pair_is_decided(self, phase, event):
        """Legal pairs advance per the table; illegal pairs assert."""
        if (phase, event) in TRANSITIONS:
            assert next_phase(phase, event) == TRANSITIONS[(phase, event)]
        else:
            with pytest.raises(AssertionError):
                next_phase(phase, event)

    def test_terminal_phases_have_no_outgoing_edges(self):
        for phase, _event in TRANSITIONS:
            assert phase not in TERMINAL_PHASES

    def test_every_phase_and_event_appears(self):
        sources = {phase for phase, _ in TRANSITIONS}
        targets = set(TRANSITIONS.values())
        assert sources | targets == set(PHASES)
        assert {event for _, event in TRANSITIONS} == set(EVENTS)

    def test_only_pending_is_unreachable(self):
        """PENDING is the entry phase: nothing transitions back into it."""
        assert PENDING not in set(TRANSITIONS.values())

    def test_declared_shape_is_pinned(self):
        """The walk phase graph of DESIGN.md §5, verbatim."""
        assert TRANSITIONS == {
            (PENDING, "launch"): IN_FLIGHT,
            (IN_FLIGHT, "timeout"): RETRYING,
            (RETRYING, "retry"): IN_FLIGHT,
            (IN_FLIGHT, "complete"): DONE,
            (IN_FLIGHT, "fail"): FAILED,
            (RETRYING, "fail"): FAILED,
        }


def _lifecycle(retry):
    """A real lifecycle over a reliable 4-node transport."""
    graph = OverlayGraph(mesh_topology(4), n_nodes=4)
    engine = SimulationEngine()
    fault_log = FaultLog()
    transport = SimTransport(graph, engine, 1, fault_log)
    lifecycle = WalkLifecycle(
        transport,
        NULL_TRACER,
        fault_log,
        engine.clock,
        UniformRouting(np.random.default_rng(0)),
        retry=retry,
    )
    return lifecycle, transport


#: one behavior per attempt: ("complete"|"fail", delay) acts after
#: ``delay`` ticks through the stale-attempt guard; "silent" lets the
#: supervision timeout fire instead
_BEHAVIOR = st.one_of(
    st.tuples(st.just("complete"), st.integers(min_value=0, max_value=12)),
    st.tuples(st.just("fail"), st.integers(min_value=0, max_value=12)),
    st.just(("silent", 0)),
)


class TestLifecycleProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        behaviors=st.lists(_BEHAVIOR, min_size=1, max_size=6),
        timeout=st.integers(min_value=1, max_value=6),
        max_retries=st.integers(min_value=0, max_value=4),
    )
    def test_any_interleaving_ends_terminal(
        self, behaviors, timeout, max_retries
    ):
        retry = RetryPolicy(timeout=timeout, max_retries=max_retries)
        lifecycle, transport = _lifecycle(retry)

        def inject(record, attempt):
            what, delay = behaviors[min(attempt - 1, len(behaviors) - 1)]
            if what == "silent":
                return  # the origin-side timeout must resolve this

            def act(_time):
                # mirror the executor: a delayed delivery for a
                # superseded attempt must be dropped, not applied
                live = lifecycle.live_record(record.walker_id, attempt)
                if live is None:
                    return
                if what == "complete":
                    lifecycle.complete(live, live.origin)
                else:
                    lifecycle.fail(live, "injected")

            transport.schedule(delay, act)

        lifecycle.bind(inject)
        walker_id = lifecycle.launch(origin=0, walk_length=3)
        lifecycle.drive([walker_id], deadline=None)

        record = lifecycle.record(walker_id)
        assert record.finished, "walk left in a non-terminal phase"
        assert record.phase in TERMINAL_PHASES
        assert (walker_id in lifecycle.outcomes) == record.done
        assert 1 <= record.attempt <= max_retries + 1
        stats = lifecycle.stats
        assert stats.launched == 1
        assert stats.completed + stats.failed == 1
        assert stats.timeouts == record.timeouts
        if record.done:
            outcome = lifecycle.outcomes[walker_id]
            assert outcome.attempts == record.attempt

    def test_unsupervised_silent_walk_fails_at_deadline(self):
        """Without a RetryPolicy a lost walk is only caught by drive()'s
        deadline sweep — and must still land in FAILED."""
        lifecycle, _transport = _lifecycle(retry=None)
        lifecycle.bind(lambda record, attempt: None)
        walker_id = lifecycle.launch(origin=0, walk_length=3)
        lifecycle.drive([walker_id], deadline=50)
        assert lifecycle.record(walker_id).phase == FAILED
        assert walker_id not in lifecycle.outcomes
