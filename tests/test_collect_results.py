"""Tests for the benchmark-results aggregator."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SPEC_PATH = Path(__file__).parent.parent / "benchmarks" / "collect_results.py"


@pytest.fixture
def collector(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("collect_results", _SPEC_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = tmp_path / "results"
    results.mkdir()
    monkeypatch.setattr(module, "RESULTS_DIR", results)
    monkeypatch.setattr(module, "OUTPUT", tmp_path / "RESULTS.md")
    monkeypatch.setattr(
        module, "MULTI_QUERY_JSON", tmp_path / "BENCH_multi_query.json"
    )
    monkeypatch.setattr(module, "FAULTS_JSON", tmp_path / "BENCH_faults.json")
    return module, results


def test_collects_known_and_extra_tables(collector):
    module, results = collector
    (results / "fig4a.txt").write_text("FIG4A TABLE\n")
    (results / "mystery_extra.txt").write_text("EXTRA TABLE\n")
    module.main()
    output = (module.OUTPUT).read_text()
    assert "## Paper artifacts" in output
    assert "FIG4A TABLE" in output
    assert "## Other" in output
    assert "EXTRA TABLE" in output


def test_empty_sections_omitted(collector):
    module, results = collector
    (results / "coverage_repeated.txt").write_text("COVERAGE\n")
    module.main()
    output = module.OUTPUT.read_text()
    assert "## Guarantee validation" in output
    assert "## Paper artifacts" not in output  # nothing saved for it


def test_missing_results_dir_errors(collector, tmp_path, monkeypatch):
    module, _ = collector
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "nope")
    assert module.main() == 1


def test_folds_trace_attribution_into_results(collector):
    from repro.obs.export import export_trace
    from repro.obs.tracer import RecordingTracer

    module, results = collector
    (results / "fig4a.txt").write_text("FIG4A TABLE\n")
    tracer = RecordingTracer(meta={"experiment": "unit"})
    walk = tracer.span("walk", time=0)
    tracer.event("message", time=0, span=walk, category="walk")
    tracer.end(walk, time=3, outcome="completed", attempts=1)
    export_trace(tracer.trace(), results / "fault_smoke.jsonl")
    module.main()
    output = module.OUTPUT.read_text()
    assert "## Trace cost attribution" in output
    assert "fault_smoke" in output
    import json

    folded = json.loads((results / "trace_attribution.json").read_text())
    assert folded["fault_smoke"]["message_attribution"]["walk_steps"] == 1
    assert folded["fault_smoke"]["walk_outcomes"] == {"completed": 1}


def test_promotes_multi_query_payload(collector):
    import json

    module, results = collector
    payload = {"message_savings": 0.5, "pool_hit_rate": 0.9}
    (results / "multi_query.json").write_text(json.dumps(payload))
    module.main()
    assert module.MULTI_QUERY_JSON.exists()
    assert json.loads(module.MULTI_QUERY_JSON.read_text()) == payload


def test_promotes_fault_overhead_payload(collector):
    import json

    module, results = collector
    payload = {"overhead": 0.04, "samples_identical": True}
    (results / "fault_overhead.json").write_text(json.dumps(payload))
    module.main()
    assert module.FAULTS_JSON.exists()
    assert json.loads(module.FAULTS_JSON.read_text()) == payload


def test_no_fault_overhead_payload_is_fine(collector):
    module, results = collector
    (results / "fig4a.txt").write_text("FIG4A TABLE\n")
    module.main()
    assert not module.FAULTS_JSON.exists()


def test_no_multi_query_payload_is_fine(collector):
    module, results = collector
    (results / "fig4a.txt").write_text("FIG4A TABLE\n")
    module.main()
    assert not module.MULTI_QUERY_JSON.exists()


def test_no_traces_writes_no_attribution(collector):
    module, results = collector
    (results / "fig4a.txt").write_text("FIG4A TABLE\n")
    module.main()
    assert "Trace cost attribution" not in module.OUTPUT.read_text()
    assert not (results / "trace_attribution.json").exists()


def test_stale_bench_payload_warns(collector, tmp_path):
    import os

    module, _ = collector
    payload = tmp_path / "BENCH_fake.json"
    producer = tmp_path / "bench_fake.py"
    payload.write_text("{}")
    producer.write_text("# bench\n")
    os.utime(payload, (1_000_000, 1_000_000))
    os.utime(producer, (2_000_000, 2_000_000))
    warnings = module.stale_bench_payloads(((payload, producer),))
    assert len(warnings) == 1
    assert "BENCH_fake.json" in warnings[0]
    assert "bench_fake.py" in warnings[0]


def test_fresh_bench_payload_is_silent(collector, tmp_path):
    import os

    module, _ = collector
    payload = tmp_path / "BENCH_fake.json"
    producer = tmp_path / "bench_fake.py"
    producer.write_text("# bench\n")
    payload.write_text("{}")
    os.utime(producer, (1_000_000, 1_000_000))
    os.utime(payload, (2_000_000, 2_000_000))
    assert module.stale_bench_payloads(((payload, producer),)) == []


def test_missing_bench_payload_is_not_stale(collector, tmp_path):
    module, _ = collector
    producer = tmp_path / "bench_fake.py"
    producer.write_text("# bench\n")
    missing = tmp_path / "BENCH_fake.json"
    assert module.stale_bench_payloads(((missing, producer),)) == []


def test_every_declared_producer_script_exists(collector):
    module, _ = collector
    for _payload, producer in module.BENCH_PRODUCERS:
        assert producer.exists(), producer
