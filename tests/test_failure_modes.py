"""Failure-injection tests: the system must fail loudly, never silently.

A sampling system that degrades quietly produces *biased answers*; every
scenario here checks that a broken precondition surfaces as a typed
error with an actionable message instead.
"""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.db.relation import P2PDatabase, Schema
from repro.errors import (
    QueryError,
    SamplingError,
    TopologyError,
)
from repro.network.graph import OverlayGraph
from repro.network.topology import line_topology, mesh_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sampling.weights import uniform_weights


def _world(n=16, per_node=3, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(per_node):
            database.insert(node, {"v": float(rng.normal(0, 1))})
    return graph, database


class TestSamplerFailures:
    def test_disconnected_overlay_detected(self):
        """Isolated nodes would silently bias the sample — must raise."""
        graph = OverlayGraph([(0, 1)], n_nodes=3)  # node 2 isolated
        operator = SamplingOperator(graph, np.random.default_rng(0))
        with pytest.raises(TopologyError, match="isolated"):
            operator.sample_nodes(uniform_weights(), 1, origin=0)

    def test_origin_departed_mid_query(self):
        """The querying node leaving is unrecoverable for its own query."""
        graph, database = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        operator.sample_tuples(database, 5, origin=0)
        graph.leave(0)
        database.remove_node(0)
        with pytest.raises(SamplingError, match="origin"):
            operator.sample_tuples(database, 5, origin=0)

    def test_relation_emptied_mid_query(self):
        graph, database = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        operator.sample_tuples(database, 5, origin=0)
        for tuple_id, _, _ in list(database.iter_tuples()):
            database.delete(tuple_id)
        with pytest.raises(SamplingError, match="empty relation"):
            operator.sample_tuples(database, 5, origin=0)

    def test_walk_length_budget_exceeded(self):
        """A near-disconnected overlay needing absurd walks must refuse."""
        graph = OverlayGraph(line_topology(200), n_nodes=200)
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(
                gamma=0.001, max_walk_length=50, length_policy="theorem3"
            ),
        )
        with pytest.raises(SamplingError, match="exceeds"):
            operator.sample_nodes(uniform_weights(), 1, origin=0)


class TestEngineFailures:
    def test_infeasible_precision_surfaces(self):
        """Absurd precision demands raise rather than loop forever."""
        graph, database = _world()
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(v) FROM R"),
            Precision(delta=1.0, epsilon=1e-9, confidence=0.999),
            duration=1,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(0),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        with pytest.raises(QueryError, match="infeasible|exceeds"):
            engine.step(0)

    def test_engine_with_departed_origin_raises_on_step(self):
        graph, database = _world()
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(v) FROM R"),
            Precision(delta=1.0, epsilon=1.0, confidence=0.9),
            duration=10,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=5,
            rng=np.random.default_rng(0),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        engine.step(0)
        graph.leave(5)
        database.remove_node(5)
        with pytest.raises(SamplingError):
            engine.step(1)

    def test_avg_over_emptied_relation(self):
        from repro.baselines.push_all import PushAllBaseline

        graph, database = _world()
        baseline = PushAllBaseline(
            graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0
        )
        baseline.step(0)
        for tuple_id, _, _ in list(database.iter_tuples()):
            database.delete(tuple_id)
        with pytest.raises(QueryError, match="empty"):
            baseline.step(1)


class TestNumericalEdgeCases:
    def test_constant_population_zero_variance(self):
        """sigma = 0: the pilot suffices and the estimate is exact."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        for node in graph.nodes():
            database.insert(node, {"v": 7.0})
        from repro.core.independent import IndependentEvaluator

        evaluator = IndependentEvaluator(
            database,
            SamplingOperator(graph, np.random.default_rng(0)),
            0,
            parse_query("SELECT AVG(v) FROM R"),
        )
        estimate = evaluator.evaluate(0, epsilon=0.1, confidence=0.99)
        assert estimate.mean == pytest.approx(7.0)
        assert estimate.n_total == evaluator.config.pilot_size

    def test_single_tuple_relation(self):
        graph = OverlayGraph(mesh_topology(4), n_nodes=4)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        database.insert(0, {"v": 3.0})
        operator = SamplingOperator(graph, np.random.default_rng(0))
        samples = operator.sample_tuples(database, 10, origin=0)
        assert all(s.row["v"] == 3.0 for s in samples)

    def test_repeated_evaluator_survives_total_turnover(self):
        """Every retained tuple deleted between occasions: full refresh."""
        from repro.core.repeated import RepeatedEvaluator

        graph, database = _world(per_node=4)
        evaluator = RepeatedEvaluator(
            database,
            SamplingOperator(graph, np.random.default_rng(1)),
            0,
            parse_query("SELECT AVG(v) FROM R"),
            np.random.default_rng(2),
        )
        evaluator.evaluate(0, epsilon=0.5, confidence=0.9)
        rng = np.random.default_rng(3)
        for tuple_id, node, _ in list(database.iter_tuples()):
            database.delete(tuple_id)
            database.insert(node, {"v": float(rng.normal(0, 1))})
        estimate = evaluator.evaluate(1, epsilon=0.5, confidence=0.9)
        assert estimate.n_retained == 0
        assert estimate.n_fresh == estimate.n_total
