"""Whole-stack integration scenarios.

Each test wires many subsystems together the way a deployment would and
asserts cross-cutting invariants (accounting consistency, oracle
tracking, guarantee plausibility) rather than per-module behavior.
"""

import dataclasses

import numpy as np
import pytest

from repro import (
    DigestNode,
    EngineConfig,
    Expression,
    Precision,
    parse_query,
)
from repro.core.query import ContinuousQuery
from repro.core.threshold import ThresholdMonitor, ThresholdState
from repro.datasets.memory import MemoryConfig, MemoryDataset
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset
from repro.db.aggregates import exact_aggregate


class TestChurningGridScenario:
    """A scheduler node watching a churning computing grid."""

    @pytest.fixture(scope="class")
    def scenario(self):
        config = dataclasses.replace(
            MemoryConfig().scaled(0.12), leave_probability=0.02
        )
        instance = MemoryDataset(config, seed=11).build()
        origin = instance.graph.nodes()[0]
        instance.churn.protect(origin)
        node = DigestNode(
            instance.graph,
            instance.database,
            origin,
            np.random.default_rng(12),
        )
        sigma = config.expected_sigma
        qid_avg = node.register(
            ContinuousQuery(
                parse_query("SELECT AVG(available_memory) FROM R"),
                Precision(delta=sigma, epsilon=0.4 * sigma, confidence=0.95),
                duration=30,
            ),
            EngineConfig(scheduler="pred", evaluator="repeated"),
        )
        qid_count = node.register(
            ContinuousQuery(
                parse_query(
                    "SELECT COUNT(available_memory) FROM R "
                    "WHERE available_memory > 90"
                ),
                Precision(delta=15.0, epsilon=20.0, confidence=0.9),
                duration=30,
            ),
            EngineConfig(scheduler="all", evaluator="independent"),
        )
        notifications = []
        node.engine(qid_avg).subscribe(notifications.append)
        monitor = ThresholdMonitor(
            threshold=95.0, confidence=0.9
        )
        avg_errors = []
        count_errors = []
        for t in range(30):
            instance.step(t)
            executed = node.step(t)
            if qid_avg in executed:
                monitor.offer(executed[qid_avg])
                avg_errors.append(
                    abs(executed[qid_avg].aggregate - instance.true_average())
                )
            if qid_count in executed:
                query = node.engine(qid_count).continuous_query.query
                truth = exact_aggregate(
                    instance.database, query.op, query.expression, query.predicate
                )
                count_errors.append(
                    abs(executed[qid_count].aggregate - truth)
                )
        return {
            "instance": instance,
            "node": node,
            "qid_avg": qid_avg,
            "qid_count": qid_count,
            "notifications": notifications,
            "monitor": monitor,
            "avg_errors": avg_errors,
            "count_errors": count_errors,
        }

    def test_churn_happened(self, scenario):
        assert scenario["instance"].nodes_left > 0

    def test_avg_tracked_truth(self, scenario):
        assert float(np.mean(scenario["avg_errors"])) < 2.0 * 0.4 * 10.0

    def test_filtered_count_tracked_truth(self, scenario):
        assert float(np.mean(scenario["count_errors"])) < 40.0

    def test_accounting_consistent(self, scenario):
        node = scenario["node"]
        for qid in node.query_ids():
            metrics = node.engine(qid).metrics
            assert metrics.samples_total == (
                metrics.samples_fresh + metrics.samples_retained
            )
            assert metrics.snapshot_queries == len(node.result(qid))
        assert node.ledger.total > 0

    def test_scheduler_divergence(self, scenario):
        """PRED skipped; ALL did not."""
        node = scenario["node"]
        assert node.engine(scenario["qid_count"]).metrics.snapshot_queries == 30
        assert node.engine(scenario["qid_avg"]).metrics.snapshot_queries < 30

    def test_notifications_are_sparse(self, scenario):
        updates = len(scenario["node"].result(scenario["qid_avg"]))
        assert 1 <= len(scenario["notifications"]) <= updates

    def test_threshold_monitor_settled(self, scenario):
        assert scenario["monitor"].state is not ThresholdState.UNKNOWN


class TestWeatherScenarioWithRevision:
    """TEMPERATURE with forward revision: retrospective accuracy improves."""

    def test_revisions_reduce_retrospective_error(self):
        config = TemperatureConfig().scaled(0.06)
        instance = TemperatureDataset(config, seed=21).build()
        from repro.core.engine import DigestEngine

        engine = DigestEngine(
            instance.graph,
            instance.database,
            ContinuousQuery(
                parse_query("SELECT AVG(temperature) FROM R"),
                Precision(delta=8.0, epsilon=1.0, confidence=0.95),
                duration=40,
            ),
            origin=0,
            rng=np.random.default_rng(22),
            config=EngineConfig(
                scheduler="all", evaluator="repeated", forward_revision=True
            ),
        )
        truths = {}
        for t in range(40):
            instance.step(t)
            if engine.step(t) is not None:
                truths[t] = instance.true_average()
        revised = [r for r in engine.result.updates if r.was_revised]
        assert revised, "expected at least one retrospective revision"
        original_errors = []
        revised_errors = []
        for record in revised:
            truth = truths[record.time]
            original_errors.append(abs(record.original_estimate - truth))
            revised_errors.append(abs(record.estimate - truth))
        # on average the revision must not hurt (and typically helps)
        assert float(np.mean(revised_errors)) <= float(
            np.mean(original_errors)
        ) * 1.15
