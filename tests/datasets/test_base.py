"""Tests for shared workload machinery."""

import numpy as np
import pytest

from repro.datasets.base import distribute_units, lag1_correlation
from repro.errors import SimulationError


class TestDistributeUnits:
    def test_every_node_covered_when_enough_units(self):
        assignment = distribute_units(10, [0, 1, 2], np.random.default_rng(0))
        assert set(assignment.values()) == {0, 1, 2}
        assert len(assignment) == 10

    def test_fewer_units_than_nodes(self):
        assignment = distribute_units(2, [5, 6, 7], np.random.default_rng(0))
        assert len(assignment) == 2
        assert set(assignment.values()) <= {5, 6, 7}

    def test_unit_ids_contiguous(self):
        assignment = distribute_units(6, [0, 1], np.random.default_rng(0))
        assert sorted(assignment) == list(range(6))

    def test_validation(self):
        with pytest.raises(SimulationError):
            distribute_units(0, [0], np.random.default_rng(0))
        with pytest.raises(SimulationError):
            distribute_units(3, [], np.random.default_rng(0))


class TestLag1CorrelationMatched:
    def test_matches_on_common_ids(self):
        from repro.datasets.base import lag1_correlation_matched

        previous = {1: 1.0, 2: 2.0, 3: 3.0, 99: 50.0}
        current = {1: 2.0, 2: 4.0, 3: 6.0, 100: -50.0}  # 99 left, 100 joined
        assert lag1_correlation_matched(previous, current) == pytest.approx(1.0)

    def test_requires_survivors(self):
        from repro.datasets.base import lag1_correlation_matched
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            lag1_correlation_matched({1: 1.0}, {2: 2.0})

    def test_churn_does_not_depress_rho(self):
        """The positional pairing artifact the matched version fixes."""
        import dataclasses

        from repro.datasets.base import lag1_correlation_matched
        from repro.datasets.memory import MemoryConfig, MemoryDataset

        config = dataclasses.replace(
            MemoryConfig().scaled(0.3), leave_probability=0.02
        )
        instance = MemoryDataset(config, seed=3).build()
        rhos = []
        previous = None
        for t in range(40):
            instance.step(t)
            current = instance.current_values_by_id()
            if previous is not None:
                rhos.append(lag1_correlation_matched(previous, current))
            previous = current
        assert np.mean(rhos) == pytest.approx(0.68, abs=0.08)


class TestLag1Correlation:
    def test_perfect_correlation(self):
        previous = np.array([1.0, 2.0, 3.0, 4.0])
        assert lag1_correlation(previous, previous * 2 + 1) == pytest.approx(1.0)

    def test_anticorrelation(self):
        previous = np.array([1.0, 2.0, 3.0, 4.0])
        assert lag1_correlation(previous, -previous) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        previous = rng.normal(0, 1, 5000)
        current = rng.normal(0, 1, 5000)
        assert abs(lag1_correlation(previous, current)) < 0.05

    def test_constant_snapshot(self):
        assert lag1_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            lag1_correlation(np.ones(3), np.ones(4))
        with pytest.raises(SimulationError):
            lag1_correlation(np.ones(1), np.ones(1))
