"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.datasets.memory import MemoryConfig, MemoryDataset
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset
from repro.datasets.traces import (
    Trace,
    TraceEvent,
    TraceRecorder,
    replay_trace,
)
from repro.errors import SimulationError


class TestTraceEvent:
    def test_valid_kinds(self):
        TraceEvent(0, "insert", 1, node=0, value=1.0)
        TraceEvent(0, "update", 1, value=2.0)
        TraceEvent(0, "delete", 1)
        TraceEvent(0, "join", 5)
        TraceEvent(0, "leave", 5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            TraceEvent(0, "explode", 1)

    def test_insert_needs_node_and_value(self):
        with pytest.raises(SimulationError):
            TraceEvent(0, "insert", 1, value=1.0)
        with pytest.raises(SimulationError):
            TraceEvent(0, "insert", 1, node=0)

    def test_update_needs_value(self):
        with pytest.raises(SimulationError):
            TraceEvent(0, "update", 1)

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            TraceEvent(-1, "delete", 1)


def _record(instance, steps):
    recorder = TraceRecorder(instance)
    for t in range(steps):
        instance.step(t)
        recorder.observe(t)
    return recorder.finish()


class TestRecordReplay:
    def test_temperature_roundtrip(self):
        """Replaying a recorded trace reproduces the oracle trajectory."""
        config = TemperatureConfig().scaled(0.03)
        source = TemperatureDataset(config, seed=0).build()
        recorder = TraceRecorder(source)
        averages = []
        for t in range(12):
            source.step(t)
            recorder.observe(t)
            averages.append(source.true_average())
        trace = recorder.finish()

        replayed = replay_trace(trace)  # auto-seeds from initial_tuples
        for t in range(12):
            replayed.step(t)
            assert replayed.true_average() == pytest.approx(averages[t], rel=1e-9)

    def test_memory_roundtrip_with_churn(self):
        config = MemoryConfig().scaled(0.1)
        import dataclasses

        config = dataclasses.replace(config, leave_probability=0.03)
        source = MemoryDataset(config, seed=1).build()
        recorder = TraceRecorder(source)
        averages = []
        for t in range(15):
            source.step(t)
            recorder.observe(t)
            averages.append(source.true_average())
        trace = recorder.finish()
        assert any(e.kind in ("join", "leave") for e in trace.events)

        replayed = replay_trace(trace)
        for t in range(15):
            replayed.step(t)
            assert replayed.true_average() == pytest.approx(averages[t], rel=1e-9)

    def test_save_load(self, tmp_path):
        config = TemperatureConfig().scaled(0.03)
        source = TemperatureDataset(config, seed=0).build()
        trace = _record(source, 5)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.attribute == trace.attribute
        assert loaded.n_steps == trace.n_steps
        assert loaded.initial_edges == trace.initial_edges
        assert loaded.events == trace.events
        assert loaded.initial_tuples == trace.initial_tuples
        assert loaded.initial_tuples  # self-contained file

    def test_events_at(self):
        trace = Trace(
            attribute="v",
            n_steps=3,
            initial_edges=[(0, 1)],
            initial_nodes=[0, 1],
            events=[
                TraceEvent(1, "update", 0, value=1.0),
                TraceEvent(2, "update", 0, value=2.0),
                TraceEvent(1, "delete", 3),
            ],
        )
        assert len(list(trace.events_at(1))) == 2
        assert len(list(trace.events_at(0))) == 0
