"""Tests for the synthetic TEMPERATURE workload."""

import numpy as np
import pytest

from repro.datasets.base import lag1_correlation
from repro.datasets.temperature import (
    TemperatureConfig,
    TemperatureDataset,
)
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def small_instance():
    config = TemperatureConfig().scaled(0.05)
    return TemperatureDataset(config, seed=0).build()


class TestConfig:
    def test_defaults_match_table2_counts(self):
        config = TemperatureConfig()
        assert config.n_nodes == 530
        assert config.n_units == 8000
        assert config.n_steps == 1080

    def test_calibration_targets(self):
        config = TemperatureConfig()
        assert config.expected_sigma == pytest.approx(8.0, abs=0.1)
        assert config.expected_rho == pytest.approx(0.89, abs=0.01)

    def test_scaled(self):
        scaled = TemperatureConfig().scaled(0.1)
        assert scaled.n_nodes == 53
        assert scaled.n_units == 800
        assert scaled.expected_rho == TemperatureConfig().expected_rho

    def test_scaled_validation(self):
        with pytest.raises(SimulationError):
            TemperatureConfig().scaled(0.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            TemperatureConfig(n_nodes=10, n_units=5)
        with pytest.raises(SimulationError):
            TemperatureConfig(ar_coefficient=1.0)
        with pytest.raises(SimulationError):
            TemperatureConfig(shock_prob=0.0)


class TestInstance:
    def test_world_shape(self, small_instance):
        config = small_instance.config
        assert len(small_instance.graph) == config.n_nodes
        assert small_instance.database.n_tuples == config.n_units
        assert small_instance.graph.is_connected()

    def test_no_empty_fragments(self, small_instance):
        sizes = small_instance.database.content_sizes()
        assert min(sizes.values()) >= 1

    def test_deterministic_by_seed(self):
        config = TemperatureConfig().scaled(0.03)
        a = TemperatureDataset(config, seed=7).build()
        b = TemperatureDataset(config, seed=7).build()
        for t in range(5):
            a.step(t)
            b.step(t)
        np.testing.assert_allclose(a.current_values(), b.current_values())

    def test_steps_must_be_consecutive(self):
        config = TemperatureConfig().scaled(0.03)
        instance = TemperatureDataset(config, seed=0).build()
        instance.step(0)
        with pytest.raises(SimulationError):
            instance.step(2)

    def test_calibration_measured(self):
        """Measured rho and sigma land near the Table II targets."""
        config = TemperatureConfig().scaled(0.08)
        instance = TemperatureDataset(config, seed=1).build()
        rhos, sigmas = [], []
        previous = None
        for t in range(60):
            instance.step(t)
            current = instance.current_values()
            sigmas.append(current.std())
            if previous is not None:
                rhos.append(lag1_correlation(previous, current))
            previous = current
        assert np.mean(rhos) == pytest.approx(0.89, abs=0.05)
        assert np.mean(sigmas) == pytest.approx(8.0, abs=1.0)

    def test_aggregate_tracks_signal(self):
        """The oracle AVG stays near the shared smooth component."""
        config = TemperatureConfig().scaled(0.08)
        instance = TemperatureDataset(config, seed=2).build()
        for t in range(20):
            instance.step(t)
            gap = abs(instance.true_average() - instance.expected_average(t))
            # common jitter (sigma 2) + finite-sample mean of offsets
            assert gap < 8.0

    def test_updates_change_values(self, small_instance):
        # module-scoped instance: continue stepping from wherever it is
        next_step = small_instance._last_step + 1
        if next_step == 0:  # time 0 is the initial state, not an update
            small_instance.step(0)
            next_step = 1
        before = small_instance.current_values().copy()
        small_instance.step(next_step)
        after = small_instance.current_values()
        assert not np.allclose(before, after)
