"""Tests for the synthetic MEMORY workload."""

import numpy as np
import pytest

from repro.datasets.base import lag1_correlation
from repro.datasets.memory import MemoryConfig, MemoryDataset
from repro.errors import SimulationError


class TestConfig:
    def test_defaults_match_table2_counts(self):
        config = MemoryConfig()
        assert config.n_nodes == 820
        assert config.n_units == 1000

    def test_calibration_targets(self):
        config = MemoryConfig()
        assert config.expected_sigma == pytest.approx(10.0, abs=0.1)
        assert config.expected_rho == pytest.approx(0.68, abs=0.01)

    def test_scaled(self):
        scaled = MemoryConfig().scaled(0.1)
        assert scaled.n_nodes == 82
        assert scaled.expected_rho == MemoryConfig().expected_rho

    def test_validation(self):
        with pytest.raises(SimulationError):
            MemoryConfig(n_nodes=2)
        with pytest.raises(SimulationError):
            MemoryConfig(jump_prob=1.0)
        with pytest.raises(SimulationError):
            MemoryConfig(leave_probability=0.9)


class TestInstance:
    def _build(self, scale=0.1, seed=0, **overrides):
        import dataclasses

        config = MemoryConfig().scaled(scale)
        if overrides:
            config = dataclasses.replace(config, **overrides)
        return MemoryDataset(config, seed=seed).build()

    def test_world_shape(self):
        instance = self._build()
        assert len(instance.graph) == instance.config.n_nodes
        assert instance.database.n_tuples >= instance.config.n_units
        assert instance.graph.is_connected()

    def test_churn_happens(self):
        instance = self._build(leave_probability=0.05)
        for t in range(30):
            instance.step(t)
        assert instance.nodes_left > 0
        assert instance.nodes_joined > 0
        assert instance.tuples_lost_to_churn > 0

    def test_units_tracked_consistently(self):
        """Unit registry and relation stay in sync through churn."""
        instance = self._build(leave_probability=0.05)
        for t in range(30):
            instance.step(t)
            assert instance.n_units_live() == instance.database.n_tuples
            for state in instance._units.values():
                assert state.tuple_id in instance.database

    def test_protected_origin_survives(self):
        instance = self._build(leave_probability=0.1)
        origin = instance.graph.nodes()[0]
        instance.churn.protect(origin)
        for t in range(30):
            instance.step(t)
        assert origin in instance.graph

    def test_values_non_negative(self):
        instance = self._build()
        for t in range(20):
            instance.step(t)
        assert (instance.current_values() >= 0).all()

    def test_calibration_measured(self):
        """rho/sigma near Table II targets (no churn, to keep pairs matched)."""
        instance = self._build(scale=0.3, leave_probability=0.0)
        rhos, sigmas = [], []
        previous = None
        for t in range(50):
            instance.step(t)
            current = instance.current_values()
            sigmas.append(current.std())
            if previous is not None and previous.size == current.size:
                rhos.append(lag1_correlation(previous, current))
            previous = current
        assert np.mean(rhos) == pytest.approx(0.68, abs=0.08)
        assert np.mean(sigmas) == pytest.approx(10.0, abs=1.5)

    def test_deterministic_by_seed(self):
        a = self._build(seed=3)
        b = self._build(seed=3)
        for t in range(10):
            a.step(t)
            b.step(t)
        np.testing.assert_allclose(a.current_values(), b.current_values())
        assert a.graph.nodes() == b.graph.nodes()

    def test_lower_correlation_than_temperature(self):
        """The MEMORY process is less correlated than TEMPERATURE (0.68 < 0.89)."""
        memory = MemoryConfig()
        from repro.datasets.temperature import TemperatureConfig

        assert memory.expected_rho < TemperatureConfig().expected_rho
