"""Seed robustness: the headline shapes hold across random seeds.

The reproduction's claims are about *shapes*, so they must not hinge on a
lucky seed. A tiny-scale sweep across seeds checks the two headline
orderings.
"""

import pytest

from repro.experiments import fig4b, fig5a


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_rpt_beats_indep_across_seeds(seed):
    result = fig4b.run(
        dataset="temperature",
        scale=0.05,
        seed=seed,
        epsilon_ratios=(0.15, 0.25),
    )
    assert result.improvement_factor > 1.1
    for indep, rpt in zip(result.samples_indep, result.samples_rpt):
        assert rpt <= indep * 1.05


@pytest.mark.parametrize("seed", [1, 2])
def test_digest_beats_naive_across_seeds(seed):
    result = fig5a.run(dataset="temperature", scale=0.05, seed=seed)
    assert result.digest_vs_naive > 1.5
    assert result.totals["PRED3+RPT"] <= min(result.totals.values()) * 1.05
