"""DigestSession honesty under overlay partitions (PR 7 tentpole)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import ContinuousQuery, Precision, Query
from repro.core.session import DigestSession, EngineConfig
from repro.db.aggregates import AggregateOp, scale_factor
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.network.graph import OverlayGraph
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import mesh_topology
from repro.obs.analysis import verify_trace_consistency
from repro.obs.schema import EVENT_POOL_INVALIDATE, SPAN_SNAPSHOT_QUERY
from repro.obs.tracer import RecordingTracer

START, DURATION, HORIZON = 4, 8, 24


def _world(n=25, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        database.insert(node, {"v": float(rng.normal(5.0, 1.0))})
    return graph, database


def _partitioned_session(seed=0, ops=(AggregateOp.AVG,), tracer=None):
    graph, database = _world(seed=seed)
    plan = PartitionPlan(
        PartitionSchedule(
            episodes=(PartitionEpisode(start=START, duration=DURATION),)
        ),
        rng=seed + 3,
        tracer=tracer,
    )
    session = DigestSession(
        graph,
        database,
        origin=0,
        rng=np.random.default_rng(seed + 2),
        tracer=tracer,
        partitions=plan,
    )
    n = len(graph)
    for op in ops:
        epsilon = 0.5 if op is AggregateOp.AVG else 0.5 * n
        session.add_query(
            ContinuousQuery(
                Query(op, Expression("v")),
                Precision(delta=epsilon, epsilon=epsilon, confidence=0.95),
                duration=HORIZON,
            ),
            config=EngineConfig(
                scheduler="all", evaluator="independent", period=1
            ),
        )
    return graph, database, plan, session


def _drive(graph, plan, session):
    """Step plan+session over the horizon; returns [(time, qid, estimate)]."""
    out = []
    for time in range(HORIZON):
        plan.step(time, graph)
        for qid, estimate in session.step(time).items():
            out.append((time, qid, estimate))
    return out


class TestHonestyDuringPartition:
    def test_partitioned_estimates_are_flagged_and_rescoped(self):
        graph, database, plan, session = _partitioned_session()
        results = _drive(graph, plan, session)
        partitioned = [
            (time, est)
            for time, _qid, est in results
            if START <= time < START + DURATION
        ]
        assert partitioned
        for _time, est in partitioned:
            assert est.degraded
            assert 0.0 < est.reachable_fraction < 1.0
            assert est.achieved_epsilon is not None
            assert est.achieved_confidence is not None
            # population re-scoped to the reachable side (one tuple/node)
            assert est.population_size < len(graph)

    def test_population_matches_reachable_content(self):
        graph, database, plan, session = _partitioned_session()
        for time in range(START + 1):
            plan.step(time, graph)
            executed = session.step(time)
        scope = plan.reachable(graph, 0)
        sizes = database.content_sizes()
        expected = sum(sizes[node] for node in scope)
        (estimate,) = executed.values()
        assert estimate.population_size == expected
        assert estimate.reachable_fraction == pytest.approx(
            len(scope) / len(graph)
        )

    def test_sum_aggregate_scaled_to_reachable_population(self):
        graph, database, plan, session = _partitioned_session(
            ops=(AggregateOp.SUM,)
        )
        results = _drive(graph, plan, session)
        for time, _qid, est in results:
            if START <= time < START + DURATION:
                scale = scale_factor(AggregateOp.SUM, est.population_size)
                assert est.aggregate == pytest.approx(est.mean * scale)

    def test_clean_estimates_stay_undegraded(self):
        graph, database, plan, session = _partitioned_session()
        results = _drive(graph, plan, session)
        for time, _qid, est in results:
            if time < START or time >= START + DURATION:
                assert not est.degraded
                # exact sentinel: the clean path reports literal 1.0
                assert est.reachable_fraction == 1.0  # dgl: disable=DGL004


class TestRecovery:
    def test_estimates_recover_right_after_heal(self):
        graph, database, plan, session = _partitioned_session()
        results = _drive(graph, plan, session)
        post_heal = [
            est for time, _qid, est in results if time >= START + DURATION
        ]
        assert post_heal
        assert not post_heal[0].degraded  # first post-heal occasion

    def test_pool_invalidated_on_cut_and_heal(self):
        tracer = RecordingTracer()
        graph, database, plan, session = _partitioned_session(tracer=tracer)
        _drive(graph, plan, session)
        invalidations = [
            event
            for event in tracer.trace().events
            if event.name == EVENT_POOL_INVALIDATE
        ]
        assert [event.attrs["reason"] for event in invalidations] == [
            "cut",
            "heal",
        ]
        assert invalidations[0].time == START
        assert invalidations[1].time == START + DURATION


class TestTracing:
    def test_reachable_fraction_only_on_partitioned_spans(self):
        tracer = RecordingTracer()
        graph, database, plan, session = _partitioned_session(tracer=tracer)
        _drive(graph, plan, session)
        for span in tracer.trace().spans:
            if span.name != SPAN_SNAPSHOT_QUERY:
                continue
            partitioned = START <= span.start < START + DURATION
            assert ("reachable_fraction" in span.attrs) == partitioned
            if partitioned:
                assert span.attrs["reachable_fraction"] < 1.0

    def test_trace_verifies_exactly_on_partitioned_multi_query_run(self):
        tracer = RecordingTracer()
        graph, database, plan, session = _partitioned_session(
            ops=(AggregateOp.AVG, AggregateOp.SUM), tracer=tracer
        )
        results = _drive(graph, plan, session)
        assert {qid for _t, qid, _e in results} == {"q0", "q1"}
        assert verify_trace_consistency(tracer.trace(), session.metrics) == []


class TestNoPlanUnchanged:
    def test_sessions_without_plan_report_full_reach(self):
        graph, database = _world()
        session = DigestSession(
            graph, database, origin=0, rng=np.random.default_rng(2)
        )
        session.add_query(
            ContinuousQuery(
                Query(AggregateOp.AVG, Expression("v")),
                Precision(delta=0.5, epsilon=0.5, confidence=0.95),
                duration=4,
            ),
            config=EngineConfig(
                scheduler="all", evaluator="independent", period=1
            ),
        )
        for time in range(4):
            for estimate in session.step(time).values():
                # exact sentinel: the clean path reports literal 1.0
                assert estimate.reachable_fraction == 1.0  # dgl: disable=DGL004
                assert not estimate.degraded
