"""Tests for Taylor-polynomial extrapolation (Section IV-A)."""

import math

import numpy as np
import pytest

from repro.core.extrapolation import (
    TaylorExtrapolator,
    lagrange_remainder_bound,
)
from repro.errors import QueryError


def _history(function, n, start=0):
    return [(start + t, function(start + t)) for t in range(n)]


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(QueryError):
            TaylorExtrapolator(n_points=1)
        with pytest.raises(QueryError):
            TaylorExtrapolator(max_horizon=0)
        with pytest.raises(QueryError):
            TaylorExtrapolator(safety_factor=-1)
        with pytest.raises(QueryError):
            TaylorExtrapolator(n_points=3, remainder_window=3)

    def test_required_history(self):
        assert TaylorExtrapolator(n_points=3).required_history == 6
        assert (
            TaylorExtrapolator(n_points=3, remainder_window=4).required_history == 4
        )


class TestPrediction:
    def test_linear_growth_exact(self):
        """X = 2t: drift exceeds delta=5 after 3 steps (ceil(5/2))."""
        extrapolator = TaylorExtrapolator(n_points=2, remainder_window=3)
        history = _history(lambda t: 2.0 * t, 3)
        result = extrapolator.predict_next_update(history, delta=5.0)
        assert result.next_time == history[-1][0] + 3
        assert not result.capped
        assert result.remainder_rate == pytest.approx(0.0, abs=1e-9)

    def test_constant_history_capped(self):
        extrapolator = TaylorExtrapolator(n_points=3, max_horizon=10)
        history = _history(lambda t: 42.0, 6)
        result = extrapolator.predict_next_update(history, delta=1.0)
        assert result.capped
        assert result.next_time == history[-1][0] + 10

    def test_quadratic_exact(self):
        """X = t^2 with degree-2 fit: drift from t_u grows as offsets."""
        extrapolator = TaylorExtrapolator(n_points=3, remainder_window=4)
        history = _history(lambda t: float(t * t), 4)
        t_u = history[-1][0]
        result = extrapolator.predict_next_update(history, delta=20.0)
        # drift = (t_u + k)^2 - t_u^2 = k^2 + 2*k*t_u = k^2 + 6k > 20 -> k=3
        assert result.next_time == t_u + 3

    def test_faster_change_means_earlier_update(self):
        extrapolator = TaylorExtrapolator(n_points=2, remainder_window=3)
        slow = extrapolator.predict_next_update(
            _history(lambda t: 0.5 * t, 3), delta=5.0
        )
        fast = extrapolator.predict_next_update(
            _history(lambda t: 5.0 * t, 3), delta=5.0
        )
        assert fast.next_time < slow.next_time

    def test_remainder_makes_prediction_conservative(self):
        """A noisy cubic term shortens the predicted interval."""
        smooth = TaylorExtrapolator(n_points=2, remainder_window=3)
        linear = _history(lambda t: 2.0 * t, 3)
        wiggly = [(t, x + (3.0 if t % 2 else -3.0)) for t, x in linear]
        prediction_linear = smooth.predict_next_update(linear, delta=10.0)
        prediction_wiggly = smooth.predict_next_update(wiggly, delta=10.0)
        assert prediction_wiggly.next_time <= prediction_linear.next_time

    def test_safety_factor_more_conservative(self):
        history = [(0, 0.0), (1, 1.9), (2, 4.1), (3, 6.0), (4, 8.1), (5, 9.9)]
        plain = TaylorExtrapolator(n_points=3, safety_factor=1.0)
        careful = TaylorExtrapolator(n_points=3, safety_factor=10.0)
        assert (
            careful.predict_next_update(history, 30.0).next_time
            <= plain.predict_next_update(history, 30.0).next_time
        )

    def test_irregular_spacing_supported(self):
        """Update times are not equally spaced (that is the whole point)."""
        extrapolator = TaylorExtrapolator(n_points=2, remainder_window=3)
        history = [(0, 0.0), (3, 6.0), (7, 14.0)]  # still X = 2t
        result = extrapolator.predict_next_update(history, delta=5.0)
        assert result.next_time == 10  # 7 + ceil(5/2)


class TestValidation:
    def test_insufficient_history(self):
        extrapolator = TaylorExtrapolator(n_points=3)
        with pytest.raises(QueryError, match="history points"):
            extrapolator.predict_next_update([(0, 1.0)], delta=1.0)

    def test_negative_delta(self):
        extrapolator = TaylorExtrapolator(n_points=2, remainder_window=3)
        with pytest.raises(QueryError):
            extrapolator.predict_next_update(_history(float, 3), delta=-1.0)

    def test_non_increasing_times(self):
        extrapolator = TaylorExtrapolator(n_points=2, remainder_window=3)
        with pytest.raises(QueryError):
            extrapolator.predict_next_update(
                [(0, 1.0), (0, 2.0), (1, 3.0)], delta=1.0
            )


class TestLagrangeBound:
    def test_formula(self):
        # M=6, degree=2, offset=2: 6 * 8 / 6 = 8
        assert lagrange_remainder_bound(6.0, 2, 2.0) == pytest.approx(8.0)

    def test_taylor_error_within_bound(self):
        """sin truncated at degree 3 stays within the Lagrange bound."""
        x = 0.8
        taylor = x - x**3 / 6.0
        bound = lagrange_remainder_bound(1.0, 3, x)  # |sin^{(4)}| <= 1
        assert abs(math.sin(x) - taylor) <= bound

    def test_rejects_negative_degree(self):
        with pytest.raises(QueryError):
            lagrange_remainder_bound(1.0, -1, 1.0)
