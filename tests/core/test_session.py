"""Tests for the multi-query Digest session (pool + coalesced batches)."""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.core.session import DigestSession, QuerySet
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.obs.analysis import (
    shared_walk_attribution,
    verify_trace_consistency,
)
from repro.obs.tracer import RecordingTracer
from repro.sim.engine import SimulationEngine


def _world(seed=0, n_nodes=36):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("mem", "cpu")), graph.nodes())
    for node in graph.nodes():
        for _ in range(5):
            database.insert(
                node,
                {"mem": float(rng.normal(50, 8)), "cpu": float(rng.uniform(0, 4))},
            )
    return graph, database


def _query(text="SELECT AVG(mem) FROM R", delta=4.0, epsilon=2.0, duration=10):
    return ContinuousQuery(
        parse_query(text), Precision(delta, epsilon, 0.95), duration=duration
    )


_ALL_INDEP = EngineConfig(scheduler="all", evaluator="independent")


class TestRegistration:
    def test_auto_ids_and_lookup(self):
        graph, database = _world()
        session = DigestSession(graph, database, 0, np.random.default_rng(1))
        assert session.add_query(_query(), _ALL_INDEP) == "q0"
        assert session.add_query(_query(), _ALL_INDEP) == "q1"
        assert session.query_ids() == ["q0", "q1"]
        assert session.runtime("q0").continuous_query.precision.epsilon == 2.0
        with pytest.raises(QueryError):
            session.runtime("nope")

    def test_duplicate_and_comma_ids_rejected(self):
        graph, database = _world()
        session = DigestSession(graph, database, 0, np.random.default_rng(1))
        session.add_query(_query(), query_id="load")
        with pytest.raises(QueryError):
            session.add_query(_query(), query_id="load")
        with pytest.raises(QueryError):
            session.add_query(_query(), query_id="a,b")

    def test_unknown_origin_rejected(self):
        graph, database = _world()
        with pytest.raises(QueryError):
            DigestSession(graph, database, 10**6, np.random.default_rng(0))

    def test_query_set_registration(self):
        queries = QuerySet()
        assert queries.add(_query()) == "q0"
        assert queries.add(_query(), query_id="sum") == "sum"
        with pytest.raises(QueryError):
            queries.add(_query(), query_id="sum")
        assert len(queries) == 2

        graph, database = _world()
        session = DigestSession(graph, database, 0, np.random.default_rng(1))
        assert session.add_query_set(queries) == ["q0", "sum"]
        assert session.query_ids() == ["q0", "sum"]


class TestSharedSampling:
    def test_coalesced_session_is_cheaper_than_solo_engines(self):
        """Co-resident overlapping queries share walks: >=30% fewer messages."""
        epsilons = (1.5, 2.0, 2.5, 3.0)

        graph, database = _world(seed=2)
        session = DigestSession(graph, database, 0, np.random.default_rng(3))
        for eps in epsilons:
            session.add_query(_query(epsilon=eps, duration=5), _ALL_INDEP)
        for t in range(5):
            session.step(t)
        shared_cost = session.ledger.total
        assert session.batches_coalesced > 0
        assert session.pool.pool_hits > 0

        solo_cost = 0
        for i, eps in enumerate(epsilons):
            graph, database = _world(seed=2)
            engine = DigestEngine(
                graph,
                database,
                _query(epsilon=eps, duration=5),
                0,
                np.random.default_rng(100 + i),
                config=_ALL_INDEP,
            )
            for t in range(5):
                engine.step(t)
            solo_cost += engine.ledger.total

        assert shared_cost < 0.7 * solo_cost

    def test_every_query_stays_accurate(self):
        graph, database = _world(seed=5)
        session = DigestSession(graph, database, 0, np.random.default_rng(6))
        for eps in (1.5, 2.0, 2.5):
            session.add_query(_query(epsilon=eps, duration=6), _ALL_INDEP)
        truth = float(database.exact_values(Expression("mem")).mean())
        for t in range(6):
            executed = session.step(t)
            assert len(executed) == 3
            for estimate in executed.values():
                assert abs(estimate.aggregate - truth) < 4.0

    def test_mixed_aggregates_share_the_pool(self):
        """Uniform tuple samples are query-agnostic: AVG and SUM share."""
        graph, database = _world(seed=7)
        session = DigestSession(graph, database, 0, np.random.default_rng(8))
        session.add_query(_query(duration=3), _ALL_INDEP)
        session.add_query(
            _query("SELECT SUM(mem) FROM R", epsilon=400.0, duration=3),
            _ALL_INDEP,
        )
        for t in range(3):
            session.step(t)
        assert session.pool.pool_hits > 0

    def test_single_query_session_never_coalesces(self):
        graph, database = _world(seed=2)
        session = DigestSession(graph, database, 0, np.random.default_rng(3))
        session.add_query(_query(duration=5), _ALL_INDEP)
        for t in range(5):
            session.step(t)
        assert session.batches_coalesced == 0

    def test_notifications_are_per_query(self):
        graph, database = _world(seed=9)
        session = DigestSession(graph, database, 0, np.random.default_rng(10))
        qid = session.add_query(_query(duration=3), _ALL_INDEP)
        session.add_query(_query(duration=3), _ALL_INDEP)
        fired = []
        session.subscribe(qid, fired.append)
        session.step(0)
        assert len(fired) == 1
        assert fired[0].time == 0


class TestPerQueryMetrics:
    def test_snapshot_counts_are_scoped(self):
        graph, database = _world(seed=2)
        session = DigestSession(graph, database, 0, np.random.default_rng(3))
        q_all = session.add_query(_query(duration=20), _ALL_INDEP)
        q_pred = session.add_query(
            _query(duration=20, delta=8.0),
            EngineConfig(scheduler="pred", evaluator="independent"),
        )
        for t in range(20):
            session.step(t)
        all_runs = session.runtime(q_all).metrics.snapshot_queries
        pred_runs = session.runtime(q_pred).metrics.snapshot_queries
        assert all_runs == 20
        assert pred_runs < 20
        assert session.metrics.snapshot_queries == all_runs + pred_runs

    def test_pool_counters_decompose_across_queries(self):
        graph, database = _world(seed=2)
        session = DigestSession(graph, database, 0, np.random.default_rng(3))
        qids = [
            session.add_query(_query(epsilon=eps, duration=4), _ALL_INDEP)
            for eps in (1.5, 2.0, 2.5)
        ]
        for t in range(4):
            session.step(t)
        per_query_hits = sum(
            session.runtime(qid).metrics.pool_hits for qid in qids
        )
        per_query_misses = sum(
            session.runtime(qid).metrics.pool_misses for qid in qids
        )
        assert per_query_hits == session.metrics.pool_hits
        assert per_query_misses == session.metrics.pool_misses
        assert session.metrics.pool_hits == session.pool.pool_hits
        assert session.metrics.pool_misses == session.pool.pool_misses


class TestTraceAttribution:
    def _faulted_traced_run(self):
        graph, database = _world(seed=4)
        tracer = RecordingTracer(meta={"experiment": "multi-query-faults"})
        faults = FaultPlan(
            FaultConfig(message_loss=0.01), np.random.default_rng(99)
        )
        session = DigestSession(
            graph,
            database,
            0,
            np.random.default_rng(5),
            faults=faults,
            tracer=tracer,
        )
        qids = [
            session.add_query(_query(epsilon=eps, duration=4), _ALL_INDEP)
            for eps in (1.5, 2.5)
        ]
        for t in range(4):
            session.step(t)
        return session, tracer, qids

    def test_trace_accounts_for_faulted_multi_query_run(self):
        """The ISSUE acceptance gate: trace == live, exactly, under faults."""
        session, tracer, _ = self._faulted_traced_run()
        assert verify_trace_consistency(tracer.trace(), session.metrics) == []

    def test_shared_batches_attribute_every_consumer(self):
        session, tracer, qids = self._faulted_traced_run()
        trace = tracer.trace()
        batches = [s for s in trace.spans if s.name == "shared_walk_batch"]
        assert batches
        for span in batches:
            consumers = str(span.attrs["consumers"]).split(",")
            assert set(consumers) == set(qids)
        attribution = shared_walk_attribution(trace)
        for qid in qids:
            assert attribution[qid]["shared_batches"] == len(batches)
            assert attribution[qid]["pool_hits"] > 0


class TestSimulationAttachment:
    def test_attach_steps_all_queries(self):
        graph, database = _world()
        session = DigestSession(graph, database, 0, np.random.default_rng(1))
        qid = session.add_query(_query(duration=5), _ALL_INDEP)
        late = session.add_query(
            ContinuousQuery(
                parse_query("SELECT AVG(mem) FROM R"),
                Precision(4.0, 2.0, 0.95),
                start_time=2,
                duration=3,
            ),
            _ALL_INDEP,
        )
        simulation = SimulationEngine()
        session.attach(simulation)
        simulation.run_until(10)
        assert session.runtime(qid).metrics.snapshot_queries == 5
        assert session.runtime(late).metrics.snapshot_queries == 3


class TestSingleQueryEquivalence:
    def test_session_matches_engine_estimates(self):
        """One query through the session == the historical engine, exactly."""
        graph, database = _world(seed=2)
        engine = DigestEngine(
            graph,
            database,
            _query(duration=5),
            0,
            np.random.default_rng(3),
            config=_ALL_INDEP,
        )
        engine_estimates = [engine.step(t).aggregate for t in range(5)]

        graph, database = _world(seed=2)
        session = DigestSession(graph, database, 0, np.random.default_rng(3))
        qid = session.add_query(_query(duration=5), _ALL_INDEP)
        session_estimates = [session.step(t)[qid].aggregate for t in range(5)]

        assert session_estimates == engine_estimates
