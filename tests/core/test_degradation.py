"""Graceful degradation of the evaluators under the failure model.

When the sampling operator loses walks, the evaluators must not raise:
they return the estimate computed from whatever came back, flagged
``degraded=True`` with the honest ``(epsilon, p)`` restatement (Eq. 5
re-solved for the achieved sample size).
"""

import numpy as np
import pytest

from repro.core.estimators import achieved_confidence, achieved_epsilon
from repro.core.independent import IndependentEvaluator
from repro.core.query import Query
from repro.core.repeated import RepeatedEvaluator
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator


def _world(n_nodes=36, per_node=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(per_node):
            database.insert(node, {"v": float(rng.normal(50.0, 10.0))})
    return graph, database


def _lossy_operator(graph, loss=0.05, seed=1):
    # losses act at walk granularity through the plan's survival draw
    plan = FaultPlan(FaultConfig(message_loss=loss), rng=seed + 50)
    operator = SamplingOperator(
        graph,
        np.random.default_rng(seed),
        config=SamplerConfig(walk_length=20),
        faults=plan,
    )
    return operator, plan


class TestEstimatorHelpers:
    def test_achieved_confidence_inverts_eq5(self):
        # at the exact variance target the achieved confidence is the promise
        from repro.core.estimators import variance_target

        target = variance_target(0.5, 0.95)
        assert achieved_confidence(0.5, target) == pytest.approx(0.95)
        # less variance -> more confidence; more variance -> less
        assert achieved_confidence(0.5, target / 4) > 0.95
        assert achieved_confidence(0.5, target * 4) < 0.95
        assert achieved_confidence(0.5, 0.0) == 1.0

    def test_achieved_confidence_validation(self):
        with pytest.raises(QueryError):
            achieved_confidence(0.0, 1.0)
        with pytest.raises(QueryError):
            achieved_confidence(0.5, -1.0)

    def test_achieved_epsilon_matches_half_width(self):
        assert achieved_epsilon(0.04, 0.95) == pytest.approx(1.96 * 0.2, abs=1e-3)


class TestOperatorPartialMode:
    def test_lossy_operator_returns_partial_sample(self):
        graph, database = _world()
        operator, plan = _lossy_operator(graph, loss=0.08)
        samples = operator.sample_tuples(
            database, 60, 0, max_retries=1, allow_partial=True
        )
        assert 0 < len(samples) < 60
        assert plan.log.count("walk_lost") > 0
        assert plan.log.count("sample_shortfall") == 1

    def test_default_mode_still_raises(self):
        from repro.errors import SamplingError

        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.2)
        with pytest.raises(SamplingError, match="failed to draw"):
            operator.sample_tuples(database, 60, 0, max_retries=1)

    def test_pool_nodes_property_is_a_copy(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.0)
        operator.sample_tuples(database, 10, 0)
        pool = operator.pool_nodes
        assert pool == operator.pool_nodes
        pool.clear()
        assert operator.pool_nodes  # internal state untouched

    def test_pool_keeps_positions_of_lost_returns(self):
        """A lost return message does not kill the agent: continued walks
        resume from all final positions, delivered or not."""
        graph, _ = _world()
        operator, _ = _lossy_operator(graph, loss=0.10)
        from repro.sampling.weights import uniform_weights

        delivered = operator.sample_nodes(uniform_weights(), 40, 0)
        assert len(operator.pool_nodes) == 40
        assert len(delivered) < 40


class TestIndependentDegradation:
    def test_degrades_instead_of_raising(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.10)
        evaluator = IndependentEvaluator(
            database,
            operator,
            0,
            Query(AggregateOp.AVG, Expression("v")),
        )
        estimate = evaluator.evaluate(0, epsilon=0.8, confidence=0.95)
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(estimate.mean - truth) < 10.0  # still a sane estimate
        if estimate.degraded:
            assert estimate.achieved_epsilon is not None
            assert estimate.achieved_confidence is not None
            assert 0.0 < estimate.achieved_confidence < 0.95
        else:
            assert estimate.achieved_epsilon is None
            assert estimate.achieved_confidence is None

    def test_fault_free_estimates_are_not_degraded(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.0)
        evaluator = IndependentEvaluator(
            database,
            operator,
            0,
            Query(AggregateOp.AVG, Expression("v")),
        )
        estimate = evaluator.evaluate(0, epsilon=1.0, confidence=0.95)
        assert not estimate.degraded
        assert estimate.achieved_epsilon is None
        assert estimate.achieved_confidence is None

    def test_sum_query_degrades_with_scaled_epsilon(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.12, seed=3)
        evaluator = IndependentEvaluator(
            database,
            operator,
            0,
            Query(AggregateOp.SUM, Expression("v")),
        )
        # tight epsilon so the shortfall actually bites
        estimate = evaluator.evaluate(
            0, epsilon=0.3 * database.n_tuples, confidence=0.95
        )
        if estimate.degraded:
            # achieved epsilon is reported in aggregate units
            assert estimate.achieved_epsilon > 0.3 * database.n_tuples


class TestRepeatedDegradation:
    def _evaluator(self, graph, database, operator, seed=2):
        return RepeatedEvaluator(
            database,
            operator,
            0,
            Query(AggregateOp.AVG, Expression("v")),
            np.random.default_rng(seed),
        )

    def test_bootstrap_degrades_instead_of_raising(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.10)
        evaluator = self._evaluator(graph, database, operator)
        estimate = evaluator.evaluate(0, epsilon=0.8, confidence=0.95)
        assert np.isfinite(estimate.mean)
        if estimate.degraded:
            assert estimate.achieved_confidence is not None

    def test_later_occasions_degrade_instead_of_raising(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.08)
        evaluator = self._evaluator(graph, database, operator)
        estimates = [
            evaluator.evaluate(t, epsilon=0.8, confidence=0.95)
            for t in range(4)
        ]
        assert all(np.isfinite(e.mean) for e in estimates)
        for e in estimates:
            if e.degraded:
                assert e.achieved_epsilon is not None
                assert e.achieved_epsilon > 0.0

    def test_fault_free_repeated_not_degraded(self):
        graph, database = _world()
        operator, _ = _lossy_operator(graph, loss=0.0)
        evaluator = self._evaluator(graph, database, operator)
        for t in range(3):
            estimate = evaluator.evaluate(t, epsilon=1.5, confidence=0.95)
            assert not estimate.degraded
