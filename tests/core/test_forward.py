"""Tests for forward regression (retrospective revision)."""

import numpy as np
import pytest

from repro.core.forward import RevisedEstimate, revise_previous
from repro.core.result import RunningResult, UpdateRecord
from repro.errors import QueryError
from repro.experiments import forward as forward_experiment


def _correlated_pairs(rng, g, rho, sigma=1.0):
    prev = rng.normal(0, sigma, g)
    curr = rho * prev + np.sqrt(1 - rho**2) * rng.normal(0, sigma, g)
    return prev, curr


class TestReviseP:
    def test_high_correlation_moves_estimate(self):
        rng = np.random.default_rng(0)
        prev, curr = _correlated_pairs(rng, 50, 0.95)
        revision = revise_previous(
            previous_estimate=0.1,
            previous_variance=0.01,
            matched_previous=prev,
            matched_current=curr,
            current_estimate=0.0,
            current_variance=0.005,
            sigma2=1.0,
        )
        assert revision.revised != revision.original
        assert revision.revised_variance < revision.original_variance
        assert 0.0 < revision.variance_reduction < 1.0

    def test_weak_correlation_gated_off(self):
        rng = np.random.default_rng(1)
        prev = rng.normal(0, 1, 50)
        curr = rng.normal(0, 1, 50)  # ~independent
        revision = revise_previous(0.1, 0.01, prev, curr, 0.0, 0.005, 1.0)
        assert revision.revised == revision.original
        assert revision.variance_reduction == 0.0

    def test_tiny_matched_set_unrevised(self):
        revision = revise_previous(
            0.1, 0.01, np.array([1.0, 2.0]), np.array([1.0, 2.0]), 0.0, 0.005, 1.0
        )
        assert revision.revised == revision.original

    def test_degenerate_current_unrevised(self):
        revision = revise_previous(
            0.1, 0.01, np.arange(5.0), np.ones(5), 0.0, 0.005, 1.0
        )
        assert revision.revised == revision.original

    def test_exact_previous_unrevised(self):
        rng = np.random.default_rng(2)
        prev, curr = _correlated_pairs(rng, 50, 0.95)
        revision = revise_previous(0.1, 0.0, prev, curr, 0.0, 0.005, 1.0)
        assert revision.revised == revision.original

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueryError):
            revise_previous(0.0, 0.1, np.zeros(3), np.zeros(4), 0.0, 0.1, 1.0)

    def test_negative_variance_rejected(self):
        with pytest.raises(QueryError):
            revise_previous(0.0, -0.1, np.zeros(5), np.zeros(5), 0.0, 0.1, 1.0)

    def test_monte_carlo_never_hurts_and_helps_at_high_rho(self):
        low = forward_experiment.simulate(rho=0.5, trials=800, seed=3)
        high = forward_experiment.simulate(rho=0.95, trials=800, seed=3)
        assert low.improvement >= 0.98  # gate keeps it ~neutral
        assert high.improvement > 1.1


class TestResultAmend:
    def test_amend_preserves_original(self):
        result = RunningResult()
        result.update(UpdateRecord(time=1, estimate=10.0))
        result.update(UpdateRecord(time=3, estimate=20.0))
        result.amend(1, 11.5)
        record = result.updates[0]
        assert record.estimate == 11.5
        assert record.original_estimate == 10.0
        assert record.was_revised
        assert result.value_at(2) == 11.5  # hold serves the revised value

    def test_amend_twice_keeps_first_original(self):
        result = RunningResult()
        result.update(UpdateRecord(time=1, estimate=10.0))
        result.amend(1, 11.0)
        result.amend(1, 12.0)
        assert result.updates[0].original_estimate == 10.0
        assert result.updates[0].estimate == 12.0

    def test_amend_unknown_time_rejected(self):
        result = RunningResult()
        result.update(UpdateRecord(time=1, estimate=10.0))
        with pytest.raises(QueryError):
            result.amend(2, 5.0)


class TestEngineIntegration:
    def test_forward_revision_amends_history(self):
        from repro.core.engine import DigestEngine, EngineConfig
        from repro.core.query import ContinuousQuery, Precision, parse_query
        from repro.db.relation import P2PDatabase, Schema
        from repro.network.graph import OverlayGraph
        from repro.network.topology import mesh_topology

        rng = np.random.default_rng(0)
        graph = OverlayGraph(mesh_topology(36), n_nodes=36)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        tids = []
        for node in graph.nodes():
            for _ in range(6):
                tids.append(database.insert(node, {"v": float(rng.normal(50, 10))}))
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(v) FROM R"),
            Precision(delta=4.0, epsilon=1.0, confidence=0.95),
            duration=6,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(
                scheduler="all", evaluator="repeated", forward_revision=True
            ),
        )
        walk = np.random.default_rng(2)
        for t in range(6):
            for tid in tids:  # highly correlated evolution
                current = database.read(tid)["v"]
                database.update(tid, {"v": 0.98 * current + 1.0 + walk.normal(0, 0.5)})
            engine.step(t)
        revised = [r for r in engine.result.updates if r.was_revised]
        assert revised  # at least one retrospective amendment happened
