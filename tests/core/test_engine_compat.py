"""Seed-for-seed backward compatibility of the single-query DigestEngine.

The multi-query session refactor (QuerySet/DigestSession + SamplePool)
turned :class:`~repro.core.engine.DigestEngine` into a facade, but its
contract is unchanged: a single-query engine constructed with the
historical signature must reproduce the *exact* estimate sequence the
pre-refactor implementation produced for the same seeds. The sequences
below were captured from the pre-session implementation (PR 3 tree) and
pin every RNG-visible quantity: estimate values to full float precision,
sample counts, the retained/fresh split, and the total message cost.

If an intentional change to the sampling path ever invalidates these
numbers, regenerate them from a tree where the change is the *only*
difference — never adjust them to make a refactor pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import Precision
from repro.experiments.harness import build_instance, canonical_query, pick_origin

# (time, aggregate, n_total, n_fresh, n_retained) per executed snapshot,
# then the exact end-of-run ledger total.
PINNED: dict[tuple[str, str], tuple[list[tuple[int, float, int, int, int]], int]] = {
    ("all", "independent"): (
        [
            (0, 59.85762873152588, 66, 66, 0),
            (1, 57.079478529458385, 44, 44, 0),
            (2, 59.09101203991841, 38, 38, 0),
            (3, 61.2770508972398, 39, 39, 0),
            (4, 60.978443892112246, 82, 82, 0),
            (5, 59.71299828802033, 54, 54, 0),
            (6, 58.70292489523112, 47, 47, 0),
            (7, 59.73017005842847, 30, 30, 0),
            (8, 61.34978784843177, 80, 80, 0),
            (9, 60.22612212918386, 51, 51, 0),
        ],
        9066,
    ),
    ("pred", "repeated"): (
        [
            (0, 59.85762873152588, 66, 66, 0),
            (1, 57.76111063073685, 57, 29, 28),
            (2, 60.44417649098282, 42, 15, 27),
            (3, 61.015387485691384, 45, 20, 25),
            (4, 60.11768251463264, 31, 10, 21),
            (5, 58.6073248518972, 35, 17, 18),
            (8, 61.159213081111815, 30, 15, 15),
        ],
        2722,
    ),
}


def _run(scheduler: str, evaluator: str):
    instance = build_instance("temperature", 0.05, seed=7)
    sigma = instance.config.expected_sigma
    precision = Precision(delta=sigma, epsilon=0.25 * sigma, confidence=0.95)
    origin = pick_origin(instance, 7)
    engine = DigestEngine(
        instance.graph,
        instance.database,
        canonical_query(instance, precision, duration=10),
        origin=origin,
        rng=np.random.default_rng(11),
        config=EngineConfig(scheduler=scheduler, evaluator=evaluator),
    )
    rows = []
    for t in range(10):
        instance.step(t)
        estimate = engine.step(t)
        if estimate is not None:
            rows.append(
                (
                    t,
                    estimate.aggregate,
                    estimate.n_total,
                    estimate.n_fresh,
                    estimate.n_retained,
                )
            )
    return rows, engine


@pytest.mark.parametrize("scheduler,evaluator", sorted(PINNED))
def test_single_query_engine_is_seed_identical(scheduler, evaluator):
    expected_rows, expected_messages = PINNED[(scheduler, evaluator)]
    rows, engine = _run(scheduler, evaluator)
    assert [r[0] for r in rows] == [r[0] for r in expected_rows]
    for got, want in zip(rows, expected_rows):
        assert got[0] == want[0]
        assert got[1] == pytest.approx(want[1], rel=0, abs=0), (
            f"t={got[0]}: estimate {got[1]!r} != pinned {want[1]!r}"
        )
        assert got[2:] == want[2:]
    assert engine.ledger.total == expected_messages


def test_engine_public_surface_unchanged():
    """The facade keeps the attributes the historical engine exposed."""
    rows, engine = _run("all", "independent")
    # the properties and mutable state callers relied on
    assert engine.config.scheduler == "all"
    assert engine.continuous_query.precision.confidence == 0.95
    assert engine.next_due >= 10
    assert len(engine.result) == len(rows)
    assert engine.current_estimate(9) == rows[-1][1]
    assert engine.metrics.snapshot_queries == len(rows)
    assert engine.metrics.samples_total == sum(r[2] for r in rows)
    assert engine.metrics.has_series("estimate")
    assert len(engine.metrics.series("estimate")) == len(rows)
    # operator remains reachable for callers that inspected walk state
    assert engine.operator.samples_drawn > 0
