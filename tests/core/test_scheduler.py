"""Tests for the continual-querying schedulers."""

import pytest

from repro.core.scheduler import ContinuousScheduler, ExtrapolationScheduler
from repro.errors import QueryError


class TestContinuous:
    def test_every_step(self):
        scheduler = ContinuousScheduler()
        assert scheduler.next_time([], now=5) == 6

    def test_custom_period(self):
        scheduler = ContinuousScheduler(period=4)
        assert scheduler.next_time([], now=5) == 9

    def test_rejects_zero_period(self):
        with pytest.raises(QueryError):
            ContinuousScheduler(period=0)


class TestExtrapolation:
    def test_bootstraps_continuously(self):
        scheduler = ExtrapolationScheduler(delta=5.0, n_points=3)
        history = [(0, 1.0), (1, 1.1)]
        assert scheduler.next_time(history, now=1) == 2
        assert scheduler.bootstrap_steps == 1
        assert scheduler.predictions_made == 0

    def test_predicts_after_bootstrap(self):
        scheduler = ExtrapolationScheduler(delta=50.0, n_points=2)
        # slow linear growth: big skips expected
        history = [(t, 0.5 * t) for t in range(4)]
        next_time = scheduler.next_time(history, now=3)
        assert next_time > 4
        assert scheduler.predictions_made == 1

    def test_never_schedules_at_or_before_now(self):
        scheduler = ExtrapolationScheduler(delta=0.001, n_points=2)
        # rapidly changing: prediction would be immediate, clamp to now+1
        history = [(t, 100.0 * t) for t in range(4)]
        assert scheduler.next_time(history, now=3) == 4

    def test_delta_zero_is_continuous(self):
        scheduler = ExtrapolationScheduler(delta=0.0, n_points=2)
        history = [(t, float(t)) for t in range(6)]
        assert scheduler.next_time(history, now=5) == 6

    def test_rejects_negative_delta(self):
        with pytest.raises(QueryError):
            ExtrapolationScheduler(delta=-1.0)

    def test_rejects_zero_period(self):
        with pytest.raises(QueryError):
            ExtrapolationScheduler(delta=1.0, period=0)

    def test_more_resolution_skips_more(self):
        history = [(t, 1.0 * t) for t in range(6)]
        fine = ExtrapolationScheduler(delta=2.0, n_points=2)
        coarse = ExtrapolationScheduler(delta=20.0, n_points=2)
        assert coarse.next_time(history, now=5) >= fine.next_time(history, now=5)
