"""Tests for walk-demand coalescing and the batched protocol runs."""

import numpy as np
import pytest

from repro.core.scheduler import WalkBatchPlan, WalkDemand, coalesce_demands
from repro.errors import QueryError
from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology
from repro.obs.tracer import RecordingTracer
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import SimulationEngine


class TestCoalesce:
    def test_batch_is_max_not_sum(self):
        plan = coalesce_demands(
            [WalkDemand("q0", 30), WalkDemand("q1", 50), WalkDemand("q2", 20)]
        )
        assert plan.n_walks == 50
        assert plan.total_demand == 100
        assert plan.walks_saved == 50

    def test_consumers_per_walk(self):
        plan = coalesce_demands([WalkDemand("b", 2), WalkDemand("a", 4)])
        assert plan.consumers == ("a", "b")  # sorted for determinism
        assert plan.consumers_of(0) == ("a", "b")
        assert plan.consumers_of(1) == ("a", "b")
        assert plan.consumers_of(2) == ("a",)
        assert plan.consumers_of(3) == ("a",)
        with pytest.raises(QueryError):
            plan.consumers_of(4)
        with pytest.raises(QueryError):
            plan.consumers_of(-1)

    def test_zero_demands_dropped(self):
        plan = coalesce_demands([WalkDemand("a", 0), WalkDemand("b", 3)])
        assert plan.consumers == ("b",)
        assert plan.share_of("a") == 0
        assert plan.share_of("b") == 3

    def test_empty_plan(self):
        plan = coalesce_demands([])
        assert plan.n_walks == 0
        assert plan.walks_saved == 0

    def test_duplicate_query_rejected(self):
        with pytest.raises(QueryError):
            coalesce_demands([WalkDemand("a", 1), WalkDemand("a", 2)])

    def test_negative_demand_rejected(self):
        with pytest.raises(QueryError):
            WalkDemand("a", -1)


def _sampler(seed=0, ledger=None, tracer=None, faults=None, retry=None):
    graph = OverlayGraph(mesh_topology(16), n_nodes=16)
    return ProtocolSampler(
        graph,
        uniform_weights(),
        SimulationEngine(),
        np.random.default_rng(seed),
        ledger,
        ProtocolConfig(),
        faults=faults,
        retry=retry,
        tracer=tracer,
    )


class TestRunWalkBatch:
    def test_slices_per_query(self):
        sampler = _sampler()
        plan = coalesce_demands([WalkDemand("q0", 6), WalkDemand("q1", 4)])
        slices = sampler.run_walk_batch(origin=0, plan=plan, walk_length=20)
        assert len(slices["q0"]) == 6
        assert len(slices["q1"]) == 4
        # maximal overlap: q1's samples are a prefix of q0's
        assert slices["q1"] == slices["q0"][:4]

    def test_costs_one_batch_not_per_query(self):
        shared_ledger = MessageLedger()
        shared = _sampler(ledger=shared_ledger)
        plan = coalesce_demands([WalkDemand("q0", 8), WalkDemand("q1", 8)])
        shared.run_walk_batch(origin=0, plan=plan, walk_length=20)

        solo_ledger = MessageLedger()
        solo = _sampler(ledger=solo_ledger)
        solo.run_walks(origin=0, n=8, walk_length=20)
        solo_cost = solo_ledger.total
        solo.run_walks(origin=0, n=8, walk_length=20)

        assert shared_ledger.total < solo_ledger.total
        assert shared_ledger.total == pytest.approx(solo_cost, rel=0.35)

    def test_walk_spans_attribute_every_consumer(self):
        tracer = RecordingTracer()
        sampler = _sampler(tracer=tracer)
        plan = coalesce_demands([WalkDemand("q0", 5), WalkDemand("q1", 3)])
        sampler.run_walk_batch(origin=0, plan=plan, walk_length=20)
        trace = tracer.trace()
        walks = trace.spans_named("walk")
        assert len(walks) == 5
        shared = [s for s in walks if s.attrs["consumers"] == "q0,q1"]
        solo = [s for s in walks if s.attrs["consumers"] == "q0"]
        assert len(shared) == 3
        assert len(solo) == 2
        batches = trace.spans_named("shared_walk_batch")
        assert len(batches) == 1
        assert batches[0].attrs["consumers"] == "q0,q1"
        assert batches[0].attrs["n_drawn"] == 5

    def test_faulty_batch_degrades_with_partial(self):
        faults = FaultPlan(
            FaultConfig(message_loss=0.02), np.random.default_rng(5)
        )
        sampler = _sampler(
            faults=faults, retry=RetryPolicy(timeout=200, max_retries=2)
        )
        plan = coalesce_demands([WalkDemand("q0", 10), WalkDemand("q1", 6)])
        slices = sampler.run_walk_batch(
            origin=0, plan=plan, walk_length=25, allow_partial=True
        )
        assert len(slices["q0"]) <= 10
        assert len(slices["q1"]) <= 6
        # shortfall hits the deepest consumer first (q1 is a prefix)
        assert slices["q1"] == slices["q0"][: len(slices["q1"])]

    def test_empty_plan_is_free(self):
        ledger = MessageLedger()
        sampler = _sampler(ledger=ledger)
        slices = sampler.run_walk_batch(
            origin=0, plan=coalesce_demands([]), walk_length=20
        )
        assert slices == {}
        assert ledger.total == 0
