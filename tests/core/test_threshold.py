"""Tests for confidence-gated threshold monitoring."""

import numpy as np
import pytest

from repro.core.snapshot import SnapshotEstimate
from repro.core.threshold import ThresholdMonitor, ThresholdState
from repro.errors import QueryError


def _estimate(time, aggregate, stderr, population=1):
    """A snapshot whose aggregate CI half-width ~ 1.96 * stderr."""
    mean = aggregate / max(population, 1)
    return SnapshotEstimate(
        time=time,
        mean=mean if mean != 0 else aggregate,
        aggregate=aggregate,
        variance=(stderr * (mean / aggregate if aggregate else 1.0)) ** 2
        if aggregate
        else stderr**2,
        n_total=10,
        n_fresh=10,
        n_retained=0,
        population_size=population,
    )


class TestValidation:
    def test_bad_confidence(self):
        with pytest.raises(QueryError):
            ThresholdMonitor(10.0, confidence=1.0)

    def test_bad_margin(self):
        with pytest.raises(QueryError):
            ThresholdMonitor(10.0, margin=-1.0)


class TestDeclarations:
    def test_clear_above(self):
        monitor = ThresholdMonitor(10.0)
        state = monitor.offer(_estimate(0, 20.0, stderr=1.0))
        assert state is ThresholdState.ABOVE
        assert len(monitor.events) == 1

    def test_clear_below(self):
        monitor = ThresholdMonitor(10.0)
        assert monitor.offer(_estimate(0, 2.0, stderr=1.0)) is ThresholdState.BELOW

    def test_uncertain_holds_previous_state(self):
        monitor = ThresholdMonitor(10.0)
        monitor.offer(_estimate(0, 20.0, stderr=1.0))  # ABOVE
        # estimate straddles the threshold: CI = 10.5 +/- ~2
        state = monitor.offer(_estimate(1, 10.5, stderr=1.0))
        assert state is ThresholdState.ABOVE  # held
        assert monitor.uncertain_estimates == 1
        assert len(monitor.events) == 1  # no flip event

    def test_no_flapping_on_noise(self):
        """Estimates oscillating inside the noise band never flap."""
        monitor = ThresholdMonitor(10.0)
        monitor.offer(_estimate(0, 14.0, stderr=1.0))
        rng = np.random.default_rng(0)
        for t in range(1, 30):
            monitor.offer(_estimate(t, 10.0 + rng.normal(0, 0.8), stderr=1.0))
        assert len(monitor.events) == 1  # only the initial declaration

    def test_genuine_crossing_fires(self):
        fired = []
        monitor = ThresholdMonitor(10.0, callback=fired.append)
        monitor.offer(_estimate(0, 20.0, stderr=1.0))
        monitor.offer(_estimate(1, 1.0, stderr=1.0))
        assert [e.state for e in fired] == [
            ThresholdState.ABOVE,
            ThresholdState.BELOW,
        ]
        assert fired[1].time == 1

    def test_margin_adds_dead_band(self):
        plain = ThresholdMonitor(10.0)
        banded = ThresholdMonitor(10.0, margin=5.0)
        estimate = _estimate(0, 13.0, stderr=0.5)  # CI ~ [12, 14]
        assert plain.offer(estimate) is ThresholdState.ABOVE
        assert banded.offer(estimate) is ThresholdState.UNKNOWN  # needs > 15

    def test_initial_state_unknown(self):
        monitor = ThresholdMonitor(10.0)
        assert monitor.state is ThresholdState.UNKNOWN
        assert monitor.offer(_estimate(0, 10.2, stderr=1.0)) is (
            ThresholdState.UNKNOWN
        )


class TestEngineIntegration:
    def test_grid_scenario(self):
        """SUM query + monitor: declared flips track genuine level shifts."""
        from repro.core.engine import DigestEngine, EngineConfig
        from repro.core.query import ContinuousQuery, Precision, parse_query
        from repro.db.relation import P2PDatabase, Schema
        from repro.network.graph import OverlayGraph
        from repro.network.topology import mesh_topology

        rng = np.random.default_rng(0)
        graph = OverlayGraph(mesh_topology(25), n_nodes=25)
        database = P2PDatabase(Schema(("mem",)), graph.nodes())
        tids = []
        for node in graph.nodes():
            for _ in range(4):
                tids.append(database.insert(node, {"mem": float(rng.normal(40, 5))}))
        total0 = 40.0 * len(tids)
        continuous = ContinuousQuery(
            parse_query("SELECT SUM(mem) FROM R"),
            Precision(delta=100.0, epsilon=150.0, confidence=0.95),
            duration=10,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        monitor = ThresholdMonitor(threshold=total0 * 1.1, confidence=0.95)
        for t in range(10):
            if t == 5:  # a real level shift: +20% memory everywhere
                for tid in tids:
                    database.update(
                        tid, {"mem": database.read(tid)["mem"] * 1.25}
                    )
            estimate = engine.step(t)
            monitor.offer(estimate)
        states = [event.state for event in monitor.events]
        assert states == [ThresholdState.BELOW, ThresholdState.ABOVE]
        assert monitor.events[1].time >= 5
