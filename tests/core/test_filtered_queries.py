"""Tests for WHERE-clause (filtered) aggregate queries end to end."""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.estimators import ratio_estimate
from repro.core.independent import IndependentEvaluator
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.core.repeated import RepeatedEvaluator
from repro.db.aggregates import exact_aggregate, sample_contribution
from repro.db.expression import Expression
from repro.db.predicate import Predicate
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.operator import SamplingOperator


@pytest.fixture
def world():
    rng = np.random.default_rng(0)
    graph = OverlayGraph(mesh_topology(36), n_nodes=36)
    database = P2PDatabase(Schema(("mem", "cpu")), graph.nodes())
    for node in graph.nodes():
        for _ in range(6):
            database.insert(
                node,
                {
                    "mem": float(rng.uniform(0, 10)),
                    "cpu": float(rng.uniform(0, 4)),
                },
            )
    return graph, database


class TestQueryParsing:
    def test_where_clause_parsed(self):
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 2")
        assert query.predicate is not None
        assert query.predicate.text == "cpu > 2"

    def test_no_where_is_none(self):
        assert parse_query("SELECT AVG(mem) FROM R").predicate is None

    def test_str_roundtrip_with_where(self):
        text = "SELECT SUM(mem) FROM R WHERE cpu > 2 AND mem < 8"
        assert str(parse_query(text)) == text

    def test_malformed_where_rejected(self):
        with pytest.raises(Exception):
            parse_query("SELECT AVG(mem) FROM R WHERE cpu +")


class TestSampleContribution:
    def test_avg_masking(self):
        from repro.db.aggregates import AggregateOp

        expression = Expression("mem")
        predicate = Predicate("cpu > 2")
        y, i = sample_contribution(
            AggregateOp.AVG, expression, predicate, {"mem": 5.0, "cpu": 3.0}
        )
        assert (y, i) == (5.0, 1.0)
        y, i = sample_contribution(
            AggregateOp.AVG, expression, predicate, {"mem": 5.0, "cpu": 1.0}
        )
        assert (y, i) == (0.0, 0.0)

    def test_count_requires_nonzero_and_predicate(self):
        from repro.db.aggregates import AggregateOp

        expression = Expression("mem")
        predicate = Predicate("cpu > 2")
        y, _ = sample_contribution(
            AggregateOp.COUNT, expression, predicate, {"mem": 0.0, "cpu": 3.0}
        )
        assert y == 0.0
        y, _ = sample_contribution(
            AggregateOp.COUNT, expression, predicate, {"mem": 2.0, "cpu": 3.0}
        )
        assert y == 1.0

    def test_no_predicate_indicator_one(self):
        from repro.db.aggregates import AggregateOp

        y, i = sample_contribution(
            AggregateOp.SUM, Expression("mem"), None, {"mem": 4.0}
        )
        assert (y, i) == (4.0, 1.0)


class TestRatioEstimator:
    def test_reduces_to_mean_without_filtering(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        indicators = np.ones(4)
        estimate, variance = ratio_estimate(values, indicators)
        assert estimate == pytest.approx(2.5)
        assert variance == pytest.approx(np.mean((values - 2.5) ** 2) / 4)

    def test_subpopulation_mean(self):
        values = np.array([2.0, 0.0, 4.0, 0.0])
        indicators = np.array([1.0, 0.0, 1.0, 0.0])
        estimate, _ = ratio_estimate(values, indicators)
        assert estimate == pytest.approx(3.0)

    def test_no_qualifying_rejected(self):
        with pytest.raises(QueryError, match="predicate"):
            ratio_estimate(np.zeros(5), np.zeros(5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(QueryError):
            ratio_estimate(np.zeros(3), np.zeros(4))

    def test_delta_method_variance_calibrated(self):
        """Empirical variance of the ratio matches the formula."""
        rng = np.random.default_rng(0)
        population = rng.uniform(0, 10, 50_000)
        qualifies = population > 4.0
        truth = population[qualifies].mean()
        n = 400
        estimates, variances = [], []
        for _ in range(500):
            index = rng.integers(0, population.size, n)
            indicator = qualifies[index].astype(float)
            values = population[index] * indicator
            estimate, variance = ratio_estimate(values, indicator)
            estimates.append(estimate)
            variances.append(variance)
        empirical = np.var(np.array(estimates) - truth)
        assert empirical == pytest.approx(np.mean(variances), rel=0.3)


class TestExactAggregateFiltered:
    def test_avg_where(self, world):
        _, database = world
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        columns = database.exact_columns(["mem", "cpu"])
        expected = columns["mem"][columns["cpu"] > 2].mean()
        assert truth == pytest.approx(expected)

    def test_sum_where(self, world):
        _, database = world
        query = parse_query("SELECT SUM(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        columns = database.exact_columns(["mem", "cpu"])
        assert truth == pytest.approx(columns["mem"][columns["cpu"] > 2].sum())

    def test_count_where(self, world):
        _, database = world
        query = parse_query("SELECT COUNT(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        columns = database.exact_columns(["mem", "cpu"])
        assert truth == pytest.approx((columns["cpu"] > 2).sum())

    def test_avg_empty_selection_rejected(self, world):
        _, database = world
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 100")
        with pytest.raises(QueryError):
            exact_aggregate(database, query.op, query.expression, query.predicate)

    def test_sum_empty_selection_zero(self, world):
        _, database = world
        query = parse_query("SELECT SUM(mem) FROM R WHERE cpu > 100")
        assert (
            exact_aggregate(database, query.op, query.expression, query.predicate)
            == 0.0
        )


class TestFilteredEvaluation:
    def test_independent_avg_where(self, world):
        graph, database = world
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        evaluator = IndependentEvaluator(
            database, SamplingOperator(graph, np.random.default_rng(1)), 0, query
        )
        estimate = evaluator.evaluate(0, epsilon=0.4, confidence=0.95)
        assert abs(estimate.mean - truth) < 1.0

    def test_independent_count_where(self, world):
        graph, database = world
        query = parse_query("SELECT COUNT(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        evaluator = IndependentEvaluator(
            database, SamplingOperator(graph, np.random.default_rng(2)), 0, query
        )
        estimate = evaluator.evaluate(0, epsilon=20.0, confidence=0.95)
        assert abs(estimate.aggregate - truth) < 45.0

    def test_repeated_sum_where(self, world):
        graph, database = world
        query = parse_query("SELECT SUM(mem) FROM R WHERE cpu > 2")
        truth = exact_aggregate(database, query.op, query.expression, query.predicate)
        evaluator = RepeatedEvaluator(
            database,
            SamplingOperator(graph, np.random.default_rng(3)),
            0,
            query,
            np.random.default_rng(4),
        )
        for time in range(3):
            estimate = evaluator.evaluate(time, epsilon=120.0, confidence=0.95)
        assert abs(estimate.aggregate - truth) < 300.0
        assert estimate.n_retained > 0

    def test_repeated_avg_where_rejected(self, world):
        graph, database = world
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 2")
        with pytest.raises(QueryError, match="ratio"):
            RepeatedEvaluator(
                database,
                SamplingOperator(graph, np.random.default_rng(0)),
                0,
                query,
                np.random.default_rng(0),
            )

    def test_low_selectivity_raises_clearly(self, world):
        graph, database = world
        query = parse_query("SELECT AVG(mem) FROM R WHERE cpu > 1000")
        evaluator = IndependentEvaluator(
            database, SamplingOperator(graph, np.random.default_rng(5)), 0, query
        )
        with pytest.raises(QueryError, match="selectivity|predicate"):
            evaluator.evaluate(0, epsilon=1.0, confidence=0.95)

    def test_engine_validates_predicate_schema(self, world):
        graph, database = world
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(mem) FROM R WHERE bogus > 1"),
            Precision(1.0, 1.0),
        )
        with pytest.raises(Exception, match="bogus|unknown"):
            DigestEngine(
                graph, database, continuous, origin=0,
                rng=np.random.default_rng(0),
            )

    def test_engine_runs_filtered_continuous_query(self, world):
        graph, database = world
        continuous = ContinuousQuery(
            parse_query("SELECT COUNT(mem) FROM R WHERE cpu > 2"),
            Precision(delta=20.0, epsilon=25.0, confidence=0.95),
            duration=5,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(6),
            config=EngineConfig(scheduler="all", evaluator="repeated"),
        )
        for t in range(5):
            engine.step(t)
        truth = exact_aggregate(
            database,
            continuous.query.op,
            continuous.query.expression,
            continuous.query.predicate,
        )
        assert abs(engine.result.last().estimate - truth) < 60.0
