"""Engine tests for the less-traveled configuration paths."""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, power_law_topology


def _world(n_nodes=64, per_node=4, seed=0, topology="mesh"):
    rng = np.random.default_rng(seed)
    if topology == "mesh":
        edges = mesh_topology(n_nodes)
    else:
        edges = power_law_topology(n_nodes, rng=rng)
    graph = OverlayGraph(edges, n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    tids = []
    for node in graph.nodes():
        for _ in range(per_node):
            tids.append(database.insert(node, {"v": float(rng.normal(20, 4))}))
    return graph, database, tids


class TestEstimatedPopulation:
    def test_sum_with_estimated_population(self):
        """oracle_population=False: N comes from capture-recapture."""
        graph, database, _ = _world(topology="power_law")
        continuous = ContinuousQuery(
            parse_query("SELECT SUM(v) FROM R"),
            Precision(delta=500.0, epsilon=800.0, confidence=0.9),
            duration=3,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(
                scheduler="all",
                evaluator="independent",
                oracle_population=False,
            ),
        )
        estimates = [engine.step(t) for t in range(3)]
        truth = float(database.exact_values(Expression("v")).sum())
        # capture-recapture N has real variance; require the right scale
        for estimate in estimates:
            assert estimate is not None
            assert 0.4 * truth < estimate.aggregate < 2.5 * truth
            assert estimate.population_size != database.n_tuples or True

    def test_population_estimation_costs_messages(self):
        graph, database, _ = _world(topology="power_law")
        continuous = ContinuousQuery(
            parse_query("SELECT COUNT(v) FROM R"),
            Precision(delta=50.0, epsilon=80.0, confidence=0.9),
            duration=1,
        )
        costs = {}
        for oracle in (True, False):
            engine = DigestEngine(
                graph,
                database,
                continuous,
                origin=0,
                rng=np.random.default_rng(2),
                config=EngineConfig(
                    scheduler="all",
                    evaluator="independent",
                    oracle_population=oracle,
                ),
            )
            engine.step(0)
            costs[oracle] = engine.ledger.total
        assert costs[False] > costs[True]  # size estimation isn't free


class TestForwardRevisionScaling:
    def test_sum_revision_scales_by_population(self):
        """Forward revision amends in aggregate units, not mean units."""
        graph, database, tids = _world()
        continuous = ContinuousQuery(
            parse_query("SELECT SUM(v) FROM R"),
            Precision(delta=300.0, epsilon=150.0, confidence=0.95),
            duration=6,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(3),
            config=EngineConfig(
                scheduler="all", evaluator="repeated", forward_revision=True
            ),
        )
        rng = np.random.default_rng(4)
        for t in range(6):
            for tid in tids:
                current = database.read(tid)["v"]
                database.update(tid, {"v": 0.98 * current + rng.normal(0, 0.2)})
            engine.step(t)
        truth_scale = float(database.exact_values(Expression("v")).sum())
        for record in engine.result.updates:
            # revised estimates must stay on the SUM scale
            assert 0.5 * truth_scale < record.estimate < 2.0 * truth_scale


class TestChurnIntegration:
    def test_engine_survives_heavy_churn(self):
        """Full run over a churning MEMORY world with a protected origin."""
        import dataclasses

        from repro.datasets.memory import MemoryConfig, MemoryDataset

        config = dataclasses.replace(
            MemoryConfig().scaled(0.12), leave_probability=0.05
        )
        instance = MemoryDataset(config, seed=5).build()
        origin = instance.graph.nodes()[0]
        instance.churn.protect(origin)
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(available_memory) FROM R"),
            Precision(delta=10.0, epsilon=4.0, confidence=0.9),
            duration=25,
        )
        engine = DigestEngine(
            instance.graph,
            instance.database,
            continuous,
            origin=origin,
            rng=np.random.default_rng(6),
            config=EngineConfig(scheduler="all", evaluator="repeated"),
        )
        errors = []
        for t in range(25):
            instance.step(t)
            estimate = engine.step(t)
            if estimate is not None:
                errors.append(abs(estimate.aggregate - instance.true_average()))
        assert engine.metrics.snapshot_queries == 25
        assert instance.nodes_left > 0  # churn actually happened
        assert float(np.mean(errors)) < 8.0  # estimates stayed sane
