"""Tests for the running result with hold semantics."""

import numpy as np
import pytest

from repro.core.result import RunningResult, UpdateRecord
from repro.errors import QueryError


@pytest.fixture
def result():
    r = RunningResult()
    r.update(UpdateRecord(time=2, estimate=10.0, n_samples=30))
    r.update(UpdateRecord(time=5, estimate=20.0, n_samples=40))
    return r


def test_hold_semantics(result):
    assert result.value_at(2) == 10.0
    assert result.value_at(3) == 10.0
    assert result.value_at(4) == 10.0
    assert result.value_at(5) == 20.0
    assert result.value_at(100) == 20.0


def test_before_first_update_rejected(result):
    with pytest.raises(QueryError):
        result.value_at(1)


def test_times_must_increase(result):
    with pytest.raises(QueryError):
        result.update(UpdateRecord(time=5, estimate=1.0))
    with pytest.raises(QueryError):
        result.update(UpdateRecord(time=4, estimate=1.0))


def test_trajectory(result):
    np.testing.assert_allclose(
        result.trajectory([2, 3, 5, 6]), [10.0, 10.0, 20.0, 20.0]
    )


def test_accessors(result):
    assert len(result) == 2
    assert result.update_times == [2, 5]
    assert result.last().estimate == 20.0
    assert result.updates[0].n_samples == 30


def test_empty_last_rejected():
    with pytest.raises(QueryError):
        RunningResult().last()
