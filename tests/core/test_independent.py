"""Tests for independent sampling evaluation (Section IV-B1)."""

import numpy as np
import pytest

from repro.core.independent import EvaluatorConfig, IndependentEvaluator
from repro.core.query import Query, parse_query
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator


def _world(mean=50.0, sigma=10.0, per_node=5, n_nodes=36, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(per_node):
            database.insert(node, {"v": float(rng.normal(mean, sigma))})
    return graph, database


def _evaluator(graph, database, query=None, seed=1, **config_kwargs):
    if query is None:
        query = Query(AggregateOp.AVG, Expression("v"))
    operator = SamplingOperator(
        graph, np.random.default_rng(seed), config=SamplerConfig()
    )
    config = EvaluatorConfig(**config_kwargs) if config_kwargs else None
    return IndependentEvaluator(database, operator, 0, query, config=config)


class TestConfig:
    def test_rejects_tiny_pilot(self):
        with pytest.raises(QueryError):
            EvaluatorConfig(pilot_size=1)

    def test_rejects_zero_rounds(self):
        with pytest.raises(QueryError):
            EvaluatorConfig(max_rounds=0)


class TestAvg:
    def test_estimate_close_to_truth(self):
        graph, database = _world()
        evaluator = _evaluator(graph, database)
        estimate = evaluator.evaluate(0, epsilon=1.0, confidence=0.95)
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(estimate.mean - truth) < 2.5  # ~2x epsilon slack, single run
        assert estimate.aggregate == estimate.mean  # AVG has scale 1
        assert estimate.n_fresh == estimate.n_total
        assert estimate.n_retained == 0

    def test_sample_size_grows_with_precision(self):
        graph, database = _world()
        loose = _evaluator(graph, database, seed=1).evaluate(
            0, epsilon=4.0, confidence=0.95
        )
        tight = _evaluator(graph, database, seed=1).evaluate(
            0, epsilon=1.0, confidence=0.95
        )
        assert tight.n_total > loose.n_total

    def test_sequential_topup_reaches_requirement(self):
        """The final n must cover the CLT size at the final sigma estimate."""
        from repro.core.estimators import required_sample_size

        graph, database = _world(sigma=20.0)
        evaluator = _evaluator(graph, database, pilot_size=10)
        estimate = evaluator.evaluate(0, epsilon=2.0, confidence=0.95)
        sigma_hat = float(np.sqrt(estimate.variance * estimate.n_total))
        needed = required_sample_size(sigma_hat, 2.0, 0.95, minimum=10)
        assert estimate.n_total >= 0.8 * needed  # one round of slack

    def test_coverage_probability(self):
        """|estimate - truth| <= epsilon holds at ~confidence over trials."""
        graph, database = _world(sigma=8.0)
        truth = float(database.exact_values(Expression("v")).mean())
        hits = 0
        trials = 60
        for trial in range(trials):
            evaluator = _evaluator(graph, database, seed=100 + trial)
            estimate = evaluator.evaluate(0, epsilon=1.5, confidence=0.9)
            hits += abs(estimate.mean - truth) <= 1.5
        assert hits / trials >= 0.75  # 0.9 target with sampling slack


class TestSumCount:
    def test_sum_scales_by_population(self):
        graph, database = _world(mean=10.0, sigma=1.0)
        query = parse_query("SELECT SUM(v) FROM R")
        evaluator = _evaluator(graph, database, query=query)
        estimate = evaluator.evaluate(0, epsilon=200.0, confidence=0.95)
        truth = float(database.exact_values(Expression("v")).sum())
        assert estimate.population_size == database.n_tuples
        assert abs(estimate.aggregate - truth) < 500.0

    def test_count_predicate(self):
        graph, database = _world(mean=0.0, sigma=10.0)
        # count tuples with v > 0 via the indicator trick is not expressible
        # directly; COUNT(v) counts non-zero values (all of them here)
        query = parse_query("SELECT COUNT(v) FROM R")
        evaluator = _evaluator(graph, database, query=query)
        estimate = evaluator.evaluate(0, epsilon=10.0, confidence=0.95)
        assert estimate.aggregate == pytest.approx(database.n_tuples, rel=0.1)

    def test_custom_population_provider(self):
        graph, database = _world()
        query = parse_query("SELECT SUM(v) FROM R")
        operator = SamplingOperator(graph, np.random.default_rng(1))
        evaluator = IndependentEvaluator(
            database, operator, 0, query, population_size_provider=lambda: 1000
        )
        estimate = evaluator.evaluate(0, epsilon=1000.0, confidence=0.95)
        assert estimate.population_size == 1000
