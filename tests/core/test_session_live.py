"""End-to-end tests for the live-audited session (pipeline + alerts + audit)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.core.session import DigestSession
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.obs.alerts import FIRING, AlertRule, verify_alert_replay
from repro.obs.analysis import verify_trace_consistency
from repro.obs.audit import META_PROMISES
from repro.obs.live import META_FINISHED_AT, WindowConfig
from repro.obs.tracer import RecordingTracer

_STEPS = 40
_WINDOWS = WindowConfig(width=10, slide=3)

_RULES = [
    AlertRule(
        name="degraded-snapshots",
        signal="degraded_fraction",
        threshold=0.5,
        comparison=">",
        for_windows=2,
    ),
    AlertRule(
        name="guarantee-burn",
        signal="audit_burn_rate",
        kind="burn_rate",
        threshold=2.0,
        comparison=">",
        for_windows=2,
    ),
]


# seeds match the slo_audit smoke sweep's cells (clean, lossy), whose
# fired-rule expectations the experiment gate already pins down
_CLEAN_SEED = 0
_FAULTED_SEED = 1000


def _run_session(message_loss=0.0):
    seed = _FAULTED_SEED if message_loss > 0.0 else _CLEAN_SEED
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(24), n_nodes=24)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(4):
            database.insert(node, {"v": float(rng.normal(50, 10))})
    plan = (
        FaultPlan(FaultConfig(message_loss=message_loss), rng=seed + 50)
        if message_loss > 0.0
        else None
    )
    tracer = RecordingTracer()
    session = DigestSession(
        graph,
        database,
        origin=0,
        rng=np.random.default_rng(seed + 1),
        faults=plan,
        tracer=tracer,
    )
    pipeline, engine = session.attach_live(_RULES, _WINDOWS)
    for _ in range(2):
        session.add_query(
            ContinuousQuery(
                parse_query("SELECT AVG(v) FROM R"),
                Precision(delta=0.8, epsilon=0.8, confidence=0.85),
                duration=_STEPS,
            ),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
    for tick in range(_STEPS):
        session.step(tick)
    session.finish_live(_STEPS)
    return session, pipeline, engine, tracer.trace()


class TestLiveSession:
    def test_clean_run_fires_no_alerts(self):
        session, pipeline, engine, _trace = _run_session()
        assert engine.transitions == []
        assert session.metrics.alerts_fired == 0
        assert pipeline.windows  # the pipeline did stream windows

    def test_faulted_run_pages_both_gated_rules(self):
        session, _pipeline, engine, _trace = _run_session(message_loss=0.20)
        fired = {t.rule for t in engine.transitions if t.state == FIRING}
        assert fired == {"degraded-snapshots", "guarantee-burn"}
        assert session.metrics.alerts_fired == len(
            [t for t in engine.transitions if t.state == FIRING]
        )

    def test_trace_replays_counters_and_alerts_exactly(self):
        for loss in (0.0, 0.20):
            session, _pipeline, _engine, trace = _run_session(message_loss=loss)
            assert verify_trace_consistency(trace, session.metrics) == []
            assert verify_alert_replay(trace, _RULES, _WINDOWS) == []

    def test_promises_and_finish_time_recorded_in_meta(self):
        _session, _pipeline, _engine, trace = _run_session()
        assert trace.meta[META_FINISHED_AT] == _STEPS
        promise = {"epsilon": 0.8, "confidence": 0.85}
        assert trace.meta[META_PROMISES] == {"q0": promise, "q1": promise}

    def test_audit_verdicts_cover_every_query(self):
        session, _pipeline, _engine, _trace = _run_session(message_loss=0.20)
        verdicts = session.auditor.verdicts()
        assert set(verdicts) == {"q0", "q1"}
        assert all(v.snapshots > 0 for v in verdicts.values())
        assert sum(v.violations for v in verdicts.values()) > 0
        assert max(v.burn_rate for v in verdicts.values()) > 2.0
        assert not all(v.ok for v in verdicts.values())

    def test_session_wires_clock_so_deep_records_are_timed(self):
        # every span a session-mode trace records must carry real
        # simulated time — the live pipeline drops untimed records
        _session, pipeline, _engine, trace = _run_session()
        assert all(
            s.start >= 0 and s.end is not None and s.end >= 0
            for s in trace.spans
        )
        assert pipeline.records_dropped == 0

    def test_attach_live_twice_rejected(self):
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        session = DigestSession(
            graph, database, origin=0, rng=np.random.default_rng(0)
        )
        session.attach_live()
        with pytest.raises(QueryError):
            session.attach_live()
