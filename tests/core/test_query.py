"""Tests for the query model and precision semantics."""

import pytest

from repro.core.query import ContinuousQuery, Precision, Query, parse_query
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.errors import QueryError


class TestParseQuery:
    def test_basic(self):
        query = parse_query("SELECT AVG(temperature) FROM R")
        assert query.op is AggregateOp.AVG
        assert query.expression.text == "temperature"
        assert query.relation == "R"

    def test_case_insensitive(self):
        query = parse_query("select sum(a + b) from sensors")
        assert query.op is AggregateOp.SUM
        assert query.relation == "sensors"

    def test_complex_expression(self):
        query = parse_query("SELECT SUM(memory + storage) FROM R")
        assert query.expression.attributes == {"memory", "storage"}

    def test_nested_parentheses(self):
        query = parse_query("SELECT AVG((a + b) * 0.5) FROM R;")
        assert query.expression.evaluate({"a": 2, "b": 4}) == 3.0

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT * FROM R",
            "SELECT AVG(a)",
            "AVG(a) FROM R",
            "SELECT MEDIAN(a) FROM R",
            "SELECT AVG() FROM R",
            "",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)

    def test_str_roundtrip(self):
        text = "SELECT AVG(a + b) FROM R"
        assert str(parse_query(text)) == text


class TestPrecision:
    def test_valid(self):
        precision = Precision(delta=1.0, epsilon=0.5, confidence=0.9)
        assert not precision.is_exact

    def test_exact(self):
        assert Precision.exact().is_exact

    def test_rejects_negative_delta(self):
        with pytest.raises(QueryError):
            Precision(delta=-1.0, epsilon=1.0)

    def test_rejects_negative_epsilon(self):
        with pytest.raises(QueryError):
            Precision(delta=1.0, epsilon=-1.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(QueryError):
            Precision(delta=1.0, epsilon=1.0, confidence=0.0)
        with pytest.raises(QueryError):
            Precision(delta=1.0, epsilon=1.0, confidence=1.5)

    def test_zero_epsilon_needs_full_confidence(self):
        with pytest.raises(QueryError):
            Precision(delta=0.0, epsilon=0.0, confidence=0.95)
        Precision(delta=0.0, epsilon=0.0, confidence=1.0)  # exact query ok


class TestContinuousQuery:
    def _query(self):
        return Query(AggregateOp.AVG, Expression("v"))

    def test_active_window(self):
        continuous = ContinuousQuery(
            self._query(), Precision(1.0, 1.0), start_time=5, duration=10
        )
        assert continuous.end_time == 14
        assert not continuous.active_at(4)
        assert continuous.active_at(5)
        assert continuous.active_at(14)
        assert not continuous.active_at(15)

    def test_open_ended(self):
        continuous = ContinuousQuery(self._query(), Precision(1.0, 1.0))
        assert continuous.end_time is None
        assert continuous.active_at(10**9)

    def test_rejects_negative_start(self):
        with pytest.raises(QueryError):
            ContinuousQuery(self._query(), Precision(1.0, 1.0), start_time=-1)

    def test_rejects_zero_duration(self):
        with pytest.raises(QueryError):
            ContinuousQuery(self._query(), Precision(1.0, 1.0), duration=0)

    def test_str_mentions_parameters(self):
        text = str(ContinuousQuery(self._query(), Precision(2.0, 1.0, 0.9)))
        assert "delta=2.0" in text and "epsilon=1.0" in text and "p=0.9" in text
