"""Integration tests for the Digest engine (both tiers composed)."""

import numpy as np
import pytest

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sim.engine import PRIORITY_UPDATES, SimulationEngine


def _world(seed=0, n_nodes=36, per_node=5):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    tids = []
    for node in graph.nodes():
        for _ in range(per_node):
            tids.append(database.insert(node, {"v": float(rng.normal(50, 8))}))
    return graph, database, tids


def _continuous_query(delta=4.0, epsilon=2.0, duration=30):
    return ContinuousQuery(
        parse_query("SELECT AVG(v) FROM R"),
        Precision(delta=delta, epsilon=epsilon, confidence=0.95),
        duration=duration,
    )


class TestConfigValidation:
    def test_rejects_unknown_scheduler(self):
        with pytest.raises(QueryError):
            EngineConfig(scheduler="sometimes")

    def test_rejects_unknown_evaluator(self):
        with pytest.raises(QueryError):
            EngineConfig(evaluator="psychic")

    def test_rejects_unknown_origin(self):
        graph, database, _ = _world()
        with pytest.raises(QueryError):
            DigestEngine(
                graph, database, _continuous_query(), origin=10**6,
                rng=np.random.default_rng(0),
            )

    def test_rejects_bad_expression(self):
        graph, database, _ = _world()
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(nope) FROM R"), Precision(1.0, 1.0)
        )
        with pytest.raises(Exception):
            DigestEngine(
                graph, database, continuous, origin=0,
                rng=np.random.default_rng(0),
            )


class TestStepping:
    def test_all_scheduler_queries_every_step(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=10),
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        for t in range(10):
            assert engine.step(t) is not None
        assert engine.metrics.snapshot_queries == 10

    def test_inactive_outside_duration(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=3),
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        for t in range(6):
            engine.step(t)
        assert engine.metrics.snapshot_queries == 3

    def test_pred_scheduler_skips(self):
        graph, database, tids = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(delta=6.0, duration=30),
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="pred", evaluator="independent"),
        )
        rng = np.random.default_rng(2)
        for t in range(30):
            for tid in tids:  # slow drift
                database.update(tid, {"v": database.read(tid)["v"] + 0.05})
            engine.step(t)
        assert engine.metrics.snapshot_queries < 30

    def test_step_before_due_is_noop(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=10),
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="pred", evaluator="independent",
                                pred_points=2),
        )
        engine.step(0)
        due = engine.next_due
        if due > 1:
            assert engine.step(due - 1) is None  # not due yet

    def test_running_result_tracks_truth(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(epsilon=1.5, duration=5),
            origin=0,
            rng=np.random.default_rng(3),
            config=EngineConfig(scheduler="all", evaluator="repeated"),
        )
        for t in range(5):
            engine.step(t)
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(engine.current_estimate(4) - truth) < 3.0

    def test_metrics_accumulate(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=4),
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="all", evaluator="repeated"),
        )
        for t in range(4):
            engine.step(t)
        metrics = engine.metrics
        assert metrics.samples_total == metrics.samples_fresh + metrics.samples_retained
        assert metrics.has_series("estimate")
        assert len(metrics.series("estimate")) == 4
        assert engine.ledger.total > 0


class TestSimulationAttachment:
    def test_attach_runs_like_manual_loop(self):
        graph, database, _ = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=8),
            origin=0,
            rng=np.random.default_rng(5),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        simulation = SimulationEngine()
        engine.attach(simulation)
        simulation.run_until(20)
        assert engine.metrics.snapshot_queries == 8

    def test_attach_respects_update_priority(self):
        """Engine queries run after same-step data updates."""
        graph, database, tids = _world()
        engine = DigestEngine(
            graph,
            database,
            _continuous_query(duration=3, epsilon=0.5),
            origin=0,
            rng=np.random.default_rng(5),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        simulation = SimulationEngine()
        seen = []

        def bump(time):
            for tid in tids:
                database.update(tid, {"v": 100.0 + time})
            seen.append(time)

        simulation.schedule_every(1, bump, PRIORITY_UPDATES, until=2)
        engine.attach(simulation)
        simulation.run_until(5)
        # each snapshot saw the post-update world: estimates near 100+t
        for record, time in zip(engine.result.updates, seen):
            assert abs(record.estimate - (100.0 + time)) < 1.0
