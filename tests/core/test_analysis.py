"""Tests for the k-th occasion steady-state analysis."""

import numpy as np
import pytest

from repro.core.analysis import (
    occasion_variance,
    one_step_improvement,
    steady_state_improvement,
    steady_state_variance,
)
from repro.core.repeated import minimum_variance
from repro.errors import QueryError


class TestOneStep:
    def test_eq11_values(self):
        assert one_step_improvement(0.0) == pytest.approx(1.0)
        assert one_step_improvement(1.0) == pytest.approx(2.0)
        assert one_step_improvement(0.89) == pytest.approx(1.374, abs=0.01)

    def test_validation(self):
        with pytest.raises(QueryError):
            one_step_improvement(1.5)


class TestSteadyState:
    def test_fixed_point_is_stationary(self):
        sigma2, n, rho = 1.0, 200, 0.9
        v_star = steady_state_variance(sigma2, n, rho)
        assert occasion_variance(sigma2, n, rho, v_star) == pytest.approx(
            v_star, rel=1e-6
        )

    def test_below_second_occasion_minimum(self):
        """The recursion compounds: v* < Eq. 10's one-step minimum."""
        sigma2, n = 1.0, 200
        for rho in (0.68, 0.89, 0.95):
            v_star = steady_state_variance(sigma2, n, rho)
            assert v_star < minimum_variance(sigma2, n, rho)

    def test_rho_zero_no_gain(self):
        assert steady_state_variance(1.0, 100, 0.0) == pytest.approx(0.01)

    def test_zero_sigma(self):
        assert steady_state_variance(0.0, 100, 0.9) == 0.0

    def test_validation(self):
        with pytest.raises(QueryError):
            steady_state_variance(-1.0, 100, 0.5)
        with pytest.raises(QueryError):
            steady_state_variance(1.0, 0, 0.5)

    def test_improvement_ordering(self):
        """one-step <= steady-state, both increasing in rho."""
        for rho in (0.5, 0.68, 0.89):
            assert steady_state_improvement(rho) >= one_step_improvement(rho) - 1e-9
        assert steady_state_improvement(0.89) > steady_state_improvement(0.68)

    def test_explains_paper_measurements(self):
        """The paper's measured improvement factors sit between the
        one-step bound and the steady-state bound — as they must if the
        implementation realizes the recursion."""
        # TEMPERATURE: measured 1.63 at rho = 0.89
        assert one_step_improvement(0.89) < 1.63 <= steady_state_improvement(0.89) + 0.05
        # MEMORY: measured 1.21 at rho = 0.68
        assert one_step_improvement(0.68) < 1.21 <= steady_state_improvement(0.68) + 0.05

    def test_matches_simulated_long_run(self):
        """The evaluator's achieved long-run variance tracks v*."""
        from repro.core.query import Query
        from repro.core.repeated import RepeatedEvaluator
        from repro.db.aggregates import AggregateOp
        from repro.db.expression import Expression
        from repro.db.relation import P2PDatabase, Schema
        from repro.network.graph import OverlayGraph
        from repro.network.topology import mesh_topology
        from repro.sampling.operator import SamplingOperator

        rho = 0.9
        rng = np.random.default_rng(0)
        graph = OverlayGraph(mesh_topology(36), n_nodes=36)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        tids = []
        for node in graph.nodes():
            for _ in range(30):
                tids.append(database.insert(node, {"v": float(rng.normal(0, 1))}))
        evaluator = RepeatedEvaluator(
            database,
            SamplingOperator(graph, np.random.default_rng(1)),
            0,
            Query(AggregateOp.AVG, Expression("v")),
            np.random.default_rng(2),
        )
        # evolve tuples as AR(1) with lag-1 correlation rho
        innovation = np.sqrt(1 - rho * rho)
        reported = None
        for time in range(8):
            for tid in tids:
                current = database.read(tid)["v"]
                database.update(
                    tid, {"v": rho * current + float(rng.normal(0, innovation))}
                )
            reported = evaluator.evaluate(time, epsilon=0.25, confidence=0.95)
        # at steady state the evaluator needs ~n_indep / improvement samples
        from repro.core.estimators import required_sample_size

        n_independent = required_sample_size(1.0, 0.25, 0.95)
        expected = n_independent / steady_state_improvement(rho)
        assert reported.n_total == pytest.approx(expected, rel=0.5)