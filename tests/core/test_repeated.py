"""Tests for repeated sampling (Section IV-B2, Table 1, Eq. 7-11)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.independent import EvaluatorConfig, IndependentEvaluator
from repro.core.query import Query
from repro.core.repeated import (
    RepeatedEvaluator,
    combined_variance,
    minimum_variance,
    optimal_partition,
    solve_allocation,
)
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator


class TestOptimalPartition:
    def test_rho_zero_splits_half(self):
        g, f = optimal_partition(100, 0.0)
        assert g == 50 and f == 50

    def test_rho_one_replaces_all(self):
        g, f = optimal_partition(100, 1.0)
        assert g == 0 and f == 100

    def test_partition_sums_to_n(self):
        for rho in (0.0, 0.3, 0.7, 0.95):
            g, f = optimal_partition(37, rho)
            assert g + f == 37

    def test_retained_fraction_decreases_with_rho(self):
        fractions = [optimal_partition(1000, rho)[0] for rho in (0.1, 0.5, 0.9)]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_validation(self):
        with pytest.raises(QueryError):
            optimal_partition(-1, 0.5)
        with pytest.raises(QueryError):
            optimal_partition(10, 1.5)


class TestCombinedVariance:
    def test_extremes_equal_independent(self):
        """g=0 and g=n both give sigma^2/n (the paper's Eq. 8 note)."""
        sigma2, n, rho = 4.0, 100, 0.8
        var_prev = sigma2 / n
        assert combined_variance(sigma2, n, 0, rho, var_prev) == pytest.approx(
            sigma2 / n
        )
        assert combined_variance(sigma2, n, n, rho, var_prev) == pytest.approx(
            sigma2 / n
        )

    def test_matches_eq8_closed_form(self):
        """General form reduces to Eq. 8 when var_prev = sigma^2/n."""
        sigma2, n, rho = 1.0, 100, 0.85
        var_prev = sigma2 / n
        for g in (10, 30, 50, 80):
            f = n - g
            eq8 = sigma2 * (n - f * rho**2) / (n**2 - f**2 * rho**2)
            assert combined_variance(sigma2, n, g, rho, var_prev) == pytest.approx(
                eq8
            )

    def test_optimum_achieves_eq10(self):
        sigma2, n, rho = 1.0, 1000, 0.9
        g, _ = optimal_partition(n, rho)
        optimum = combined_variance(sigma2, n, g, rho, sigma2 / n)
        eq10 = minimum_variance(sigma2, n, rho)
        assert optimum == pytest.approx(eq10, rel=1e-4)

    def test_perfect_prior_gives_zero_variance_limit(self):
        # rho=1 and var_prev=0: regression is exact
        assert combined_variance(1.0, 10, 5, 1.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(QueryError):
            combined_variance(1.0, 0, 0, 0.5, 0.1)
        with pytest.raises(QueryError):
            combined_variance(1.0, 10, 11, 0.5, 0.1)
        with pytest.raises(QueryError):
            combined_variance(-1.0, 10, 5, 0.5, 0.1)

    @given(
        n=st.integers(2, 500),
        g=st.integers(0, 500),
        rho=st.floats(0.0, 0.99),
        sigma2=st.floats(0.01, 100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_never_beats_eq10_nor_worse_than_independent(
        self, n, g, rho, sigma2
    ):
        g = min(g, n)
        var_prev = sigma2 / n
        variance = combined_variance(sigma2, n, g, rho, var_prev)
        assert variance <= sigma2 / n + 1e-9
        assert variance >= minimum_variance(sigma2, n, rho) - 1e-9


class TestEq11Improvement:
    def test_improvement_ratio(self):
        """Eq. 11: var ratio = 2 / (1 + sqrt(1 - rho^2))."""
        sigma2, n = 1.0, 1000
        for rho in (0.5, 0.89, 0.99):
            ratio = (sigma2 / n) / minimum_variance(sigma2, n, rho)
            expected = 2.0 / (1.0 + math.sqrt(1.0 - rho * rho))
            assert ratio == pytest.approx(expected)

    def test_max_improvement_is_double(self):
        assert minimum_variance(1.0, 100, 1.0) == pytest.approx(0.5 / 100)


class TestSolveAllocation:
    def test_meets_target(self):
        sigma2, rho = 4.0, 0.8
        var_prev = 0.05
        target = 0.02
        n, g = solve_allocation(sigma2, rho, var_prev, target, retained_available=500)
        assert combined_variance(sigma2, n, g, rho, var_prev) <= target

    def test_minimal(self):
        sigma2, rho = 4.0, 0.8
        var_prev = 0.05
        target = 0.02
        n, g = solve_allocation(
            sigma2, rho, var_prev, target, retained_available=500, min_n=2
        )
        if n > 2:
            # one fewer sample cannot meet the target at any partition
            best = min(
                combined_variance(sigma2, n - 1, candidate, rho, var_prev)
                for candidate in range(0, n)
            )
            assert best > target

    def test_cheaper_than_independent(self):
        """With correlation, the allocation needs fewer samples than Eq. 6."""
        sigma2, rho, target = 4.0, 0.9, 0.01
        n_independent = int(np.ceil(sigma2 / target))
        n_repeated, _ = solve_allocation(
            sigma2, rho, target * 2, target, retained_available=10**6
        )
        assert n_repeated < n_independent

    def test_respects_retained_available(self):
        n, g = solve_allocation(4.0, 0.9, 0.001, 0.01, retained_available=7)
        assert g <= 7

    def test_zero_sigma(self):
        n, g = solve_allocation(0.0, 0.5, 0.1, 0.01, retained_available=10)
        assert n == 2 and g == 0

    def test_infeasible_target(self):
        with pytest.raises(QueryError):
            solve_allocation(1e9, 0.0, 1.0, 1e-12, retained_available=0, max_n=100)

    def test_invalid_target(self):
        with pytest.raises(QueryError):
            solve_allocation(1.0, 0.5, 0.1, 0.0, retained_available=0)


# ----------------------------------------------------------------------
# evaluator integration
# ----------------------------------------------------------------------

def _correlated_world(n_nodes=36, per_node=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    tids = []
    for node in graph.nodes():
        for _ in range(per_node):
            tids.append(database.insert(node, {"v": float(rng.normal(50, 10))}))
    return graph, database, tids, rng


def _evolve(database, tids, rng, phi=0.97, mean=50.0, noise=2.0):
    for tid in tids:
        if tid in database:
            current = database.read(tid)["v"]
            database.update(
                tid, {"v": phi * current + (1 - phi) * mean + rng.normal(0, noise)}
            )


def _make_evaluators(graph, database, seed=1):
    query = Query(AggregateOp.AVG, Expression("v"))
    operator_r = SamplingOperator(
        graph, np.random.default_rng(seed), config=SamplerConfig()
    )
    operator_i = SamplingOperator(
        graph, np.random.default_rng(seed), config=SamplerConfig()
    )
    repeated = RepeatedEvaluator(
        database, operator_r, 0, query, np.random.default_rng(seed + 1)
    )
    independent = IndependentEvaluator(database, operator_i, 0, query)
    return independent, repeated


class TestRepeatedEvaluator:
    def test_first_occasion_all_fresh(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        estimate = repeated.evaluate(0, epsilon=2.0, confidence=0.95)
        assert estimate.n_retained == 0
        assert estimate.n_fresh == estimate.n_total

    def test_later_occasions_retain(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=2.0, confidence=0.95)
        _evolve(database, tids, rng)
        estimate = repeated.evaluate(1, epsilon=2.0, confidence=0.95)
        assert estimate.n_retained > 0
        assert estimate.n_fresh > 0  # always replaces a portion

    def test_uses_fewer_samples_than_independent(self):
        graph, database, tids, rng = _correlated_world()
        independent, repeated = _make_evaluators(graph, database)
        totals = {"independent": 0, "repeated": 0}
        for time in range(6):
            _evolve(database, tids, rng)
            totals["independent"] += independent.evaluate(
                time, epsilon=1.0, confidence=0.95
            ).n_total
            totals["repeated"] += repeated.evaluate(
                time, epsilon=1.0, confidence=0.95
            ).n_total
        assert totals["repeated"] < totals["independent"]

    def test_estimates_stay_accurate(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        for time in range(6):
            _evolve(database, tids, rng)
            estimate = repeated.evaluate(time, epsilon=1.5, confidence=0.95)
            truth = float(database.exact_values(Expression("v")).mean())
            # allow 2x epsilon: a single run, and the guarantee is probabilistic
            assert abs(estimate.mean - truth) < 3.0

    def test_measures_correlation(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=1.0, confidence=0.95)
        _evolve(database, tids, rng)
        repeated.evaluate(1, epsilon=1.0, confidence=0.95)
        assert repeated.current_rho is not None
        assert repeated.current_rho > 0.5  # phi=0.97 world is highly correlated

    def test_deleted_tuples_replaced(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=2.0, confidence=0.95)
        # delete most of the relation; retained pool shrinks accordingly
        for tid in tids[: len(tids) // 2]:
            database.delete(tid)
        _evolve(database, tids, rng)
        estimate = repeated.evaluate(1, epsilon=2.0, confidence=0.95)
        assert estimate.n_total > 0
        for kept in (estimate.n_retained, estimate.n_fresh):
            assert kept >= 0

    def test_reset_forgets_state(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=2.0, confidence=0.95)
        repeated.reset()
        estimate = repeated.evaluate(1, epsilon=2.0, confidence=0.95)
        assert estimate.n_retained == 0

    def test_invalid_initial_rho(self):
        graph, database, tids, rng = _correlated_world()
        query = Query(AggregateOp.AVG, Expression("v"))
        operator = SamplingOperator(graph, np.random.default_rng(0))
        with pytest.raises(QueryError):
            RepeatedEvaluator(
                database, operator, 0, query, np.random.default_rng(0), initial_rho=2.0
            )


class TestDegenerateOccasions:
    def test_all_fresh_when_no_sample_survives(self):
        """g=0: the whole retained pool died; falls back to the regular
        (all-fresh) estimate without dividing by zero."""
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=2.0, confidence=0.95)
        # kill exactly the evaluator's sample-set; replace the rows so the
        # relation itself stays populated and samplable
        for tid in set(repeated._state.tuple_ids):
            if tid in database:
                database.delete(tid)
        for node in graph.nodes():
            database.insert(node, {"v": float(rng.normal(50, 10))})
        estimate = repeated.evaluate(1, epsilon=2.0, confidence=0.95)
        assert estimate.n_retained == 0
        assert estimate.n_fresh == estimate.n_total > 0
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(estimate.mean - truth) < 5.0

    def test_combine_all_retained_uses_regression_only(self):
        """f=0: no fresh draws; the combination is the regression estimate
        alone (no division by the zero fresh count)."""
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        matched_prev = np.array([48.0, 50.0, 52.0, 49.0, 51.0])
        matched_curr = matched_prev * 0.9 + 5.0  # perfectly correlated
        estimate, variance, rho, sigma2 = repeated._combine(
            matched_prev,
            matched_curr,
            np.array([]),
            prev_estimate=50.0,
            prev_variance=0.5,
        )
        assert math.isfinite(estimate) and math.isfinite(variance)
        assert variance > 0
        # perfect correlation, clipped to the working range
        assert rho == pytest.approx(0.999)
        # regression estimate: curr_mean + b * (prev_est - prev_mean);
        # prev mean == prev estimate == 50, so it is just the current mean
        assert estimate == pytest.approx(float(matched_curr.mean()))

    def test_combine_all_retained_small_g_uses_matched_mean(self):
        """f=0 with g<3: too few pairs for a regression; falls back to the
        plain matched mean."""
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        matched_prev = np.array([48.0, 52.0])
        matched_curr = np.array([47.0, 53.0])
        estimate, variance, rho, _ = repeated._combine(
            matched_prev,
            matched_curr,
            np.array([]),
            prev_estimate=50.0,
            prev_variance=0.5,
        )
        assert rho is None
        assert estimate == pytest.approx(50.0)
        assert math.isfinite(variance) and variance > 0

    def test_combine_zero_samples_rejected(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        with pytest.raises(QueryError):
            repeated._combine(
                np.array([]), np.array([]), np.array([]), 50.0, 0.5
            )

    def test_constant_previous_values_fall_back_to_matched_mean(self):
        """Zero variance among the retained previous values: regression is
        undefined (b = cov/0); falls back to the matched mean, combined
        with the fresh portion."""
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        matched_prev = np.full(5, 50.0)
        matched_curr = np.array([49.0, 50.0, 51.0, 50.0, 50.0])
        fresh = np.array([48.0, 52.0, 50.0])
        estimate, variance, rho, _ = repeated._combine(
            matched_prev, matched_curr, fresh, 50.0, 0.5
        )
        assert rho is None
        assert math.isfinite(estimate) and math.isfinite(variance)


class TestPlanDemand:
    def test_pilot_before_first_occasion(self):
        graph, database, tids, rng = _correlated_world()
        independent, repeated = _make_evaluators(graph, database)
        pilot = repeated.config.pilot_size
        assert independent.plan_demand(2.0, 0.95) == pilot
        assert repeated.plan_demand(2.0, 0.95) == pilot

    def test_forecast_sized_from_measured_sigma(self):
        graph, database, tids, rng = _correlated_world()
        independent, _ = _make_evaluators(graph, database)
        independent.evaluate(0, epsilon=1.0, confidence=0.95)
        forecast = independent.plan_demand(1.0, 0.95)
        assert forecast >= independent.config.pilot_size
        # a looser epsilon can never demand more samples
        assert independent.plan_demand(4.0, 0.95) <= forecast

    def test_repeated_forecast_excludes_retained_portion(self):
        """RPT retention means fewer *fresh* walks than INDEP forecasts."""
        graph, database, tids, rng = _correlated_world()
        independent, repeated = _make_evaluators(graph, database)
        for time in range(3):
            _evolve(database, tids, rng)
            independent.evaluate(time, epsilon=1.0, confidence=0.95)
            repeated.evaluate(time, epsilon=1.0, confidence=0.95)
        assert (
            repeated.plan_demand(1.0, 0.95)
            < independent.plan_demand(1.0, 0.95)
        )

    def test_plan_is_a_pure_read(self):
        graph, database, tids, rng = _correlated_world()
        _, repeated = _make_evaluators(graph, database)
        repeated.evaluate(0, epsilon=1.5, confidence=0.95)
        first = repeated.plan_demand(1.5, 0.95)
        assert repeated.plan_demand(1.5, 0.95) == first  # no state change
        assert repeated._operator.samples_drawn > 0  # only evaluate() draws
        drawn_before = repeated._operator.samples_drawn
        repeated.plan_demand(1.5, 0.95)
        assert repeated._operator.samples_drawn == drawn_before
