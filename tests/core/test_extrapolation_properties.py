"""Property-based tests for the extrapolation scheduler's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extrapolation import TaylorExtrapolator


@st.composite
def smooth_history(draw):
    """A strictly-increasing-time history from a random quadratic + noise."""
    a = draw(st.floats(-0.5, 0.5))
    b = draw(st.floats(-3.0, 3.0))
    c = draw(st.floats(-50.0, 50.0))
    noise = draw(st.floats(0.0, 0.5))
    n = draw(st.integers(6, 10))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    history = []
    for t in range(n):
        value = a * t * t + b * t + c + float(rng.normal(0, noise))
        history.append((t, value))
    return history


@given(history=smooth_history(), delta=st.floats(0.5, 50.0))
@settings(max_examples=120, deadline=None)
def test_property_prediction_strictly_future_and_capped(history, delta):
    extrapolator = TaylorExtrapolator(n_points=3, max_horizon=32)
    result = extrapolator.predict_next_update(history, delta)
    t_u = history[-1][0]
    assert t_u < result.next_time <= t_u + 32
    assert result.remainder_rate >= 0.0


@given(history=smooth_history())
@settings(max_examples=80, deadline=None)
def test_property_monotone_in_delta(history):
    """A looser resolution never schedules the next snapshot earlier."""
    extrapolator = TaylorExtrapolator(n_points=3, max_horizon=64)
    small = extrapolator.predict_next_update(history, delta=1.0)
    large = extrapolator.predict_next_update(history, delta=20.0)
    assert large.next_time >= small.next_time


@given(history=smooth_history(), factor=st.floats(1.5, 10.0))
@settings(max_examples=80, deadline=None)
def test_property_safety_factor_never_later(history, factor):
    plain = TaylorExtrapolator(n_points=3, safety_factor=1.0)
    careful = TaylorExtrapolator(n_points=3, safety_factor=factor)
    assert (
        careful.predict_next_update(history, 10.0).next_time
        <= plain.predict_next_update(history, 10.0).next_time
    )


@given(
    history=smooth_history(),
    offset=st.integers(1, 1000),
    scale_value=st.floats(0.1, 10.0),
)
@settings(max_examples=80, deadline=None)
def test_property_time_translation_invariance(history, offset, scale_value):
    """Shifting all timestamps shifts the prediction by the same amount."""
    extrapolator = TaylorExtrapolator(n_points=3, max_horizon=32)
    base = extrapolator.predict_next_update(history, delta=5.0)
    shifted_history = [(t + offset, x) for t, x in history]
    shifted = extrapolator.predict_next_update(shifted_history, delta=5.0)
    assert shifted.next_time == base.next_time + offset
