"""Tests for the CLT estimation machinery (Eq. 5-6)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.estimators import (
    achieved_epsilon,
    confidence_quantile,
    required_sample_size,
    sample_mean_and_variance,
    variance_target,
)
from repro.errors import QueryError


class TestQuantile:
    def test_known_values(self):
        assert confidence_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert confidence_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_monotone(self):
        assert confidence_quantile(0.99) > confidence_quantile(0.9)

    def test_rejects_bounds(self):
        with pytest.raises(QueryError):
            confidence_quantile(0.0)
        with pytest.raises(QueryError):
            confidence_quantile(1.0)


class TestRequiredSampleSize:
    def test_eq6_value(self):
        # n = (sigma * z / eps)^2 = (8 * 1.96 / 2)^2 ~= 61.5 -> 62
        assert required_sample_size(8.0, 2.0, 0.95) == 62

    def test_monotonicity(self):
        base = required_sample_size(5.0, 1.0, 0.95)
        assert required_sample_size(10.0, 1.0, 0.95) > base  # more spread
        assert required_sample_size(5.0, 0.5, 0.95) > base  # tighter eps
        assert required_sample_size(5.0, 1.0, 0.99) > base  # more confidence

    def test_zero_sigma(self):
        assert required_sample_size(0.0, 1.0, 0.95, minimum=3) == 3

    def test_minimum_enforced(self):
        assert required_sample_size(0.1, 100.0, 0.95, minimum=5) == 5

    def test_infeasible_rejected(self):
        with pytest.raises(QueryError, match="exceeds"):
            required_sample_size(1e6, 1e-6, 0.99, maximum=1000)

    def test_invalid_inputs(self):
        with pytest.raises(QueryError):
            required_sample_size(-1.0, 1.0, 0.95)
        with pytest.raises(QueryError):
            required_sample_size(1.0, 0.0, 0.95)

    def test_consistency_with_clt(self):
        """Empirical coverage at the computed n is ~the confidence level."""
        rng = np.random.default_rng(0)
        sigma, epsilon, confidence = 4.0, 1.0, 0.9
        n = required_sample_size(sigma, epsilon, confidence)
        hits = 0
        trials = 2000
        for _ in range(trials):
            sample = rng.normal(0.0, sigma, n)
            hits += abs(sample.mean()) <= epsilon
        coverage = hits / trials
        assert abs(coverage - confidence) < 0.04


class TestVarianceTarget:
    def test_inverse_of_epsilon(self):
        target = variance_target(2.0, 0.95)
        assert achieved_epsilon(target, 0.95) == pytest.approx(2.0)

    def test_rejects_zero_epsilon(self):
        with pytest.raises(QueryError):
            variance_target(0.0, 0.95)


class TestSampleMoments:
    def test_population_style_variance(self):
        mean, variance = sample_mean_and_variance(np.array([1.0, 3.0]))
        assert mean == 2.0
        assert variance == 1.0  # (1 + 1) / 2, the 1/n convention

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            sample_mean_and_variance(np.array([]))

    def test_achieved_epsilon_negative_variance(self):
        with pytest.raises(QueryError):
            achieved_epsilon(-1.0, 0.95)
