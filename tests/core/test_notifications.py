"""Tests for the delta-threshold notification semantics."""

import numpy as np
import pytest

from repro.core.result import NotificationFilter, UpdateRecord
from repro.errors import QueryError


def _record(time, estimate):
    return UpdateRecord(time=time, estimate=estimate)


class TestNotificationFilter:
    def test_first_update_always_fires(self):
        fired = []
        filter_ = NotificationFilter(5.0, fired.append)
        assert filter_.offer(_record(0, 10.0))
        assert len(fired) == 1

    def test_small_changes_suppressed(self):
        fired = []
        filter_ = NotificationFilter(5.0, fired.append)
        filter_.offer(_record(0, 10.0))
        assert not filter_.offer(_record(1, 12.0))
        assert not filter_.offer(_record(2, 14.9))
        assert len(fired) == 1
        assert filter_.updates_seen == 3
        assert filter_.notifications_fired == 1

    def test_threshold_crossing_fires(self):
        fired = []
        filter_ = NotificationFilter(5.0, fired.append)
        filter_.offer(_record(0, 10.0))
        assert filter_.offer(_record(1, 15.0))  # exactly delta
        assert fired[-1].estimate == 15.0

    def test_reference_is_last_notified_not_last_update(self):
        """Drift accumulates across suppressed updates (no re-anchoring)."""
        fired = []
        filter_ = NotificationFilter(5.0, fired.append)
        filter_.offer(_record(0, 10.0))
        filter_.offer(_record(1, 13.0))  # suppressed
        assert filter_.offer(_record(2, 15.5))  # 5.5 from 10.0 -> fires
        assert len(fired) == 2

    def test_zero_delta_fires_always(self):
        fired = []
        filter_ = NotificationFilter(0.0, fired.append)
        for t in range(3):
            assert filter_.offer(_record(t, 1.0))
        assert len(fired) == 3

    def test_negative_delta_rejected(self):
        with pytest.raises(QueryError):
            NotificationFilter(-1.0, lambda record: None)


class TestEngineSubscription:
    def _engine(self):
        from repro.core.engine import DigestEngine, EngineConfig
        from repro.core.query import ContinuousQuery, Precision, parse_query
        from repro.db.relation import P2PDatabase, Schema
        from repro.network.graph import OverlayGraph
        from repro.network.topology import mesh_topology

        rng = np.random.default_rng(0)
        graph = OverlayGraph(mesh_topology(25), n_nodes=25)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        tids = []
        for node in graph.nodes():
            for _ in range(4):
                tids.append(database.insert(node, {"v": float(rng.normal(50, 5))}))
        continuous = ContinuousQuery(
            parse_query("SELECT AVG(v) FROM R"),
            Precision(delta=3.0, epsilon=1.0, confidence=0.95),
            duration=12,
        )
        engine = DigestEngine(
            graph,
            database,
            continuous,
            origin=0,
            rng=np.random.default_rng(1),
            config=EngineConfig(scheduler="all", evaluator="independent"),
        )
        return engine, database, tids

    def test_subscription_uses_query_delta(self):
        engine, database, tids = self._engine()
        notified = []
        subscription = engine.subscribe(notified.append)
        for t in range(12):
            if t == 6:  # one large shift mid-run
                for tid in tids:
                    database.update(tid, {"v": database.read(tid)["v"] + 20.0})
            engine.step(t)
        # first snapshot + the shift: small sampling noise stays quiet
        assert subscription.notifications_fired == 2
        assert notified[1].estimate - notified[0].estimate > 10.0

    def test_custom_delta_override(self):
        engine, _, _ = self._engine()
        hair_trigger = engine.subscribe(lambda record: None, delta=0.0)
        for t in range(5):
            engine.step(t)
        assert hair_trigger.notifications_fired == 5
