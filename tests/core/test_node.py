"""Tests for the multi-query Digest node."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig
from repro.core.node import DigestNode, SharedSampleSource
from repro.core.query import ContinuousQuery, Precision, parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.operator import SamplingOperator
from repro.sim.engine import SimulationEngine


def _world(seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(36), n_nodes=36)
    database = P2PDatabase(Schema(("mem", "cpu")), graph.nodes())
    for node in graph.nodes():
        for _ in range(5):
            database.insert(
                node,
                {"mem": float(rng.normal(50, 8)), "cpu": float(rng.uniform(0, 4))},
            )
    return graph, database


def _query(text="SELECT AVG(mem) FROM R", delta=4.0, epsilon=2.0, duration=10):
    return ContinuousQuery(
        parse_query(text), Precision(delta, epsilon, 0.95), duration=duration
    )


class TestRegistration:
    def test_register_and_step(self):
        graph, database = _world()
        node = DigestNode(graph, database, 0, np.random.default_rng(1))
        qid_avg = node.register(
            _query(), EngineConfig(scheduler="all", evaluator="independent")
        )
        qid_sum = node.register(
            _query("SELECT SUM(mem) FROM R", epsilon=400.0),
            EngineConfig(scheduler="all", evaluator="independent"),
        )
        assert node.query_ids() == [qid_avg, qid_sum]
        executed = node.step(0)
        assert set(executed) == {qid_avg, qid_sum}
        truth = float(database.exact_values(Expression("mem")).mean())
        assert abs(executed[qid_avg].aggregate - truth) < 5.0
        assert abs(executed[qid_sum].aggregate - truth * database.n_tuples) < 2000

    def test_deregister(self):
        graph, database = _world()
        node = DigestNode(graph, database, 0, np.random.default_rng(1))
        qid = node.register(_query())
        node.deregister(qid)
        assert node.query_ids() == []
        with pytest.raises(QueryError):
            node.engine(qid)
        with pytest.raises(QueryError):
            node.deregister(qid)

    def test_unknown_origin_rejected(self):
        graph, database = _world()
        with pytest.raises(QueryError):
            DigestNode(graph, database, 10**6, np.random.default_rng(0))

    def test_results_accessible(self):
        graph, database = _world()
        node = DigestNode(graph, database, 0, np.random.default_rng(1))
        qid = node.register(
            _query(), EngineConfig(scheduler="all", evaluator="independent")
        )
        node.step(0)
        assert len(node.result(qid)) == 1


class TestSampleSharing:
    def test_shared_cache_reduces_fresh_samples(self):
        """Two identical queries co-scheduled: sharing halves the draws."""
        totals = {}
        for share in (True, False):
            graph, database = _world(seed=2)
            node = DigestNode(
                graph,
                database,
                0,
                np.random.default_rng(3),
                share_samples=share,
            )
            for _ in range(3):
                node.register(
                    _query(duration=5),
                    EngineConfig(scheduler="all", evaluator="independent"),
                )
            for t in range(5):
                node.step(t)
            totals[share] = node.ledger.walk_steps
        assert totals[True] < 0.6 * totals[False]

    def test_cache_counts_reuse(self):
        graph, database = _world(seed=2)
        node = DigestNode(graph, database, 0, np.random.default_rng(3))
        for _ in range(2):
            node.register(
                _query(duration=2),
                EngineConfig(scheduler="all", evaluator="independent"),
            )
        node.step(0)
        assert node.samples_saved_by_sharing() > 0

    def test_cache_resets_between_occasions(self):
        graph, database = _world(seed=2)
        operator = SamplingOperator(graph, np.random.default_rng(4))
        source = SharedSampleSource(operator)
        source.begin_occasion(0)
        first = source.sample_tuples(database, 5, origin=0)
        source.begin_occasion(1)
        assert source._cache == []
        second = source.sample_tuples(database, 5, origin=0)
        assert len(second) == 5

    def test_cache_serves_same_occasion(self):
        graph, database = _world(seed=2)
        operator = SamplingOperator(graph, np.random.default_rng(4))
        source = SharedSampleSource(operator)
        source.begin_occasion(0)
        first = source.sample_tuples(database, 8, origin=0)
        again = source.sample_tuples(database, 5, origin=0)
        assert [s.tuple_id for s in again] == [s.tuple_id for s in first[:5]]

    def test_cache_drops_deleted_tuples(self):
        graph, database = _world(seed=2)
        operator = SamplingOperator(graph, np.random.default_rng(4))
        source = SharedSampleSource(operator)
        source.begin_occasion(0)
        first = source.sample_tuples(database, 5, origin=0)
        database.delete(first[0].tuple_id)
        served = source.sample_tuples(database, 5, origin=0)
        assert all(s.tuple_id in database for s in served)
        assert len(served) == 5

    def test_estimates_remain_accurate_with_sharing(self):
        graph, database = _world(seed=5)
        node = DigestNode(graph, database, 0, np.random.default_rng(6))
        qids = [
            node.register(
                _query(duration=6, epsilon=1.5),
                EngineConfig(scheduler="all", evaluator="independent"),
            )
            for _ in range(3)
        ]
        truth = float(database.exact_values(Expression("mem")).mean())
        for t in range(6):
            executed = node.step(t)
            for estimate in executed.values():
                assert abs(estimate.aggregate - truth) < 4.0


class TestSimulationAttachment:
    def test_attach(self):
        graph, database = _world()
        node = DigestNode(graph, database, 0, np.random.default_rng(1))
        qid = node.register(
            _query(duration=5),
            EngineConfig(scheduler="all", evaluator="independent"),
        )
        simulation = SimulationEngine()
        node.attach(simulation, until=10)
        simulation.run_until(10)
        assert node.engine(qid).metrics.snapshot_queries == 5

    def test_mixed_schedulers(self):
        """PRED and ALL queries coexist; each keeps its own cadence."""
        graph, database = _world()
        node = DigestNode(graph, database, 0, np.random.default_rng(1))
        qid_all = node.register(
            _query(duration=20),
            EngineConfig(scheduler="all", evaluator="independent"),
        )
        qid_pred = node.register(
            _query(duration=20, delta=8.0),
            EngineConfig(scheduler="pred", evaluator="independent"),
        )
        for t in range(20):
            node.step(t)
        assert node.engine(qid_all).metrics.snapshot_queries == 20
        assert node.engine(qid_pred).metrics.snapshot_queries < 20
