"""Cross-module property-based tests (hypothesis).

Each property pins an invariant the system's correctness rests on, over
randomized structures rather than hand-picked cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.repeated import combined_variance, solve_allocation
from repro.core.result import NotificationFilter, UpdateRecord
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.sampling.metropolis import metropolis_matrix, stationary_distribution
from repro.sampling.weights import table_weights


# ----------------------------------------------------------------------
# Metropolis stationarity over random graphs and weights
# ----------------------------------------------------------------------

@st.composite
def connected_graph_with_weights(draw):
    n = draw(st.integers(3, 12))
    # random spanning tree guarantees connectivity...
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        edges.add((parent, node))
    # ...plus random extra edges
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    weights = {
        node: draw(st.floats(0.1, 10.0)) for node in range(n)
    }
    return sorted(edges), n, weights


@given(data=connected_graph_with_weights())
@settings(max_examples=60, deadline=None)
def test_property_metropolis_stationary_on_random_graphs(data):
    edges, n, weights = data
    graph = OverlayGraph(edges, n_nodes=n)
    weight = table_weights(weights)
    node_ids, matrix = metropolis_matrix(graph, weight)
    _, pi = stationary_distribution(graph, weight)
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-10)
    assert (matrix >= -1e-12).all()
    np.testing.assert_allclose(pi @ matrix, pi, atol=1e-10)
    balance = pi[:, None] * matrix
    np.testing.assert_allclose(balance, balance.T, atol=1e-10)


# ----------------------------------------------------------------------
# overlay graph vs a reference model under random operations
# ----------------------------------------------------------------------

@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["add", "remove", "join", "leave"]), st.integers(0, 9), st.integers(0, 9)),
        max_size=40,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_graph_matches_reference_model(operations):
    graph = OverlayGraph([(0, 1)], n_nodes=3)
    model_nodes = {0, 1, 2}
    model_edges = {(0, 1)}

    def norm(u, v):
        return (min(u, v), max(u, v))

    for op, a, b in operations:
        nodes = sorted(model_nodes)
        if op == "add" and len(nodes) >= 2:
            u, v = nodes[a % len(nodes)], nodes[b % len(nodes)]
            if u != v:
                graph.add_edge(u, v)
                model_edges.add(norm(u, v))
        elif op == "remove" and model_edges:
            edge = sorted(model_edges)[a % len(model_edges)]
            graph.remove_edge(*edge)
            model_edges.discard(edge)
        elif op == "join" and nodes:
            anchor = nodes[a % len(nodes)]
            new = graph.join(attach_to=[anchor])
            model_nodes.add(new)
            model_edges.add(norm(new, anchor))
        elif op == "leave" and len(nodes) > 1:
            victim = nodes[a % len(nodes)]
            neighbors = list(graph.neighbors(victim))
            graph.leave(victim, rewire=True)
            model_nodes.discard(victim)
            model_edges = {e for e in model_edges if victim not in e}
            for left, right in zip(neighbors, neighbors[1:]):
                model_edges.add(norm(left, right))
    assert set(graph.nodes()) == model_nodes
    assert set(graph.edges()) == model_edges
    for node in model_nodes:
        assert graph.degree(node) == sum(1 for e in model_edges if node in e)


# ----------------------------------------------------------------------
# departures with rewiring never disconnect the overlay
# ----------------------------------------------------------------------

@given(
    data=connected_graph_with_weights(),
    departures=st.lists(st.integers(0, 11), max_size=8),
    crash_seed=st.integers(0, 1_000),
    crash_probability=st.floats(0.0, 0.5),
)
@settings(max_examples=80, deadline=None)
def test_property_rewire_preserves_connectivity(
    data, departures, crash_seed, crash_probability
):
    from repro.network.faults import CrashProcess, FaultConfig, FaultPlan

    edges, n, _ = data
    graph = OverlayGraph(edges, n_nodes=n)
    assert graph.is_connected()
    # explicit departures with ring rewiring...
    for pick in departures:
        nodes = sorted(graph.nodes())
        if len(nodes) <= 2:
            break
        graph.leave(nodes[pick % len(nodes)], rewire=True)
        assert graph.is_connected()
    # ...then randomized crash rounds on top of whatever is left
    plan = FaultPlan(
        FaultConfig(crash_probability=crash_probability, min_nodes=2),
        rng=crash_seed,
    )
    crash = CrashProcess(graph, plan)
    for time in range(4):
        crash.step(time)
        assert graph.is_connected()


# ----------------------------------------------------------------------
# partition heal repair: connectivity restored within degree bounds
# ----------------------------------------------------------------------

def _reference_components(nodes, edges):
    """Connected components of an (nodes, edges) snapshot, test-local."""
    adjacency = {node: set() for node in nodes}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    seen, components = set(), []
    for start in nodes:
        if start in seen:
            continue
        component, frontier = {start}, [start]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        seen |= component
        components.append(sorted(component))
    return components


@given(
    data=connected_graph_with_weights(),
    seed=st.integers(0, 10_000),
    duration=st.integers(2, 5),
    max_degree=st.integers(2, 6),
    leave_probability=st.floats(0.0, 0.35),
    join_rate=st.floats(0.0, 1.5),
    crash_probability=st.floats(0.0, 0.3),
)
@settings(max_examples=60, deadline=None)
def test_property_partition_heal_restores_connectivity_within_bounds(
    data,
    seed,
    duration,
    max_degree,
    leave_probability,
    join_rate,
    crash_probability,
):
    """Under any churn+crash+partition interleaving, the heal-time repair
    reconnects the survivors, and every bridge endpoint either had degree
    headroom or sat in a component where nobody did (connectivity wins)."""
    from repro.network.churn import ChurnConfig, ChurnProcess
    from repro.network.faults import CrashProcess, FaultConfig, FaultPlan
    from repro.network.partitions import (
        PartitionEpisode,
        PartitionPlan,
        PartitionSchedule,
    )

    edges, n, _ = data
    graph = OverlayGraph(edges, n_nodes=n)
    plan = PartitionPlan(
        PartitionSchedule(
            episodes=(PartitionEpisode(start=0, duration=duration),)
        ),
        rng=seed + 1,
        heal_policy="repair",
        max_degree=max_degree,
    )
    churn = ChurnProcess(
        graph,
        # rewire=False departures are what genuinely fragments the
        # overlay mid-episode; the heal-time repair must cope with it
        ChurnConfig(
            leave_probability=leave_probability,
            join_rate=join_rate,
            rewire=False,
            min_nodes=2,
        ),
        rng=np.random.default_rng(seed),
    )
    crash = CrashProcess(
        graph,
        FaultPlan(
            FaultConfig(crash_probability=crash_probability, min_nodes=2),
            rng=seed + 2,
        ),
    )
    for time in range(duration):
        plan.step(time, graph)
        churn.step()
        crash.step(time)

    # snapshot the pre-heal state the repair must respect
    degrees_before = {node: graph.degree(node) for node in graph.nodes()}
    edges_before = set(graph.edges())
    components_before = _reference_components(graph.nodes(), edges_before)

    plan.step(duration, graph)  # the heal tick
    assert not plan.active
    if len(graph) > 1:
        assert graph.is_connected()

    added = set(graph.edges()) - edges_before
    component_of = {
        node: index
        for index, component in enumerate(components_before)
        for node in component
    }
    saturated = [
        all(degrees_before[node] >= max_degree for node in component)
        for component in components_before
    ]
    for u, v in added:
        for endpoint in (u, v):
            assert (
                degrees_before[endpoint] < max_degree
                or saturated[component_of[endpoint]]
            )
    # components chain left-to-right, so repair adds at most two bridge
    # edges per node (an interior component's inbound and outbound link)
    for node in degrees_before:
        assert graph.degree(node) <= degrees_before[node] + 2


# ----------------------------------------------------------------------
# allocation solver invariants
# ----------------------------------------------------------------------

@given(
    sigma2=st.floats(0.1, 50.0),
    rho=st.floats(0.0, 0.98),
    var_prev_scale=st.floats(0.1, 3.0),
    target_scale=st.floats(0.05, 0.9),
    retained=st.integers(0, 500),
)
@settings(max_examples=150, deadline=None)
def test_property_allocation_meets_target_minimally(
    sigma2, rho, var_prev_scale, target_scale, retained
):
    base_n = 100
    var_prev = var_prev_scale * sigma2 / base_n
    v_target = target_scale * sigma2 / 10
    n, g = solve_allocation(
        sigma2, rho, var_prev, v_target, retained_available=retained, min_n=2
    )
    assert 0 <= g <= min(n, retained)
    achieved = combined_variance(sigma2, n, g, rho, var_prev)
    assert achieved <= v_target * (1 + 1e-9)
    # never cheaper than the information-theoretic floor of this model:
    # even with a free perfect prior, f fresh samples cap W at n/sigma2 + W_g
    if n > 2:
        best_prev = min(
            combined_variance(sigma2, n - 1, candidate, rho, var_prev)
            for candidate in range(0, min(n - 1, retained) + 1)
        )
        assert best_prev > v_target * (1 - 1e-9)


# ----------------------------------------------------------------------
# notification filter: no firing within the delta window
# ----------------------------------------------------------------------

@given(
    delta=st.floats(0.1, 10.0),
    estimates=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
)
@settings(max_examples=150, deadline=None)
def test_property_notifications_respect_delta(delta, estimates):
    fired_values = []
    filter_ = NotificationFilter(delta, lambda r: fired_values.append(r.estimate))
    for time, estimate in enumerate(estimates):
        filter_.offer(UpdateRecord(time=time, estimate=estimate))
    # consecutive notifications always differ by >= delta
    for previous, current in zip(fired_values, fired_values[1:]):
        assert abs(current - previous) >= delta
    # and every suppressed update was within delta of the last notification
    assert filter_.notifications_fired == len(fired_values)
    assert filter_.updates_seen == len(estimates)


# ----------------------------------------------------------------------
# trace round trip on scripted random worlds
# ----------------------------------------------------------------------

@given(
    seed=st.integers(0, 10_000),
    n_steps=st.integers(2, 8),
)
@settings(max_examples=25, deadline=None)
def test_property_trace_roundtrip_random_worlds(seed, n_steps):
    from repro.datasets.temperature import TemperatureConfig, TemperatureDataset
    from repro.datasets.traces import TraceRecorder, replay_trace

    config = TemperatureConfig().scaled(0.02)
    source = TemperatureDataset(config, seed=seed).build()
    recorder = TraceRecorder(source)
    averages = []
    for t in range(n_steps):
        source.step(t)
        recorder.observe(t)
        averages.append(source.true_average())
    replayed = replay_trace(recorder.finish())
    for t in range(n_steps):
        replayed.step(t)
        assert replayed.true_average() == pytest.approx(averages[t], rel=1e-9)
