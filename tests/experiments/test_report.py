"""Tests for table rendering."""

from repro.experiments.report import format_table, format_value


def test_format_value():
    assert format_value(3) == "3"
    assert format_value(True) == "True"
    assert format_value(3.14159) == "3.142"
    assert format_value(1.23e9) == "1.230e+09"
    assert format_value(1e-5) == "1.000e-05"
    assert format_value(0.0) == "0.000"
    assert format_value("x") == "x"


def test_format_table_alignment():
    table = format_table(
        ["name", "count"],
        [["a", 1], ["bbbb", 22]],
        title="Demo",
    )
    lines = table.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "count" in lines[1]
    assert set(lines[2]) == {"-"}
    # all rows same width
    assert len(lines[3]) == len(lines[4])


def test_format_table_no_title():
    table = format_table(["h"], [[1]])
    assert table.splitlines()[0].startswith("h")
