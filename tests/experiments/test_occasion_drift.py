"""Tests for the sampling-time-scale robustness experiment."""

import numpy as np
import pytest

from repro.experiments import occasion_drift


class TestDetrendedEstimate:
    def test_exact_on_linear_data(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        values = 5.0 + 2.0 * times
        assert occasion_drift.detrended_estimate(
            times, values, at=3.0
        ) == pytest.approx(11.0)

    def test_extrapolates_to_target(self):
        times = np.array([0.0, 1.0])
        values = np.array([0.0, 1.0])
        assert occasion_drift.detrended_estimate(
            times, values, at=4.0
        ) == pytest.approx(4.0)

    def test_degenerate_window_falls_back_to_mean(self):
        times = np.zeros(5)
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert occasion_drift.detrended_estimate(
            times, values, at=10.0
        ) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            occasion_drift.detrended_estimate(np.array([]), np.array([]), 0.0)


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return occasion_drift.run(
            windows=(1, 8, 16), occasions=8, n_nodes=80, seed=0
        )

    def test_truth_drift_scales_with_window(self, result):
        assert result.rows[-1].truth_drift > 4 * result.rows[0].truth_drift

    def test_naive_error_grows(self, result):
        assert result.rows[-1].naive_mae > 2 * result.rows[0].naive_mae

    def test_detrending_suppresses_growth(self, result):
        last = result.rows[-1]
        assert last.detrended_mae < 0.5 * last.naive_mae

    def test_table_renders(self, result):
        assert "occasion length" in result.to_table()
