"""Acceptance tests for the partition-tolerance experiment.

Encodes the PR's robustness criteria directly: during every open cut all
emitted estimates are honestly re-scoped (zero dishonest cells), every
query returns to non-degraded within the configured post-heal bound, the
scoped error beats chasing the unreachable global truth, and the whole
sweep is bit-deterministic under a fixed seed with an exactly-verifiable
trace.
"""

from repro.experiments import partition_tolerance
from repro.obs.analysis import verify_trace_consistency
from repro.obs.schema import (
    EVENT_PARTITION_HEAL,
    EVENT_PARTITION_OPEN,
    EVENT_POOL_INVALIDATE,
    SPAN_PARTITION_CELL,
)


def _smoke(seed=0):
    return partition_tolerance.run(
        partition_tolerance.smoke_config(), seed=seed
    )


class TestSweep:
    def test_runs_without_exceptions_and_covers_the_grid(self):
        result = _smoke()
        config = result.config
        assert len(result.rows) == len(config.widths) * len(
            config.durations
        ) * len(config.heal_policies)
        assert {row.heal_policy for row in result.rows} == {
            "repair",
            "passive",
        }

    def test_every_partitioned_estimate_is_honest(self):
        result = _smoke()
        for row in result.rows:
            assert row.n_partitioned > 0, (
                f"cell (width={row.width}, duration={row.duration}, "
                f"heal={row.heal_policy}) never saw an open cut"
            )
            assert row.n_dishonest == 0
            assert row.min_fraction < 1.0

    def test_queries_recover_within_the_bound(self):
        result = _smoke()
        for row in result.rows:
            assert row.recovered
            assert row.recovery_occasions is not None
            assert row.recovery_occasions <= result.config.recovery_bound

    def test_scoped_error_is_the_right_yardstick(self):
        """During the cut the estimate tracks the reachable region; its
        error against the scoped truth stays in the same band as the
        clean-phase error against the global truth."""
        result = _smoke()
        for row in result.rows:
            assert row.error_scoped < 5 * max(row.error_clean, 0.1)

    def test_partition_lifecycle_recorded_per_cell(self):
        result = _smoke()
        for row in result.rows:
            assert row.faults["partition_open"] == 1
            assert row.faults["partition_heal"] == 1

    def test_metrics_and_trace_populated(self):
        result = _smoke()
        assert result.metrics.snapshot_queries > 0
        assert result.metrics.degraded_estimates > 0
        assert result.metrics.has_series("min_reachable_fraction")
        assert result.metrics.has_series("dishonest_estimates")
        assert result.trace is not None
        cells = [
            span
            for span in result.trace.spans
            if span.name == SPAN_PARTITION_CELL
        ]
        assert len(cells) == len(result.rows)
        for span in cells:
            assert span.attrs["n_dishonest"] == 0
        names = [event.name for event in result.trace.events]
        assert names.count(EVENT_PARTITION_OPEN) == len(result.rows)
        assert names.count(EVENT_PARTITION_HEAL) == len(result.rows)
        # the pool is invalidated at the cut and again at the heal
        assert names.count(EVENT_POOL_INVALIDATE) == 2 * len(result.rows)

    def test_trace_counters_verify_exactly(self):
        result = _smoke()
        assert result.trace is not None
        assert verify_trace_consistency(result.trace, result.metrics) == []

    def test_table_renders(self):
        text = _smoke().to_table()
        assert "Partition tolerance" in text
        assert "dishonest" in text
        assert "recovered" in text


class TestDeterminism:
    def test_two_runs_produce_identical_rows(self):
        a, b = _smoke(seed=3), _smoke(seed=3)
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a == row_b

    def test_different_seeds_differ(self):
        a, b = _smoke(seed=0), _smoke(seed=99)
        assert any(
            (ra.error_scoped, ra.faults) != (rb.error_scoped, rb.faults)
            for ra, rb in zip(a.rows, b.rows)
        )


class TestMain:
    def test_main_smoke_exits_zero(self, capsys):
        assert (
            partition_tolerance.main(
                ["--smoke", "--seed", "1", "--verify-trace"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Partition tolerance" in out
        assert "consistency: OK" in out

    def test_main_exports_trace(self, tmp_path, capsys):
        path = tmp_path / "partitions.jsonl"
        assert (
            partition_tolerance.main(
                ["--smoke", "--trace-out", str(path)]
            )
            == 0
        )
        assert path.exists()
        assert "trace:" in capsys.readouterr().out
