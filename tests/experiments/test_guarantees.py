"""Tests for the guarantee-validation experiments."""

import pytest

from repro.experiments import guarantees


@pytest.fixture(scope="module")
def coverage_result():
    return guarantees.coverage(
        scale=0.05, trials=3, steps_per_trial=15, seed=0
    )


class TestCoverage:
    def test_coverage_near_confidence(self, coverage_result):
        """Empirical (epsilon, p) coverage within sampling slack of p."""
        assert coverage_result.snapshots >= 30
        assert coverage_result.coverage >= coverage_result.confidence - 0.15

    def test_table_renders(self, coverage_result):
        assert "empirical coverage" in coverage_result.to_table()


class TestResolution:
    def test_violation_rate_small(self):
        result = guarantees.resolution(scale=0.05, seed=0, n_steps=40)
        assert result.skipped_steps > 0  # PRED actually skipped something
        assert result.violation_rate <= 0.25

    def test_table_renders(self):
        result = guarantees.resolution(scale=0.05, seed=0, n_steps=25)
        assert "violation rate" in result.to_table()
