"""Shape tests for the per-figure experiment runners.

Each paper artifact has a qualitative *shape* that must reproduce at any
scale (Section VI / DESIGN.md): these tests run the experiments at tiny
scale and assert those shapes, not absolute numbers.
"""

import math

import numpy as np
import pytest

from repro.experiments import ablations, fig4a, fig4b, fig5a, fig5b, mixing, table1, table2

TINY = 0.05


@pytest.fixture(scope="module")
def fig4a_result():
    return fig4a.run(scale=TINY, ratios=(0.1, 1.0, 2.0), pred_ks=(2, 3))


@pytest.fixture(scope="module")
def fig4b_result():
    return fig4b.run(scale=TINY, epsilon_ratios=(0.15, 0.3))


@pytest.fixture(scope="module")
def fig5a_result():
    return fig5a.run(scale=TINY)


@pytest.fixture(scope="module")
def fig5b_result():
    # the push-vs-sample crossover sits near scale ~0.15 (DESIGN.md E4);
    # run above it so the paper's full ordering is expressed
    return fig5b.run(scale=0.25)


class TestFig4a:
    def test_pred_never_exceeds_all(self, fig4a_result):
        for algorithm in fig4a_result.algorithms[1:]:
            for index in range(len(fig4a_result.ratios)):
                assert (
                    fig4a_result.snapshot_queries[algorithm][index]
                    <= fig4a_result.snapshot_queries["ALL"][index]
                )

    def test_all_runs_every_step(self, fig4a_result):
        assert all(
            count == fig4a_result.total_steps
            for count in fig4a_result.snapshot_queries["ALL"]
        )

    def test_large_delta_reduces_queries(self, fig4a_result):
        """Paper: big reductions once delta/sigma ~ 1."""
        last = len(fig4a_result.ratios) - 1
        for algorithm in fig4a_result.algorithms[1:]:
            assert fig4a_result.reduction_vs_all(algorithm, last) > 0.5

    def test_small_delta_close_to_all(self, fig4a_result):
        """Paper: little to skip when delta is below the jitter scale."""
        for algorithm in fig4a_result.algorithms[1:]:
            assert fig4a_result.reduction_vs_all(algorithm, 0) < 0.7

    def test_table_renders(self, fig4a_result):
        assert "delta/sigma" in fig4a_result.to_table()


class TestFig4b:
    def test_rpt_at_most_indep(self, fig4b_result):
        for indep, rpt in zip(
            fig4b_result.samples_indep, fig4b_result.samples_rpt
        ):
            assert rpt <= indep * 1.05  # tiny slack for top-up noise

    def test_samples_fall_with_epsilon(self, fig4b_result):
        assert fig4b_result.samples_indep[0] > fig4b_result.samples_indep[-1]

    def test_improvement_factor_positive(self, fig4b_result):
        assert fig4b_result.improvement_factor >= 1.0

    def test_fresh_below_total(self, fig4b_result):
        for fresh, total in zip(fig4b_result.fresh_rpt, fig4b_result.samples_rpt):
            assert fresh <= total


class TestFig5a:
    def test_digest_is_cheapest(self, fig5a_result):
        digest = fig5a_result.totals["PRED3+RPT"]
        for name, total in fig5a_result.totals.items():
            if name != "PRED3+RPT":
                assert digest <= total

    def test_naive_is_most_expensive(self, fig5a_result):
        naive = fig5a_result.totals["ALL+INDEP"]
        for total in fig5a_result.totals.values():
            assert total <= naive

    def test_digest_vs_naive_substantial(self, fig5a_result):
        """Paper: up to 3.2x on TEMPERATURE; require at least 2x here."""
        assert fig5a_result.digest_vs_naive > 2.0

    def test_rpt_improvement_factor(self, fig5a_result):
        assert fig5a_result.rpt_improvement > 1.0


class TestFig5b:
    def test_paper_ordering(self, fig5b_result):
        messages = fig5b_result.messages
        assert messages["Digest(PRED3+RPT)"] < messages["ALL+INDEP"]
        assert messages["ALL+INDEP"] < messages["ALL+FILTER"]
        assert messages["ALL+FILTER"] < messages["ALL+ALL"]

    def test_digest_margin_large(self, fig5b_result):
        """Paper: >=1 order of magnitude over FILTER at full scale; the gap
        shrinks with scale, so require a 3x margin at this tiny scale."""
        assert fig5b_result.ratio("ALL+FILTER") > 3.0

    def test_table_renders(self, fig5b_result):
        assert "total messages" in fig5b_result.to_table()


class TestTable1:
    def test_closed_forms_verified(self):
        result = table1.simulate(rho=0.85, n=80, trials=1500, seed=1)
        for name, empirical in result.empirical.items():
            theory = result.theoretical[name]
            assert empirical == pytest.approx(theory, rel=0.25), name

    def test_combined_beats_both_parts(self):
        result = table1.simulate(rho=0.85, n=80, trials=1500, seed=1)
        combined = result.empirical["combined"]
        assert combined < result.empirical["fresh (regular)"]
        assert combined < result.empirical["retained (regression)"]


class TestTable2:
    @pytest.mark.parametrize("dataset", ["temperature", "memory"])
    def test_calibration(self, dataset):
        result = table2.run(dataset=dataset, scale=0.1, seed=0, measure_steps=40)
        assert result.measured_rho == pytest.approx(result.paper_rho, abs=0.08)
        assert result.measured_sigma == pytest.approx(
            result.paper_sigma, rel=0.15
        )

    def test_full_scale_counts_match(self):
        # counts are by construction; verify via the config, not a build
        from repro.datasets.temperature import TemperatureConfig

        config = TemperatureConfig()
        paper = table2.PAPER_ROWS["temperature"]
        assert config.n_nodes == paper["nodes"]
        assert config.n_units == paper["units"]
        assert config.n_units * config.n_steps == paper["tuples"]


class TestMixing:
    def test_power_law_poly_log(self):
        """Theorem 4 shape: tau / log^4 N stays bounded on power-law graphs."""
        rows = [
            mixing.measure("power_law", size, n_samples=20, seed=0)
            for size in (128, 512)
        ]
        ratios = [row.log4_ratio for row in rows]
        assert ratios[1] < 4 * ratios[0]

    def test_bound_dominates_empirical(self):
        row = mixing.measure("power_law", 128, n_samples=10, seed=0)
        assert row.empirical_mix <= row.theorem3_bound

    def test_messages_per_sample_reasonable(self):
        row = mixing.measure("power_law", 256, n_samples=50, seed=0)
        assert 5 <= row.messages_per_sample <= 500


class TestAblations:
    def test_laziness_required_on_bipartite(self):
        result = ablations.laziness_ablation(n_nodes=32, steps=2000)
        assert result.tv_lazy < 0.01
        assert result.tv_nonlazy > 0.4  # oscillates forever

    def test_continued_walks_cheaper(self):
        result = ablations.continued_walk_ablation(n_nodes=150, n_samples=25)
        assert result.msgs_continued < result.msgs_fresh

    def test_cluster_sampling_worse(self):
        result = ablations.cluster_sampling_ablation(trials=30)
        assert result.rmse_cluster > 1.5 * result.rmse_two_stage

    def test_replacement_policy(self):
        result = ablations.replacement_policy_ablation(rho=0.9, n=100)
        assert result.variance_all_replace == pytest.approx(0.01)
        assert result.variance_all_retain == pytest.approx(0.01)
        assert result.variance_optimal < 0.01
