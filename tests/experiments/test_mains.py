"""Tests for the experiment ``main()`` entry points (chart integration).

The heavy computation is monkeypatched with canned results so these only
exercise the reporting paths: tables render, ASCII charts attach, and
derived statistics print without error.
"""

import pytest

from repro.experiments import fig4a, fig4b, fig5a, fig5b


def test_fig4a_main_prints_chart(monkeypatch, capsys):
    canned = fig4a.Fig4aResult(
        dataset="temperature",
        sigma=8.0,
        ratios=[0.1, 1.0],
        algorithms=["ALL", "PRED2"],
        snapshot_queries={"ALL": [50, 50], "PRED2": [40, 10]},
        total_steps=50,
    )
    monkeypatch.setattr(fig4a, "run", lambda **kwargs: canned)
    fig4a.main()
    out = capsys.readouterr().out
    assert "Figure 4-a" in out
    assert "delta/sigma" in out
    assert "o = ALL" in out  # the chart legend
    assert "reduction vs ALL" in out


def test_fig4b_main_prints_charts(monkeypatch, capsys):
    canned = fig4b.Fig4bResult(
        dataset="temperature",
        sigma=8.0,
        epsilon_ratios=[0.1, 0.3],
        samples_indep=[400.0, 45.0],
        samples_rpt=[250.0, 34.0],
        fresh_rpt=[130.0, 20.0],
    )
    monkeypatch.setattr(fig4b, "run", lambda **kwargs: canned)
    fig4b.main()
    out = capsys.readouterr().out
    assert out.count("samples/query vs epsilon") == 2  # both datasets
    assert "improvement factor" in out


def test_fig5a_main(monkeypatch, capsys):
    canned = fig5a.Fig5aResult(
        dataset="temperature",
        sigma=8.0,
        totals={name: 100 for name, _, _ in fig5a.COMBINATIONS},
        fresh={name: 50 for name, _, _ in fig5a.COMBINATIONS},
        queries={name: 10 for name, _, _ in fig5a.COMBINATIONS},
    )
    monkeypatch.setattr(fig5a, "run", lambda **kwargs: canned)
    fig5a.main()
    out = capsys.readouterr().out
    assert "total samples per combination" in out
    assert "Digest vs naive" in out


def test_fig5b_main_prints_log_bars(monkeypatch, capsys):
    canned = fig5b.Fig5bResult(
        dataset="temperature",
        sigma=8.0,
        messages={
            "ALL+ALL": 1_000_000,
            "ALL+FILTER": 100_000,
            "ALL+INDEP": 50_000,
            "Digest(PRED3+RPT)": 1_000,
        },
        samples={name: 0 for name in fig5b.SYSTEMS},
    )
    monkeypatch.setattr(fig5b, "run", lambda **kwargs: canned)
    fig5b.main()
    out = capsys.readouterr().out
    assert "total communication cost" in out
    assert "log scale" in out
    assert "#" in out  # bars rendered
