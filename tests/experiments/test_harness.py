"""Tests for the shared experiment harness."""

import numpy as np
import pytest

from repro.core.query import Precision
from repro.datasets.memory import MemoryInstance
from repro.datasets.temperature import TemperatureInstance
from repro.errors import SimulationError
from repro.experiments.harness import (
    build_instance,
    canonical_query,
    make_engine,
    pick_origin,
    run_continuous_query,
)


class TestBuildInstance:
    def test_temperature(self):
        instance = build_instance("temperature", scale=0.05, seed=0)
        assert isinstance(instance, TemperatureInstance)

    def test_memory(self):
        instance = build_instance("memory", scale=0.05, seed=0)
        assert isinstance(instance, MemoryInstance)

    def test_unknown(self):
        with pytest.raises(SimulationError):
            build_instance("stocks")

    def test_full_scale_counts(self):
        # scale=1.0 must not shrink anything (construct config only; the
        # instance itself would be expensive, so use the cheapest check)
        instance = build_instance("memory", scale=1.0, seed=0)
        assert len(instance.graph) == 820


class TestQueryAndEngine:
    def test_canonical_query(self):
        instance = build_instance("temperature", scale=0.05, seed=0)
        continuous = canonical_query(instance, Precision(1.0, 1.0))
        assert continuous.duration == instance.n_steps
        assert "AVG" in str(continuous)

    def test_make_engine_combinations(self):
        instance = build_instance("temperature", scale=0.05, seed=0)
        precision = Precision(4.0, 2.0)
        for scheduler in ("all", "pred"):
            for evaluator in ("independent", "repeated"):
                engine = make_engine(
                    instance, precision, scheduler, evaluator, origin=0, seed=0
                )
                assert engine.config.scheduler == scheduler
                assert engine.config.evaluator == evaluator


class TestRunLoop:
    def test_pick_origin_protects_memory_origin(self):
        instance = build_instance("memory", scale=0.1, seed=0)
        origin = pick_origin(instance, seed=0)
        assert origin in instance.churn.protected

    def test_run_records_metrics(self):
        instance = build_instance("temperature", scale=0.05, seed=0)
        engine = make_engine(
            instance, Precision(4.0, 2.0), "all", "independent", 0, 0
        )
        run = run_continuous_query(instance, engine, n_steps=8, record_oracle=True)
        assert run.snapshot_queries == 8
        assert run.samples_total > 0
        assert run.messages_total > 0
        assert len(run.estimate_errors) == 8
        assert run.samples_per_query() == run.samples_total / 8
        assert run.mean_absolute_error() >= 0.0

    def test_epsilon_guarantee_holds_on_average(self):
        """Snapshot errors stay within ~epsilon (probabilistic, averaged)."""
        instance = build_instance("temperature", scale=0.05, seed=1)
        epsilon = 2.0
        engine = make_engine(
            instance, Precision(4.0, epsilon, 0.95), "all", "repeated", 0, 1
        )
        run = run_continuous_query(instance, engine, n_steps=15, record_oracle=True)
        errors = np.array(run.estimate_errors)
        assert (errors <= epsilon).mean() >= 0.7
        assert errors.mean() <= epsilon


class TestExperimentRunAccessors:
    def test_zero_query_run(self):
        from repro.network.messaging import MessageLedger
        from repro.sim.metrics import RunMetrics
        from repro.experiments.harness import ExperimentRun

        run = ExperimentRun(metrics=RunMetrics(), ledger=MessageLedger())
        assert run.samples_per_query() == 0.0
        assert run.mean_absolute_error() == 0.0
        assert run.messages_total == 0
        assert run.snapshot_queries == 0
        assert run.samples_total == 0
        assert run.samples_fresh == 0
