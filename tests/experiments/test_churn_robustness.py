"""Tests for sampling robustness under churn."""

import pytest

from repro.experiments import churn_robustness


@pytest.fixture(scope="module")
def result():
    return churn_robustness.run(
        n_nodes=60,
        occasions=4,
        samples_per_occasion=1500,
        leave_probabilities=(0.0, 0.08),
        seed=0,
    )


class TestDistributionalRobustness:
    def test_tv_stays_at_noise_floor(self, result):
        """Churn must not bias the sampled distribution."""
        static_tv = result.rows[0].mean_tv
        churny_tv = result.rows[-1].mean_tv
        # the churny TV stays within ~2x of the static finite-sample floor
        assert churny_tv < 2.0 * static_tv + 0.02

    def test_pool_survival_degrades_with_churn(self, result):
        assert result.rows[-1].pool_survival < result.rows[0].pool_survival
        assert result.rows[-1].pool_survival > 0.5  # pruning, not collapse


class TestRepeatedSamplingRobustness:
    def test_still_retains_under_churn(self, result):
        assert result.rows[-1].retained_fraction > 0.1

    def test_error_stays_bounded(self, result):
        for row in result.rows:
            assert row.mean_error < 1.0  # epsilon was 0.5; 2x slack


def test_table_renders(result):
    assert "churn" in result.to_table()
