"""Tests for the related-work comparison experiments (Section VII claims)."""

import pytest

from repro.experiments import related_work


class TestGossipCrossover:
    @pytest.fixture(scope="class")
    def result(self):
        return related_work.gossip_crossover(scale=0.15, seed=0)

    def test_gossip_cost_independent_of_queriers(self, result):
        assert len(set(result.gossip_totals)) == 1

    def test_digest_cost_linear_in_queriers(self, result):
        per = result.digest_messages_per_querier
        for k, total in zip(result.querier_counts, result.digest_totals):
            assert total == pytest.approx(per * k)

    def test_crossover_exists(self, result):
        """Digest wins at K=1; gossip wins for enough queriers (the
        paper's claim that gossip is only justified when everyone asks)."""
        assert result.digest_messages_per_querier < result.gossip_messages_per_snapshot
        assert result.crossover > 1.0

    def test_table_renders(self, result):
        assert "crossover" in result.to_table()


class TestTagChurn:
    @pytest.fixture(scope="class")
    def result(self):
        return related_work.tag_vs_churn(
            scale=0.12, seed=0, leave_probabilities=(0.0, 0.04), n_steps=30
        )

    def test_exact_without_churn(self, result):
        assert result.rows[0].tree_mae < 1e-9
        assert result.rows[0].mean_lost_fraction == 0.0

    def test_error_grows_with_churn(self, result):
        assert result.rows[1].tree_mae > result.rows[0].tree_mae
        assert result.rows[1].mean_lost_fraction > 0.1

    def test_digest_unaffected_by_churn(self, result):
        """Digest's error stays within ~epsilon at every churn level."""
        for row in result.rows:
            assert row.digest_mae <= 2 * result.epsilon

    def test_table_renders(self, result):
        assert "TAG" in result.to_table()
