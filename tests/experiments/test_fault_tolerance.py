"""Acceptance tests for the fault-tolerance experiment.

Encodes the robustness criteria directly: with per-hop loss up to 10% and
per-step crash probability up to 5%, the sweep completes with zero
unhandled exceptions, nearly all walks are recovered via retry, every
estimate either meets the promised ``(epsilon, p)`` or is flagged
``degraded`` — and the whole run is bit-deterministic under a fixed seed.
"""

import numpy as np

from repro.experiments import fault_tolerance


def _smoke(seed=0):
    return fault_tolerance.run(fault_tolerance.smoke_config(), seed=seed)


class TestSweep:
    def test_runs_without_exceptions_and_covers_the_grid(self):
        result = _smoke()
        config = result.config
        assert len(result.rows) == len(config.loss_rates) * len(
            config.crash_rates
        )
        assert max(config.loss_rates) == 0.10
        assert max(config.crash_rates) == 0.05

    def test_recovery_rate_meets_threshold(self):
        result = _smoke()
        for row in result.rows:
            assert row.completion_rate >= 0.95, (
                f"cell (loss={row.message_loss}, crash="
                f"{row.crash_probability}) completed only "
                f"{row.completion_rate:.3f}"
            )
            assert row.recovery_rate >= 0.95

    def test_estimates_are_honest(self):
        """Every row meets the promise or says it did not."""
        result = _smoke()
        for row in result.rows:
            if row.n_achieved < row.n_required:
                assert row.degraded
            if not row.degraded:
                assert row.n_achieved >= row.n_required
            assert np.isfinite(row.estimate)
            assert 0.0 <= row.achieved_confidence <= 1.0

    def test_retry_overhead_rises_with_loss(self):
        result = _smoke()
        lossless = [r for r in result.rows if r.message_loss == 0.0]
        lossy = [r for r in result.rows if r.message_loss > 0.0]
        assert max(r.retry_overhead for r in lossless) <= min(
            r.retry_overhead for r in lossy
        ) or all(r.retry_overhead > 0 for r in lossy)
        assert all(r.retries > 0 for r in lossy)

    def test_fault_free_cell_matches_reliable_baseline(self):
        result = _smoke()
        clean = next(
            r
            for r in result.rows
            if r.message_loss == 0.0 and r.crash_probability == 0.0
        )
        assert clean.retries == 0
        assert clean.retry_overhead == 0.0
        assert clean.faults == {}
        assert not clean.degraded

    def test_metrics_populated(self):
        result = _smoke()
        assert result.metrics.faults_injected > 0
        assert result.metrics.walks_retried > 0
        assert result.metrics.samples_total > 0
        assert result.metrics.has_series("completion_rate")
        assert result.metrics.has_series("retry_overhead")

    def test_table_renders(self):
        text = _smoke().to_table()
        assert "Fault tolerance" in text
        assert "degraded" in text


class TestDeterminism:
    def test_two_runs_produce_identical_ledgers(self):
        a, b = _smoke(seed=3), _smoke(seed=3)
        for row_a, row_b in zip(a.rows, b.rows):
            assert row_a.ledger_breakdown == row_b.ledger_breakdown
            assert row_a.faults == row_b.faults
            assert row_a.estimate == row_b.estimate
            assert row_a.n_achieved == row_b.n_achieved

    def test_different_seeds_differ(self):
        a, b = _smoke(seed=0), _smoke(seed=99)
        assert any(
            ra.ledger_breakdown != rb.ledger_breakdown
            for ra, rb in zip(a.rows, b.rows)
        )


class TestMain:
    def test_main_smoke_exits_zero(self, capsys):
        assert fault_tolerance.main(["--smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "worst cell" in out
