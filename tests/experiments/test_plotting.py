"""Tests for ASCII figure rendering."""

import pytest

from repro.experiments.plotting import ascii_bars, ascii_chart


class TestChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"ALL": ([0, 1, 2], [10, 10, 10]), "PRED": ([0, 1, 2], [10, 5, 2])},
            title="Figure 4-a",
        )
        assert "Figure 4-a" in chart
        assert "o = ALL" in chart and "x = PRED" in chart
        assert "+" + "-" * 60 in chart

    def test_markers_positioned(self):
        chart = ascii_chart({"s": ([0.0, 1.0], [0.0, 1.0])}, width=10, height=4)
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("o")  # max lands top-right
        assert rows[-1][1] == "o"  # min lands bottom-left

    def test_constant_series_handled(self):
        chart = ascii_chart({"flat": ([0, 1], [5.0, 5.0])})
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": ([], [])})
        with pytest.raises(ValueError):
            ascii_chart({"s": ([0], [0])}, width=5)


class TestBars:
    def test_linear(self):
        bars = ascii_bars({"a": 10.0, "b": 5.0}, width=20, title="T")
        lines = bars.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") > lines[2].count("#")

    def test_log_scale_compresses(self):
        linear = ascii_bars({"big": 1000.0, "small": 1.0}, width=40)
        logarithmic = ascii_bars({"big": 1000.0, "small": 1.0}, width=40, log=True)
        small_linear = [l for l in linear.splitlines() if "small" in l][0]
        small_log = [l for l in logarithmic.splitlines() if "small" in l][0]
        assert small_log.count("#") >= small_linear.count("#")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"a": -1.0})
        with pytest.raises(ValueError):
            ascii_bars({"a": 0.0}, log=True)
