"""Tests for the ALL+ALL push-everything baseline."""

import numpy as np
import pytest

from repro.baselines.push_all import PushAllBaseline
from repro.core.query import parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import line_topology


@pytest.fixture
def world():
    # line 0-1-2: known hop distances
    graph = OverlayGraph(line_topology(3), n_nodes=3)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    database.insert(0, {"v": 1.0})
    database.insert(1, {"v": 2.0})
    database.insert(1, {"v": 3.0})
    database.insert(2, {"v": 6.0})
    return graph, database


def test_exact_result(world):
    graph, database = world
    baseline = PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0)
    assert baseline.step(0) == pytest.approx(3.0)
    assert baseline.result.value_at(0) == pytest.approx(3.0)


def test_message_accounting_by_hops(world):
    graph, database = world
    baseline = PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0)
    baseline.step(0)
    # node 1: 2 tuples x 1 hop; node 2: 1 tuple x 2 hops; origin free
    assert baseline.ledger.pushes == 2 * 1 + 1 * 2


def test_cost_scales_with_steps(world):
    graph, database = world
    baseline = PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0)
    for t in range(5):
        baseline.step(t)
    assert baseline.ledger.pushes == 5 * 4
    assert baseline.metrics.snapshot_queries == 5


def test_sum_query(world):
    graph, database = world
    baseline = PushAllBaseline(graph, database, parse_query("SELECT SUM(v) FROM R"), origin=0)
    assert baseline.step(0) == pytest.approx(12.0)


def test_tracks_updates(world):
    graph, database = world
    baseline = PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0)
    baseline.step(0)
    database.update(0, {"v": 13.0})
    assert baseline.step(1) == pytest.approx(6.0)


def test_unknown_origin_rejected(world):
    graph, database = world
    with pytest.raises(QueryError):
        PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=9)


def test_empty_relation_rejected():
    graph = OverlayGraph(line_topology(2), n_nodes=2)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    baseline = PushAllBaseline(graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0)
    with pytest.raises(QueryError):
        baseline.step(0)
