"""Tests for the TAG-style tree-aggregation baseline."""

import numpy as np
import pytest

from repro.baselines.tree_aggregation import TreeAggregationBaseline
from repro.core.query import parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology


def _world(n=25, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(2):
            database.insert(node, {"v": float(rng.normal(5, 2))})
    return graph, database


def _baseline(graph, database, **kwargs):
    return TreeAggregationBaseline(
        graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0, **kwargs
    )


class TestValidation:
    def test_avg_only(self):
        graph, database = _world()
        with pytest.raises(QueryError, match="AVG"):
            TreeAggregationBaseline(
                graph, database, parse_query("SELECT COUNT(v) FROM R"), origin=0
            )

    def test_rejects_bad_interval(self):
        graph, database = _world()
        with pytest.raises(QueryError):
            _baseline(graph, database, rebuild_interval=0)


class TestStaticWorld:
    def test_exact_without_churn(self):
        graph, database = _world()
        truth = float(database.exact_values(Expression("v")).mean())
        baseline = _baseline(graph, database)
        for t in range(5):
            snapshot = baseline.step(t)
            assert snapshot.estimate == pytest.approx(truth)
            assert snapshot.nodes_lost == 0
            assert snapshot.nodes_included == len(graph)

    def test_message_costs(self):
        graph, database = _world()
        baseline = _baseline(graph, database, rebuild_interval=100)
        baseline.step(0)
        # one rebuild flood + one message per non-root node
        assert baseline.ledger.breakdown()["control:tree_rebuild"] == (
            2 * graph.n_edges()
        )
        assert baseline.ledger.pushes == len(graph) - 1
        baseline.step(1)  # no rebuild
        assert baseline.rebuilds == 1

    def test_rebuild_interval_respected(self):
        graph, database = _world()
        baseline = _baseline(graph, database, rebuild_interval=2)
        for t in range(6):
            baseline.step(t)
        assert baseline.rebuilds == 3  # t=0, 2, 4

    def test_tracks_updates(self):
        graph, database = _world()
        baseline = _baseline(graph, database)
        baseline.step(0)
        for tid, _, _ in list(database.iter_tuples()):
            database.update(tid, {"v": 42.0})
        assert baseline.step(1).estimate == pytest.approx(42.0)


class TestFragmentation:
    def test_departed_subtree_excluded(self):
        """Cutting a node near the root silently loses its whole subtree."""
        # path graph: 0-1-2-3-4; subtree of 1 = {1,2,3,4}
        graph = OverlayGraph([(0, 1), (1, 2), (2, 3), (3, 4)])
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        for node in graph.nodes():
            database.insert(node, {"v": float(node * 10)})
        baseline = _baseline(graph, database, rebuild_interval=100)
        truth_full = 20.0
        assert baseline.step(0).estimate == pytest.approx(truth_full)
        # node 1 leaves; rewiring bridges 0-2 in the overlay, but the TREE
        # still routes 2..4 through the departed node until rebuild
        graph.leave(1)
        database.remove_node(1)
        snapshot = baseline.step(1)
        assert snapshot.nodes_lost == 3  # 2, 3, 4 orphaned
        assert snapshot.estimate == pytest.approx(0.0)  # only the root left

    def test_rebuild_recovers(self):
        graph = OverlayGraph([(0, 1), (1, 2), (2, 3), (3, 4)])
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        for node in graph.nodes():
            database.insert(node, {"v": float(node * 10)})
        baseline = _baseline(graph, database, rebuild_interval=2)
        baseline.step(0)
        graph.leave(1)
        database.remove_node(1)
        baseline.step(1)  # stale tree: heavy loss
        snapshot = baseline.step(2)  # rebuild epoch
        assert snapshot.nodes_lost == 0
        assert snapshot.estimate == pytest.approx((0 + 20 + 30 + 40) / 4)

    def test_joined_nodes_invisible_until_rebuild(self):
        graph, database = _world(n=9)
        baseline = _baseline(graph, database, rebuild_interval=10)
        baseline.step(0)
        new = graph.join(attach_to=[0])
        database.add_node(new)
        database.insert(new, {"v": 1000.0})
        snapshot = baseline.step(1)
        assert snapshot.nodes_lost == 1  # the newcomer is not in the tree

    def test_fully_fragmented_raises(self):
        graph = OverlayGraph([(0, 1)])
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        database.insert(1, {"v": 1.0})  # root has no tuples
        baseline = _baseline(graph, database, rebuild_interval=100)
        baseline.step(0)
        graph.leave(1)
        database.remove_node(1)
        with pytest.raises(QueryError, match="fragmented"):
            baseline.step(1)
