"""Tests for the push-sum gossip baseline."""

import numpy as np
import pytest

from repro.baselines.push_sum import PushSumBaseline
from repro.core.query import parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, power_law_topology


def _world(n=49, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(1 + int(rng.integers(0, 4))):
            database.insert(node, {"v": float(rng.normal(10, 3))})
    return graph, database


def _baseline(graph, database, seed=1, **kwargs):
    return PushSumBaseline(
        graph,
        database,
        parse_query("SELECT AVG(v) FROM R"),
        origin=0,
        rng=np.random.default_rng(seed),
        **kwargs,
    )


class TestValidation:
    def test_avg_only(self):
        graph, database = _world()
        with pytest.raises(QueryError, match="AVG"):
            PushSumBaseline(
                graph,
                database,
                parse_query("SELECT SUM(v) FROM R"),
                origin=0,
                rng=np.random.default_rng(0),
            )

    def test_no_predicates(self):
        graph, database = _world()
        with pytest.raises(QueryError, match="predicate"):
            PushSumBaseline(
                graph,
                database,
                parse_query("SELECT AVG(v) FROM R WHERE v > 0"),
                origin=0,
                rng=np.random.default_rng(0),
            )

    def test_unknown_origin(self):
        graph, database = _world()
        with pytest.raises(QueryError):
            PushSumBaseline(
                graph,
                database,
                parse_query("SELECT AVG(v) FROM R"),
                origin=10**6,
                rng=np.random.default_rng(0),
            )

    def test_empty_relation(self):
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        baseline = _baseline(graph, database)
        with pytest.raises(QueryError):
            baseline.run_snapshot()


class TestConvergence:
    def test_converges_to_true_average(self):
        graph, database = _world()
        truth = float(database.exact_values(Expression("v")).mean())
        run = _baseline(graph, database, tolerance=1e-6).run_snapshot()
        assert run.estimate == pytest.approx(truth, abs=1e-4)
        assert run.max_disagreement <= 1e-6 * max(1.0, abs(truth))

    def test_mass_conservation_is_exact(self):
        """Push-sum never loses mass, so convergence is to the exact mean."""
        graph, database = _world(seed=3)
        truth = float(database.exact_values(Expression("v")).mean())
        run = _baseline(graph, database, seed=4, tolerance=1e-9).run_snapshot()
        assert run.estimate == pytest.approx(truth, abs=1e-6)

    def test_message_accounting(self):
        graph, database = _world()
        baseline = _baseline(graph, database)
        run = baseline.run_snapshot()
        assert run.messages == len(graph) * run.rounds
        assert baseline.ledger.total == run.messages

    def test_rounds_grow_logarithmically(self):
        """Rounds on expanders grow ~log N, not linearly."""
        rng = np.random.default_rng(5)
        rounds = {}
        for n in (64, 512):
            graph = OverlayGraph(power_law_topology(n, rng=rng), n_nodes=n)
            database = P2PDatabase(Schema(("v",)), graph.nodes())
            gen = np.random.default_rng(6)
            for node in graph.nodes():
                database.insert(node, {"v": float(gen.normal(0, 1))})
            run = _baseline(graph, database, seed=7).run_snapshot()
            rounds[n] = run.rounds
        assert rounds[512] < 4 * rounds[64]  # 8x nodes, <4x rounds

    def test_works_with_empty_nodes(self):
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        for node in range(8):
            database.insert(node, {"v": float(node)})
        run = _baseline(graph, database, tolerance=1e-6).run_snapshot()
        assert run.estimate == pytest.approx(3.5, abs=1e-3)
