"""Tests for the ALL+FILTER adaptive-filter baseline."""

import numpy as np
import pytest

from repro.baselines.olston_filter import FilterConfig, OlstonFilterBaseline
from repro.core.query import parse_query
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology


def _world(n_nodes=16, per_node=3, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    tids = []
    for node in graph.nodes():
        for _ in range(per_node):
            tids.append(database.insert(node, {"v": float(rng.normal(0, 5))}))
    return graph, database, tids


def _baseline(graph, database, epsilon=1.0, **kwargs):
    return OlstonFilterBaseline(
        graph,
        database,
        parse_query("SELECT AVG(v) FROM R"),
        origin=0,
        config=FilterConfig(epsilon_bound=epsilon, **kwargs),
    )


class TestConfig:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(QueryError):
            FilterConfig(epsilon_bound=0.0)

    def test_rejects_bad_period(self):
        with pytest.raises(QueryError):
            FilterConfig(epsilon_bound=1.0, adjustment_period=0)

    def test_rejects_bad_shrink(self):
        with pytest.raises(QueryError):
            FilterConfig(epsilon_bound=1.0, shrink_fraction=1.0)

    def test_avg_only(self):
        graph, database, _ = _world()
        with pytest.raises(QueryError, match="AVG"):
            OlstonFilterBaseline(
                graph,
                database,
                parse_query("SELECT SUM(v) FROM R"),
                origin=0,
                config=FilterConfig(epsilon_bound=1.0),
            )


class TestGuarantee:
    def test_error_within_bound_always(self):
        """The filter answer is deterministically within epsilon of truth."""
        graph, database, tids = _world()
        epsilon = 1.5
        baseline = _baseline(graph, database, epsilon=epsilon)
        rng = np.random.default_rng(1)
        for t in range(40):
            for tid in tids:
                current = database.read(tid)["v"]
                database.update(tid, {"v": current + float(rng.normal(0, 0.4))})
            answer = baseline.step(t)
            truth = float(database.exact_values(Expression("v")).mean())
            assert abs(answer - truth) <= epsilon + 1e-9

    def test_guaranteed_half_width_within_budget(self):
        graph, database, tids = _world()
        baseline = _baseline(graph, database, epsilon=2.0)
        rng = np.random.default_rng(2)
        for t in range(20):
            for tid in tids:
                database.update(tid, {"v": float(rng.normal(0, 5))})
            baseline.step(t)
        # reallocation conserves (or shrinks) the total width budget
        assert baseline.guaranteed_half_width() <= 2.0 + 1e-9


class TestAdaptivity:
    def test_static_values_push_nothing(self):
        graph, database, tids = _world()
        baseline = _baseline(graph, database, epsilon=1.0)
        bootstrap = baseline.total_pushes
        for t in range(10):
            baseline.step(t)
        assert baseline.total_pushes == bootstrap

    def test_large_changes_push(self):
        graph, database, tids = _world()
        baseline = _baseline(graph, database, epsilon=0.5)
        before = baseline.total_pushes
        for tid in tids:
            database.update(tid, {"v": 100.0})
        baseline.step(0)
        # origin-hosted tuples are local and never travel
        remote = sum(1 for tid in tids if database.locate(tid) != 0)
        assert baseline.total_pushes == before + remote

    def test_filters_cheaper_than_push_all_on_sparse_changes(self):
        """Few volatile objects: filters must beat pushing everything."""
        from repro.baselines.push_all import PushAllBaseline

        graph, database, tids = _world(per_node=4)
        volatile = tids[:5]
        filter_baseline = _baseline(graph, database, epsilon=1.0)
        push_baseline = PushAllBaseline(
            graph, database, parse_query("SELECT AVG(v) FROM R"), origin=0
        )
        rng = np.random.default_rng(3)
        for t in range(30):
            for tid in volatile:
                database.update(tid, {"v": float(rng.normal(0, 50))})
            filter_baseline.step(t)
            push_baseline.step(t)
        assert filter_baseline.ledger.total < push_baseline.ledger.total / 3

    def test_reallocation_grows_streamers(self):
        graph, database, tids = _world()
        baseline = _baseline(
            graph, database, epsilon=1.0, adjustment_period=5, shrink_fraction=0.2
        )
        volatile = tids[0]
        default_width = 2.0
        rng = np.random.default_rng(4)
        for t in range(25):
            database.update(volatile, {"v": float(rng.normal(0, 50))})
            baseline.step(t)
        assert baseline.reallocations >= 4
        # the streaming object accumulated width beyond the default
        assert baseline._widths[volatile] > default_width
        # quiet objects gave up width
        quiet = tids[-1]
        assert baseline._widths[quiet] < default_width


class TestChurn:
    def test_new_tuples_registered(self):
        graph, database, tids = _world()
        baseline = _baseline(graph, database, epsilon=1.0)
        baseline.step(0)
        new = database.insert(0, {"v": 7.0})
        answer = baseline.step(1)
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(answer - truth) <= 1.0 + 1e-9

    def test_deleted_tuples_forgotten(self):
        graph, database, tids = _world()
        baseline = _baseline(graph, database, epsilon=1.0)
        baseline.step(0)
        for tid in tids[:10]:
            database.delete(tid)
        answer = baseline.step(1)
        truth = float(database.exact_values(Expression("v")).mean())
        assert abs(answer - truth) <= 1.0 + 1e-9
