"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, power_law_topology


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph() -> OverlayGraph:
    """A 25-node connected mesh."""
    return OverlayGraph(mesh_topology(25), n_nodes=25)


@pytest.fixture
def power_law_graph(rng) -> OverlayGraph:
    """A 60-node power-law overlay."""
    return OverlayGraph(power_law_topology(60, rng=rng), n_nodes=60)


@pytest.fixture
def populated_db(small_graph, rng) -> P2PDatabase:
    """The mesh graph's relation: 1-6 single-attribute tuples per node."""
    database = P2PDatabase(Schema(("value",)), small_graph.nodes())
    for node in small_graph.nodes():
        for _ in range(1 + int(rng.integers(0, 6))):
            database.insert(node, {"value": float(rng.normal(50.0, 10.0))})
    return database
