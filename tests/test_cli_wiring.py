"""CLI experiment-dispatch wiring tests (heavy experiments monkeypatched).

`tests/test_cli.py` runs the cheap subcommands for real; these verify the
remaining dispatch branches call the right experiment module without
paying for the computation.
"""

import pytest

from repro import cli


class _Recorder:
    def __init__(self):
        self.calls = []

    def __call__(self, *args, **kwargs):
        self.calls.append(kwargs)
        return self


@pytest.fixture
def canned(monkeypatch):
    """Monkeypatch every experiment entry point the CLI dispatches to."""
    import repro.experiments.ablations as ablations
    import repro.experiments.fig4a as fig4a
    import repro.experiments.fig4b as fig4b
    import repro.experiments.fig5a as fig5a
    import repro.experiments.fig5b as fig5b
    import repro.experiments.forward as forward
    import repro.experiments.guarantees as guarantees
    import repro.experiments.mixing as mixing
    import repro.experiments.occasion_drift as occasion_drift
    import repro.experiments.protocol_validation as protocol_validation
    import repro.experiments.related_work as related_work

    class _Result:
        improvement_factor = 1.5
        digest_vs_naive = 3.0

        def to_table(self):
            return "CANNED TABLE"

    recorders = {}

    def fake_run(**kwargs):
        return _Result()

    for name, module in {
        "fig4a": fig4a,
        "fig4b": fig4b,
        "fig5a": fig5a,
        "fig5b": fig5b,
        "mixing": mixing,
    }.items():
        recorder = _Recorder()
        monkeypatch.setattr(
            module, "run", lambda recorder=recorder, **kw: (recorder(**kw), _Result())[1]
        )
        recorders[name] = recorder
    for name, module in {
        "ablations": ablations,
        "forward": forward,
        "guarantees": guarantees,
        "related_work": related_work,
        "occasion_drift": occasion_drift,
        "protocol": protocol_validation,
    }.items():
        recorder = _Recorder()
        monkeypatch.setattr(module, "main", recorder)
        recorders[name] = recorder
    return recorders


@pytest.mark.parametrize("name", ["fig4a", "fig4b", "fig5a", "fig5b", "mixing"])
def test_run_experiments_dispatch(canned, capsys, name):
    assert cli.main(["experiment", name, "--scale", "0.07", "--seed", "3"]) == 0
    assert "CANNED TABLE" in capsys.readouterr().out
    assert canned[name].calls, f"{name}.run was not invoked"
    call = canned[name].calls[0]
    if name != "mixing":
        assert call.get("seed") == 3


@pytest.mark.parametrize(
    "name",
    ["ablations", "forward", "guarantees", "related_work", "occasion_drift", "protocol"],
)
def test_main_experiments_dispatch(canned, name):
    assert cli.main(["experiment", name]) == 0
    assert canned[name].calls, f"{name}.main was not invoked"


def test_fig5b_scale_floor(canned):
    """fig5b refuses to run below the push-vs-sample crossover scale."""
    cli.main(["experiment", "fig5b", "--scale", "0.05"])
    assert canned["fig5b"].calls[0]["scale"] >= 0.25
