"""Tests for the boolean predicate language (WHERE clauses)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.predicate import Predicate
from repro.errors import ExpressionError


class TestParsing:
    @pytest.mark.parametrize(
        "text,row,expected",
        [
            ("a > 1", {"a": 2}, True),
            ("a > 1", {"a": 1}, False),
            ("a >= 1", {"a": 1}, True),
            ("a < b", {"a": 1, "b": 2}, True),
            ("a <= b", {"a": 2, "b": 2}, True),
            ("a = b", {"a": 3, "b": 3}, True),
            ("a == b", {"a": 3, "b": 4}, False),
            ("a != b", {"a": 3, "b": 4}, True),
            ("a <> b", {"a": 3, "b": 3}, False),
            ("a + b > 4", {"a": 2, "b": 3}, True),
            ("a * 2 < b - 1", {"a": 1, "b": 4}, True),
            ("a > 1 AND b > 1", {"a": 2, "b": 2}, True),
            ("a > 1 AND b > 1", {"a": 2, "b": 0}, False),
            ("a > 1 OR b > 1", {"a": 0, "b": 2}, True),
            ("NOT a > 1", {"a": 0}, True),
            ("NOT NOT a > 1", {"a": 2}, True),
            # precedence: AND binds tighter than OR
            ("a > 1 OR b > 1 AND c > 1", {"a": 2, "b": 0, "c": 0}, True),
            ("(a > 1 OR b > 1) AND c > 1", {"a": 2, "b": 0, "c": 0}, False),
            # parenthesized arithmetic operands
            ("(a + b) * 2 > 8", {"a": 2, "b": 3}, True),
            ("((a)) > 1", {"a": 2}, True),
            # keywords case-insensitive
            ("a > 1 and b > 1", {"a": 2, "b": 2}, True),
            ("not a > 1 or b > 1", {"a": 2, "b": 2}, True),
            ("memory + storage > 4 AND NOT cpu < 0.5", {"memory": 3, "storage": 2, "cpu": 0.9}, True),
        ],
    )
    def test_evaluate(self, text, row, expected):
        assert Predicate(text).evaluate(row) is expected

    def test_attributes(self):
        predicate = Predicate("a + b > 1 AND NOT c < d")
        assert predicate.attributes == {"a", "b", "c", "d"}

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "a",  # no comparison
            "a + b",  # arithmetic only
            "a >",
            "> a",
            "a > 1 AND",
            "AND a > 1",
            "a > 1 b > 1",
            "a >> 1",
            "(a > 1",
            "a > 1)",
            "NOT",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ExpressionError):
            Predicate(bad)

    def test_equality_and_hash(self):
        assert Predicate("a > 1") == Predicate("a > 1")
        assert Predicate("a > 1") != Predicate("a>1")
        assert hash(Predicate("a > 1")) == hash(Predicate("a > 1"))

    def test_repr(self):
        assert "a > 1" in repr(Predicate("a > 1"))

    def test_missing_attribute_at_evaluation(self):
        with pytest.raises(ExpressionError):
            Predicate("a > b").evaluate({"a": 1})


class TestVectorized:
    def test_matches_scalar(self):
        predicate = Predicate("a + b > 4 AND NOT a < 1 OR b = 0")
        columns = {
            "a": np.array([0.5, 2.0, 3.0, 1.0]),
            "b": np.array([0.0, 3.0, 0.5, 1.0]),
        }
        vectorized = predicate.evaluate_columns(columns)
        scalar = [
            predicate.evaluate({"a": a, "b": b})
            for a, b in zip(columns["a"], columns["b"])
        ]
        assert vectorized.tolist() == scalar

    def test_constant_predicate_broadcasts(self):
        result = Predicate("1 > 0").evaluate_columns({"a": np.zeros(3)})
        assert result.tolist() == [True, True, True]


@given(
    a=st.floats(-5, 5),
    b=st.floats(-5, 5),
    threshold=st.integers(-3, 3),
)
@settings(max_examples=100, deadline=None)
def test_property_matches_python_semantics(a, b, threshold):
    text = f"a + b > {threshold} AND a <= b OR NOT b < 0"
    expected = (a + b > threshold and a <= b) or not (b < 0)
    assert Predicate(text).evaluate({"a": a, "b": b}) is expected
