"""Tests for aggregate semantics and scaling."""

import numpy as np
import pytest

from repro.db.aggregates import (
    AggregateOp,
    estimate_from_mean,
    exact_aggregate,
    mean_error_budget,
    scale_factor,
    tuple_values,
)
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import QueryError


class TestOpParsing:
    @pytest.mark.parametrize("text,op", [("avg", AggregateOp.AVG), ("SUM", AggregateOp.SUM), (" count ", AggregateOp.COUNT)])
    def test_parse(self, text, op):
        assert AggregateOp.parse(text) is op

    def test_parse_unknown(self):
        with pytest.raises(QueryError):
            AggregateOp.parse("median")


class TestTransforms:
    def test_avg_sum_pass_through(self):
        values = np.array([1.0, 2.0, 0.0])
        np.testing.assert_allclose(
            tuple_values(AggregateOp.AVG, Expression("v"), values), values
        )
        np.testing.assert_allclose(
            tuple_values(AggregateOp.SUM, Expression("v"), values), values
        )

    def test_count_indicator(self):
        values = np.array([1.0, 0.0, -2.0, 0.0])
        np.testing.assert_allclose(
            tuple_values(AggregateOp.COUNT, Expression("v"), values),
            [1.0, 0.0, 1.0, 0.0],
        )

    def test_scale_factors(self):
        assert scale_factor(AggregateOp.AVG, 100) == 1.0
        assert scale_factor(AggregateOp.SUM, 100) == 100.0
        assert scale_factor(AggregateOp.COUNT, 100) == 100.0

    def test_scale_factor_negative_population(self):
        with pytest.raises(QueryError):
            scale_factor(AggregateOp.SUM, -1)

    def test_estimate_from_mean(self):
        assert estimate_from_mean(AggregateOp.SUM, 2.5, 10) == 25.0
        assert estimate_from_mean(AggregateOp.AVG, 2.5, 10) == 2.5

    def test_mean_error_budget(self):
        assert mean_error_budget(AggregateOp.AVG, 2.0, 1000) == 2.0
        assert mean_error_budget(AggregateOp.SUM, 100.0, 50) == 2.0
        assert mean_error_budget(AggregateOp.SUM, 1.0, 0) == float("inf")
        with pytest.raises(QueryError):
            mean_error_budget(AggregateOp.AVG, -1.0, 10)


class TestExactAggregate:
    @pytest.fixture
    def db(self):
        database = P2PDatabase(Schema(("v",)), nodes=[0, 1])
        for value in (2.0, 4.0, 0.0, 6.0):
            database.insert(0, {"v": value})
        return database

    def test_avg(self, db):
        assert exact_aggregate(db, AggregateOp.AVG, Expression("v")) == 3.0

    def test_sum(self, db):
        assert exact_aggregate(db, AggregateOp.SUM, Expression("v")) == 12.0

    def test_count(self, db):
        # counts tuples with non-zero expression value
        assert exact_aggregate(db, AggregateOp.COUNT, Expression("v")) == 3.0

    def test_count_all(self, db):
        assert exact_aggregate(db, AggregateOp.COUNT, Expression("1")) == 4.0

    def test_avg_empty_rejected(self):
        empty = P2PDatabase(Schema(("v",)), nodes=[0])
        with pytest.raises(QueryError):
            exact_aggregate(empty, AggregateOp.AVG, Expression("v"))

    def test_sum_empty_is_zero(self):
        empty = P2PDatabase(Schema(("v",)), nodes=[0])
        assert exact_aggregate(empty, AggregateOp.SUM, Expression("v")) == 0.0
