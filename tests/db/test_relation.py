"""Tests for the distributed relation."""

import numpy as np
import pytest

from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import StoreError
from repro.network.churn import ChurnEvent


@pytest.fixture
def db():
    database = P2PDatabase(Schema(("v",)), nodes=[0, 1, 2])
    database.insert(0, {"v": 1.0})
    database.insert(0, {"v": 2.0})
    database.insert(1, {"v": 3.0})
    return database


class TestSchema:
    def test_validate_expression(self):
        schema = Schema(("a", "b"))
        schema.validate_expression(Expression("a + b"))
        with pytest.raises(StoreError, match="unknown attributes"):
            schema.validate_expression(Expression("a + missing"))

    def test_rejects_empty(self):
        with pytest.raises(StoreError):
            Schema(())


class TestNodes:
    def test_add_remove_node(self, db):
        db.add_node(3)
        assert 3 in db.nodes()
        lost = db.remove_node(0)
        assert sorted(lost) == [0, 1]
        assert db.n_tuples == 1

    def test_add_duplicate_node(self, db):
        with pytest.raises(StoreError):
            db.add_node(0)

    def test_remove_unknown_node(self, db):
        with pytest.raises(StoreError):
            db.remove_node(99)

    def test_content_sizes(self, db):
        assert db.content_sizes() == {0: 2, 1: 1, 2: 0}

    def test_handle_churn(self, db):
        lost = db.handle_churn(ChurnEvent(joined=[5], left=[0]))
        assert len(lost) == 2
        assert 5 in db.nodes()
        assert 0 not in db.nodes()
        assert db.n_tuples == 1


class TestTuples:
    def test_global_ids_unique(self, db):
        tid = db.insert(2, {"v": 9.0})
        assert tid == 3
        assert db.locate(tid) == 2

    def test_read_update_delete(self, db):
        db.update(0, {"v": 42.0})
        assert db.read(0)["v"] == 42.0
        db.delete(0)
        assert db.locate(0) is None
        assert 0 not in db
        with pytest.raises(StoreError):
            db.read(0)
        with pytest.raises(StoreError):
            db.update(0, {"v": 1.0})
        with pytest.raises(StoreError):
            db.delete(0)

    def test_iter_tuples(self, db):
        triples = list(db.iter_tuples())
        assert len(triples) == 3
        assert {t[0] for t in triples} == {0, 1, 2}

    def test_exact_values(self, db):
        values = db.exact_values(Expression("v"))
        assert sorted(values.tolist()) == [1.0, 2.0, 3.0]

    def test_exact_values_empty(self):
        database = P2PDatabase(Schema(("v",)), nodes=[0])
        assert database.exact_values(Expression("v")).size == 0

    def test_exact_values_validates_schema(self, db):
        with pytest.raises(StoreError):
            db.exact_values(Expression("other"))

    def test_ids_not_reused_after_delete(self, db):
        db.delete(2)
        new = db.insert(1, {"v": 7.0})
        assert new == 3
