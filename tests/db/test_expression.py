"""Tests for the arithmetic expression language."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expression import Expression
from repro.errors import ExpressionError


class TestParsing:
    @pytest.mark.parametrize(
        "text,row,expected",
        [
            ("a", {"a": 3}, 3.0),
            ("a + b", {"a": 1, "b": 2}, 3.0),
            ("a - b - c", {"a": 10, "b": 3, "c": 2}, 5.0),  # left assoc
            ("a * b + c", {"a": 2, "b": 3, "c": 1}, 7.0),  # precedence
            ("a + b * c", {"a": 1, "b": 2, "c": 3}, 7.0),
            ("(a + b) * c", {"a": 1, "b": 2, "c": 3}, 9.0),
            ("a / b", {"a": 7, "b": 2}, 3.5),
            ("-a", {"a": 4}, -4.0),
            ("--a", {"a": 4}, 4.0),
            ("+a", {"a": 4}, 4.0),
            ("a ** 2", {"a": 3}, 9.0),
            ("a ** b ** c", {"a": 2, "b": 1, "c": 2}, 2.0),  # right assoc: 2**(1**2)
            ("-a ** 2", {"a": 3}, -9.0),  # unary binds looser than **
            ("2", {}, 2.0),
            ("2.5 * a", {"a": 2}, 5.0),
            (".5 + a", {"a": 1}, 1.5),
            ("1e2 + a", {"a": 0}, 100.0),
            ("memory + storage", {"memory": 2, "storage": 3}, 5.0),
        ],
    )
    def test_evaluate(self, text, row, expected):
        assert Expression(text).evaluate(row) == pytest.approx(expected)

    def test_attributes(self):
        assert Expression("0.5*(cpu + memory) - cpu").attributes == {
            "cpu",
            "memory",
        }

    def test_literal_only_has_no_attributes(self):
        assert Expression("1 + 2 * 3").attributes == frozenset()

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "a +", "* a", "(a", "a)", "a b", "a & b", "1..2", "a ** ", "()"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ExpressionError):
            Expression(bad)

    def test_equality_and_hash(self):
        assert Expression("a + b") == Expression("a + b")
        assert Expression("a + b") != Expression("a+b")  # textual identity
        assert hash(Expression("x")) == hash(Expression("x"))

    def test_repr(self):
        assert "a + b" in repr(Expression("a + b"))


class TestEvaluationErrors:
    def test_missing_attribute(self):
        with pytest.raises(ExpressionError, match="no attribute"):
            Expression("a + b").evaluate({"a": 1})

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError, match="division by zero"):
            Expression("a / b").evaluate({"a": 1, "b": 0})

    def test_complex_power_rejected(self):
        with pytest.raises(ExpressionError):
            Expression("a ** 0.5").evaluate({"a": -4})

    def test_nonfinite_result_rejected(self):
        with pytest.raises(ExpressionError):
            Expression("a ** b").evaluate({"a": 10.0, "b": 400.0})


class TestVectorized:
    def test_matches_scalar(self):
        expression = Expression("0.5 * (a + b) - a * 2")
        columns = {
            "a": np.array([1.0, 2.0, 3.0]),
            "b": np.array([4.0, 5.0, 6.0]),
        }
        vectorized = expression.evaluate_columns(columns)
        scalar = [
            expression.evaluate({"a": a, "b": b})
            for a, b in zip(columns["a"], columns["b"])
        ]
        np.testing.assert_allclose(vectorized, scalar)

    def test_missing_column(self):
        with pytest.raises(ExpressionError, match="missing attributes"):
            Expression("a + b").evaluate_columns({"a": np.ones(2)})

    def test_vectorized_division_by_zero(self):
        with pytest.raises(ExpressionError):
            Expression("a / b").evaluate_columns(
                {"a": np.ones(2), "b": np.array([1.0, 0.0])}
            )

    def test_literal_expression_broadcasts(self):
        result = Expression("a * 0 + 7").evaluate_columns({"a": np.zeros(4)})
        np.testing.assert_allclose(result, np.full(4, 7.0))


# ----------------------------------------------------------------------
# property-based: random expression trees evaluate consistently
# ----------------------------------------------------------------------

_IDENTIFIERS = ("x", "y", "zz")


def _expression_text(draw, depth=0):
    kind = draw(
        st.sampled_from(
            ["ident", "number"] if depth > 3 else ["ident", "number", "binary", "unary", "paren"]
        )
    )
    if kind == "ident":
        return draw(st.sampled_from(_IDENTIFIERS))
    if kind == "number":
        value = draw(st.integers(min_value=0, max_value=9))
        return str(value)
    if kind == "unary":
        return "-" + _expression_text(draw, depth + 1)
    if kind == "paren":
        return "(" + _expression_text(draw, depth + 1) + ")"
    op = draw(st.sampled_from([" + ", " - ", " * "]))
    return (
        _expression_text(draw, depth + 1) + op + _expression_text(draw, depth + 1)
    )


@st.composite
def expression_texts(draw):
    return _expression_text(draw)


@given(text=expression_texts(), x=st.integers(-5, 5), y=st.integers(-5, 5), z=st.integers(-5, 5))
@settings(max_examples=200, deadline=None)
def test_property_matches_python_eval(text, x, y, z):
    """Our evaluator agrees with Python's own on +,-,* expressions."""
    row = {"x": float(x), "y": float(y), "zz": float(z)}
    expected = eval(text, {"__builtins__": {}}, {"x": x, "y": y, "zz": z})
    assert Expression(text).evaluate(row) == pytest.approx(float(expected))


@given(text=expression_texts(), x=st.floats(-10, 10), y=st.floats(-10, 10))
@settings(max_examples=100, deadline=None)
def test_property_scalar_vector_agree(text, x, y):
    expression = Expression(text)
    row = {"x": x, "y": y, "zz": 1.5}
    columns = {
        "x": np.array([x]),
        "y": np.array([y]),
        "zz": np.array([1.5]),
    }
    scalar = expression.evaluate(row)
    vector = expression.evaluate_columns(columns)[0]
    assert math.isclose(scalar, vector, rel_tol=1e-12, abs_tol=1e-12)
