"""Tests for the per-node local store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.store import LocalStore
from repro.errors import StoreError


@pytest.fixture
def store():
    s = LocalStore(("a", "b"))
    s.insert(1, {"a": 1.0, "b": 2.0})
    s.insert(2, {"a": 3.0, "b": 4.0})
    return s


class TestSchema:
    def test_empty_schema_rejected(self):
        with pytest.raises(StoreError):
            LocalStore(())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(StoreError):
            LocalStore(("a", "a"))


class TestOperations:
    def test_insert_get(self, store):
        assert store.get(1) == {"a": 1.0, "b": 2.0}
        assert len(store) == 2
        assert 1 in store

    def test_get_returns_copy(self, store):
        row = store.get(1)
        row["a"] = 99.0
        assert store.get(1)["a"] == 1.0

    def test_insert_duplicate_rejected(self, store):
        with pytest.raises(StoreError):
            store.insert(1, {"a": 0.0, "b": 0.0})

    def test_insert_missing_attribute_rejected(self, store):
        with pytest.raises(StoreError, match="missing"):
            store.insert(3, {"a": 0.0})

    def test_insert_unknown_attribute_rejected(self, store):
        with pytest.raises(StoreError, match="unknown"):
            store.insert(3, {"a": 0.0, "b": 0.0, "c": 0.0})

    def test_partial_update(self, store):
        store.update(1, {"b": 9.0})
        assert store.get(1) == {"a": 1.0, "b": 9.0}

    def test_update_unknown_tuple(self, store):
        with pytest.raises(StoreError):
            store.update(99, {"a": 0.0})

    def test_update_unknown_attribute(self, store):
        with pytest.raises(StoreError):
            store.update(1, {"zzz": 0.0})

    def test_delete(self, store):
        store.delete(1)
        assert 1 not in store
        assert len(store) == 1
        with pytest.raises(StoreError):
            store.delete(1)

    def test_delete_swap_pop_integrity(self):
        s = LocalStore(("a",))
        for i in range(5):
            s.insert(i, {"a": float(i)})
        s.delete(0)  # swaps last into position 0
        s.delete(2)
        assert sorted(s.tuple_ids()) == [1, 3, 4]
        for tid in s.tuple_ids():
            assert s.get(tid)["a"] == float(tid)

    def test_iter_rows(self, store):
        rows = dict(store.iter_rows())
        assert set(rows) == {1, 2}


class TestSamplingAndColumns:
    def test_sample_from_empty_rejected(self):
        with pytest.raises(StoreError):
            LocalStore(("a",)).sample_uniform(np.random.default_rng(0))

    def test_sample_uniformity(self):
        s = LocalStore(("a",))
        for i in range(4):
            s.insert(i, {"a": 0.0})
        rng = np.random.default_rng(0)
        counts = np.zeros(4)
        for _ in range(4000):
            counts[s.sample_uniform(rng)] += 1
        assert counts.min() > 800  # each ~1000 expected

    def test_column(self, store):
        np.testing.assert_allclose(sorted(store.column("a")), [1.0, 3.0])

    def test_column_unknown(self, store):
        with pytest.raises(StoreError):
            store.column("nope")

    def test_columns_parallel(self, store):
        columns = store.columns()
        assert set(columns) == {"a", "b"}
        # same ordering across columns
        index = list(columns["a"]).index(1.0)
        assert columns["b"][index] == 2.0


# ----------------------------------------------------------------------
# property-based: the store behaves like a dict model under random ops
# ----------------------------------------------------------------------

@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(0, 9),
            st.floats(-100, 100),
        ),
        max_size=60,
    )
)
@settings(max_examples=120, deadline=None)
def test_property_store_matches_dict_model(operations):
    store = LocalStore(("v",))
    model: dict[int, float] = {}
    for op, key, value in operations:
        if op == "insert":
            if key in model:
                with pytest.raises(StoreError):
                    store.insert(key, {"v": value})
            else:
                store.insert(key, {"v": value})
                model[key] = value
        elif op == "update":
            if key in model:
                store.update(key, {"v": value})
                model[key] = value
            else:
                with pytest.raises(StoreError):
                    store.update(key, {"v": value})
        else:
            if key in model:
                store.delete(key)
                del model[key]
            else:
                with pytest.raises(StoreError):
                    store.delete(key)
    assert len(store) == len(model)
    assert sorted(store.tuple_ids()) == sorted(model)
    for key, value in model.items():
        assert store.get(key)["v"] == pytest.approx(value)
