"""Tests for capture-recapture size estimation."""

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.topology import power_law_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sampling.size_estimation import (
    chapman_estimate,
    estimate_network_size,
    estimate_relation_size,
)


class TestChapman:
    def test_formula(self):
        # (11 * 11 / 3) - 1 = 39.33...
        assert chapman_estimate(10, 10, 2) == pytest.approx(121 / 3 - 1)

    def test_zero_recaptures_defined(self):
        assert chapman_estimate(10, 10, 0) == 120.0

    def test_validation(self):
        with pytest.raises(SamplingError):
            chapman_estimate(0, 10, 0)
        with pytest.raises(SamplingError):
            chapman_estimate(10, 10, 11)
        with pytest.raises(SamplingError):
            chapman_estimate(10, 10, -1)

    def test_nearly_unbiased_on_synthetic(self):
        """Average Chapman estimate over trials is close to the truth."""
        rng = np.random.default_rng(0)
        population = 150
        estimates = []
        for _ in range(300):
            first = set(rng.integers(0, population, size=40).tolist())
            second = rng.integers(0, population, size=40)
            recaptures = sum(1 for x in second if int(x) in first)
            estimates.append(chapman_estimate(len(first), len(second), recaptures))
        assert abs(np.mean(estimates) - population) < 25


@pytest.fixture
def world():
    rng = np.random.default_rng(1)
    graph = OverlayGraph(power_law_topology(120, rng=rng), n_nodes=120)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(3):
            database.insert(node, {"v": 0.0})
    return graph, database


def test_network_size_estimate(world):
    graph, _ = world
    operator = SamplingOperator(
        graph,
        np.random.default_rng(2),
        config=SamplerConfig(continued_walks=False, gamma=0.02),
    )
    estimate = estimate_network_size(operator, origin=0, phase_size=80)
    assert 50 <= estimate <= 300  # truth: 120


def test_relation_size_estimate(world):
    graph, database = world
    operator = SamplingOperator(
        graph,
        np.random.default_rng(3),
        config=SamplerConfig(continued_walks=False, gamma=0.02),
    )
    estimate = estimate_relation_size(operator, database, origin=0, phase_size=80)
    assert 150 <= estimate <= 900  # truth: 360


class TestChapmanVariance:
    def test_formula(self):
        from repro.sampling.size_estimation import chapman_variance

        # m=10, n=10, k=2: 11*11*8*8 / (9*4) = 7744/36
        assert chapman_variance(10, 10, 2) == pytest.approx(7744 / 36)

    def test_more_recaptures_less_variance(self):
        from repro.sampling.size_estimation import chapman_variance

        assert chapman_variance(50, 50, 20) < chapman_variance(50, 50, 5)

    def test_validation(self):
        from repro.sampling.size_estimation import chapman_variance

        with pytest.raises(SamplingError):
            chapman_variance(0, 10, 0)
        with pytest.raises(SamplingError):
            chapman_variance(10, 10, 11)

    def test_calibrated_against_monte_carlo(self):
        """Seber's variance tracks the empirical estimator variance."""
        from repro.sampling.size_estimation import (
            chapman_estimate,
            chapman_variance,
        )

        rng = np.random.default_rng(0)
        population = 200
        estimates, variances = [], []
        for _ in range(800):
            first = set(rng.integers(0, population, size=50).tolist())
            second = rng.integers(0, population, size=50)
            k = sum(1 for x in second if int(x) in first)
            estimates.append(chapman_estimate(len(first), 50, k))
            variances.append(chapman_variance(len(first), 50, k))
        empirical = float(np.var(estimates))
        predicted = float(np.mean(variances))
        assert empirical == pytest.approx(predicted, rel=0.5)
