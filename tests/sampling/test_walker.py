"""Tests for the random-walk sampling agents."""

import numpy as np
import pytest

from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, power_law_topology, ring_topology
from repro.sampling.metropolis import stationary_distribution
from repro.sampling.mixing import total_variation
from repro.sampling.walker import MetropolisWalker, WalkContext, batch_walk
from repro.sampling.weights import table_weights, uniform_weights


@pytest.fixture
def mesh_context():
    graph = OverlayGraph(mesh_topology(25), n_nodes=25)
    return WalkContext.from_graph(graph, uniform_weights())


class TestWalkContext:
    def test_basic_fields(self, mesh_context):
        assert mesh_context.n_nodes == 25
        assert mesh_context.degrees.sum() == mesh_context.targets.size
        np.testing.assert_allclose(mesh_context.target_distribution().sum(), 1.0)

    def test_compact_index_roundtrip(self, mesh_context):
        for node in (0, 7, 24):
            index = mesh_context.compact_index(node)
            assert mesh_context.node_ids[index] == node

    def test_compact_index_unknown(self, mesh_context):
        with pytest.raises(SamplingError):
            mesh_context.compact_index(999)

    def test_rejects_isolated_nodes(self):
        graph = OverlayGraph([(0, 1)], n_nodes=3)
        with pytest.raises(TopologyError, match="isolated"):
            WalkContext.from_graph(graph, uniform_weights())

    def test_rejects_negative_weights(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(SamplingError):
            WalkContext.from_graph(graph, lambda node: -1.0)

    def test_graph_version_recorded(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        context = WalkContext.from_graph(graph, uniform_weights())
        assert context.graph_version == graph.version


class TestSingleWalker:
    def test_stays_on_edges(self, mesh_context):
        graph = OverlayGraph(mesh_topology(25), n_nodes=25)
        walker = MetropolisWalker(
            mesh_context, 0, np.random.default_rng(0), laziness=0.0
        )
        previous = walker.position
        for _ in range(200):
            current = walker.step()
            assert current == previous or graph.has_edge(previous, current)
            previous = current

    def test_step_counters(self, mesh_context):
        walker = MetropolisWalker(mesh_context, 0, np.random.default_rng(0))
        walker.walk(100)
        assert walker.steps_taken == 100
        # with laziness 1/2, roughly half the steps propose
        assert 20 <= walker.proposals_sent <= 80

    def test_ledger_counts_proposals(self, mesh_context):
        ledger = MessageLedger()
        walker = MetropolisWalker(
            mesh_context, 0, np.random.default_rng(0), ledger=ledger
        )
        walker.walk(100)
        assert ledger.walk_steps == walker.proposals_sent

    def test_negative_steps_rejected(self, mesh_context):
        walker = MetropolisWalker(mesh_context, 0, np.random.default_rng(0))
        with pytest.raises(SamplingError):
            walker.walk(-1)

    def test_invalid_laziness(self, mesh_context):
        with pytest.raises(SamplingError):
            MetropolisWalker(mesh_context, 0, np.random.default_rng(0), laziness=1.0)

    def test_converges_to_uniform(self):
        """Long single walks visit nodes ~ uniformly (ergodic average)."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        context = WalkContext.from_graph(graph, uniform_weights())
        walker = MetropolisWalker(context, 0, np.random.default_rng(0))
        counts = np.zeros(16)
        walker.walk(500)  # burn-in
        for _ in range(30000):
            counts[context.compact_index(walker.step())] += 1
        empirical = counts / counts.sum()
        assert total_variation(empirical, context.target_distribution()) < 0.05


class TestBatchWalk:
    def test_zero_steps_identity(self, mesh_context):
        starts = np.array([0, 3, 5])
        ends = batch_walk(mesh_context, starts, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(ends, starts)

    def test_empty_batch(self, mesh_context):
        ends = batch_walk(
            mesh_context, np.array([], dtype=np.int64), 10, np.random.default_rng(0)
        )
        assert ends.size == 0

    def test_does_not_mutate_starts(self, mesh_context):
        starts = np.zeros(8, dtype=np.int64)
        batch_walk(mesh_context, starts, 50, np.random.default_rng(0))
        assert (starts == 0).all()

    def test_ledger_accounting(self, mesh_context):
        ledger = MessageLedger()
        batch_walk(
            mesh_context,
            np.zeros(10, dtype=np.int64),
            100,
            np.random.default_rng(0),
            ledger=ledger,
        )
        # ~half of 10*100 walker-steps are non-lazy proposals
        assert 300 <= ledger.walk_steps <= 700

    def test_negative_steps_rejected(self, mesh_context):
        with pytest.raises(SamplingError):
            batch_walk(
                mesh_context, np.zeros(2, dtype=np.int64), -1, np.random.default_rng(0)
            )

    def test_uniform_target_distribution(self):
        """Many converged walkers land ~ target-distributed (uniform)."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        context = WalkContext.from_graph(graph, uniform_weights())
        starts = np.zeros(20000, dtype=np.int64)
        ends = batch_walk(context, starts, 300, np.random.default_rng(0))
        counts = np.bincount(ends, minlength=16).astype(float)
        empirical = counts / counts.sum()
        assert total_variation(empirical, context.target_distribution()) < 0.03

    def test_nonuniform_target_distribution(self):
        """Walkers respect an arbitrary weight function (Theorem 2)."""
        graph = OverlayGraph(ring_topology(8), n_nodes=8)
        weights = {node: float(node + 1) for node in graph.nodes()}
        weight = table_weights(weights)
        context = WalkContext.from_graph(graph, weight)
        _, target = stationary_distribution(graph, weight)
        starts = np.zeros(20000, dtype=np.int64)
        ends = batch_walk(context, starts, 400, np.random.default_rng(1))
        counts = np.bincount(ends, minlength=8).astype(float)
        empirical = counts / counts.sum()
        assert total_variation(empirical, target) < 0.03

    def test_matches_single_walker_distribution(self):
        """Batch and single-step implementations sample the same chain."""
        rng = np.random.default_rng(3)
        graph = OverlayGraph(power_law_topology(40, rng=rng), n_nodes=40)
        weight = uniform_weights()
        context = WalkContext.from_graph(graph, weight)
        ends_batch = batch_walk(
            context, np.zeros(8000, dtype=np.int64), 150, np.random.default_rng(4)
        )
        singles = np.empty(8000, dtype=np.int64)
        rng_single = np.random.default_rng(5)
        for i in range(8000):
            walker = MetropolisWalker(context, 0, rng_single)
            singles[i] = context.compact_index(walker.walk(150))
        batch_hist = np.bincount(ends_batch, minlength=40) / 8000
        single_hist = np.bincount(singles, minlength=40) / 8000
        # two independent 8000-draw histograms over 40 bins have expected
        # TV ~ 0.03-0.04 even for identical chains; 0.06 flags real skew
        assert total_variation(batch_hist, single_hist) < 0.06


class TestFromSubgraph:
    def test_keeps_only_intra_scope_edges(self):
        graph = OverlayGraph(ring_topology(8), n_nodes=8)
        context = WalkContext.from_subgraph(
            graph, uniform_weights(), nodes=[0, 1, 2, 3]
        )
        assert context.node_ids.tolist() == [0, 1, 2, 3]
        # the ring arc 0-1-2-3 keeps its 3 internal edges; the wrap-around
        # edges (0,7) and (3,4) are dropped
        assert context.degrees.tolist() == [1, 2, 2, 1]

    def test_matches_from_graph_on_full_scope(self):
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        full = WalkContext.from_graph(graph, uniform_weights())
        scoped = WalkContext.from_subgraph(
            graph, uniform_weights(), nodes=graph.nodes()
        )
        assert scoped.node_ids.tolist() == full.node_ids.tolist()
        assert scoped.offsets.tolist() == full.offsets.tolist()
        assert scoped.targets.tolist() == full.targets.tolist()

    def test_rejects_empty_scope(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(SamplingError, match="no nodes"):
            WalkContext.from_subgraph(graph, uniform_weights(), nodes=[])

    def test_rejects_internally_disconnected_scope(self):
        # 0 and 2 are opposite corners of a 4-ring: scope {0, 2} has no
        # internal edges, leaving both isolated
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(TopologyError, match="isolated"):
            WalkContext.from_subgraph(graph, uniform_weights(), nodes=[0, 2])

    def test_walks_never_leave_the_scope(self):
        graph = OverlayGraph(ring_topology(10), n_nodes=10)
        context = WalkContext.from_subgraph(
            graph, uniform_weights(), nodes=[0, 1, 2, 3, 4]
        )
        rng = np.random.default_rng(0)
        starts = np.zeros(32, dtype=np.int64)
        final = batch_walk(context, starts, steps=50, rng=rng)
        sampled = {int(context.node_ids[index]) for index in final}
        assert sampled <= {0, 1, 2, 3, 4}

    def test_single_node_scope_is_allowed(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        context = WalkContext.from_subgraph(
            graph, uniform_weights(), nodes=[1]
        )
        assert context.n_nodes == 1
