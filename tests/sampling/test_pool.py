"""Tests for the shared sample pool."""

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology
from repro.obs.tracer import RecordingTracer
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sampling.pool import PoolConfig, SamplePool


def _world(n=36, tuples_low=1, tuples_high=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(int(rng.integers(tuples_low, tuples_high))):
            database.insert(node, {"v": float(rng.normal(0, 1))})
    return graph, database


def _pool(graph, seed=0, ledger=None, tracer=None, config=None):
    return SamplePool(
        graph,
        np.random.default_rng(seed),
        ledger,
        SamplerConfig(walk_length=20, continued_walks=False),
        tracer=tracer,
        config=config,
    )


class TestConfig:
    def test_defaults_valid(self):
        assert PoolConfig().max_age == 0

    def test_rejects_negative_age(self):
        with pytest.raises(SamplingError):
            PoolConfig(max_age=-1)


class TestAcquire:
    def test_identical_to_operator_when_empty(self):
        """A cold pool is RNG-transparent: same draws as a bare operator."""
        graph, database = _world()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(3),
            config=SamplerConfig(walk_length=20, continued_walks=False),
        )
        direct = operator.sample_tuples(database, 12, origin=0)
        pool = _pool(graph, seed=3)
        pool.begin_epoch(0)
        served = pool.acquire(database, 12, origin=0, consumer="q0")
        assert [s.tuple_id for s in served] == [s.tuple_id for s in direct]

    def test_second_consumer_served_from_pool(self):
        graph, database = _world()
        ledger = MessageLedger()
        pool = _pool(graph, ledger=ledger)
        pool.begin_epoch(0)
        first = pool.acquire(database, 10, origin=0, consumer="q0")
        cost_after_first = ledger.total
        second = pool.acquire(database, 10, origin=0, consumer="q1")
        assert ledger.total == cost_after_first  # zero walks for q1
        assert [s.tuple_id for s in second] == [s.tuple_id for s in first]
        assert pool.pool_hits == 10
        assert pool.pool_misses == 10
        assert pool.hit_rate == pytest.approx(0.5)

    def test_same_consumer_never_resampled(self):
        """Top-ups serve only draws beyond the consumer's cursor."""
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        first = pool.acquire(database, 8, origin=0, consumer="q0")
        # q1 over-draws, leaving 4 pooled samples q0 has not seen
        pool.acquire(database, 12, origin=0, consumer="q1")
        topup = pool.acquire(database, 6, origin=0, consumer="q0")
        seen = {s.tuple_id for s in first}
        pooled_beyond = [s.tuple_id for s in topup[:4]]
        assert pool.pool_hits == 8 + 4  # q1's 8 + q0's 4
        assert len(topup) == 6
        # the 4 pool hits are exactly q1's surplus, not q0's own draws
        assert all(t not in seen or t in pooled_beyond for t in pooled_beyond)

    def test_marginal_shortfall_only(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.acquire(database, 10, origin=0, consumer="q0")
        pool.acquire(database, 14, origin=0, consumer="q1")
        assert pool.pool_hits == 10
        assert pool.pool_misses == 10 + 4
        assert pool.n_pooled == 14

    def test_zero_and_negative(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        assert pool.acquire(database, 0, origin=0) == []
        with pytest.raises(SamplingError):
            pool.acquire(database, -1, origin=0)

    def test_deleted_tuples_not_served(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        first = pool.acquire(database, 10, origin=0, consumer="q0")
        dead = {s.tuple_id for s in first[:5]}
        for tuple_id in dead:
            database.delete(tuple_id)
        live = sum(1 for s in first if s.tuple_id not in dead)
        second = pool.acquire(database, 10, origin=0, consumer="q1")
        assert all(s.tuple_id in database for s in second)
        assert pool.pool_hits == live  # only the live entries reused


class TestEpochs:
    def test_default_age_evicts_previous_tick(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.acquire(database, 10, origin=0, consumer="q0")
        assert pool.n_pooled == 10
        pool.begin_epoch(1)
        assert pool.n_pooled == 0
        pool.acquire(database, 10, origin=0, consumer="q1")
        assert pool.pool_hits == 0  # nothing stale was served

    def test_begin_epoch_idempotent(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.acquire(database, 6, origin=0, consumer="q0")
        pool.begin_epoch(0)
        assert pool.n_pooled == 6

    def test_max_age_keeps_recent_epochs(self):
        graph, database = _world()
        pool = _pool(graph, config=PoolConfig(max_age=2))
        pool.begin_epoch(0)
        pool.acquire(database, 5, origin=0, consumer="q0")
        pool.begin_epoch(2)
        assert pool.n_pooled == 5  # age 2 still within max_age
        pool.begin_epoch(3)
        assert pool.n_pooled == 0

    def test_cursors_survive_eviction(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.acquire(database, 5, origin=0, consumer="q0")
        pool.begin_epoch(1)
        served = pool.acquire(database, 5, origin=0, consumer="q0")
        assert len(served) == 5
        assert pool.pool_misses == 10  # all fresh both times


class TestPrefetch:
    def test_tops_up_to_target(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        drawn = pool.prefetch(database, 12, origin=0, consumers=("q0", "q1"))
        assert drawn == 12
        assert pool.n_pooled == 12
        assert pool.prefetch(database, 10, origin=0) == 0  # already covered
        # consumers then hit without any new walks
        pool.acquire(database, 12, origin=0, consumer="q0")
        pool.acquire(database, 12, origin=0, consumer="q1")
        assert pool.pool_hits == 24
        assert pool.pool_misses == 0

    def test_records_attributed_batch_span(self):
        graph, database = _world()
        tracer = RecordingTracer()
        pool = _pool(graph, tracer=tracer)
        pool.begin_epoch(0)
        pool.prefetch(database, 8, origin=0, consumers=("q1", "q0"))
        batches = tracer.trace().spans_named("shared_walk_batch")
        assert len(batches) == 1
        assert batches[0].attrs["consumers"] == "q1,q0"
        assert batches[0].attrs["n_consumers"] == 2
        assert batches[0].attrs["n_drawn"] == 8

    def test_negative_rejected(self):
        graph, database = _world()
        pool = _pool(graph)
        with pytest.raises(SamplingError):
            pool.prefetch(database, -1, origin=0)


class TestTracing:
    def test_pool_serve_spans_carry_hit_miss_split(self):
        graph, database = _world()
        tracer = RecordingTracer()
        pool = _pool(graph, tracer=tracer)
        pool.begin_epoch(0)
        pool.acquire(database, 10, origin=0, consumer="q0")
        pool.acquire(database, 6, origin=0, consumer="q1")
        serves = tracer.trace().spans_named("pool_serve")
        assert [s.attrs["consumer"] for s in serves] == ["q0", "q1"]
        assert serves[0].attrs["n_hit"] == 0
        assert serves[0].attrs["n_miss"] == 10
        assert serves[1].attrs["n_hit"] == 6
        assert serves[1].attrs["n_miss"] == 0


class TestLease:
    def test_lease_binds_consumer(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        lease_a = pool.lease("qa")
        lease_b = pool.lease("qb")
        first = lease_a.sample_tuples(database, 9, origin=0)
        second = lease_b.sample_tuples(database, 9, origin=0)
        assert [s.tuple_id for s in second] == [s.tuple_id for s in first]
        assert pool.pool_hits == 9
        assert lease_a.consumer == "qa"
        assert lease_a.pool is pool

    def test_wrapping_reuses_operator(self):
        graph, database = _world()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(walk_length=20, continued_walks=False),
        )
        pool = SamplePool.wrapping(operator)
        assert pool.operator is operator
        pool.begin_epoch(0)
        pool.acquire(database, 4, origin=0, consumer="q0")
        assert operator.samples_drawn == 4


class TestReset:
    def test_reset_clears_state(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.acquire(database, 5, origin=0, consumer="q0")
        pool.reset()
        assert pool.n_pooled == 0
        assert pool.pool_hits == 0
        assert pool.pool_misses == 0
        served = pool.acquire(database, 5, origin=0, consumer="q0")
        assert len(served) == 5


class TestInvalidateScope:
    def test_evicts_everything_and_reports_count(self):
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        pool.prefetch(database, 10, origin=0)
        assert pool.n_pooled == 10
        assert pool.invalidate_scope(0, "cut") == 10
        assert pool.n_pooled == 0

    def test_emits_pool_invalidate_event(self):
        from repro.obs.schema import EVENT_POOL_INVALIDATE

        graph, database = _world()
        tracer = RecordingTracer()
        pool = _pool(graph, tracer=tracer)
        pool.begin_epoch(3)
        pool.prefetch(database, 5, origin=0)
        pool.invalidate_scope(3, "heal")
        events = [
            event
            for event in tracer.trace().events
            if event.name == EVENT_POOL_INVALIDATE
        ]
        assert len(events) == 1
        assert events[0].attrs == {"n_evicted": 5, "reason": "heal"}
        assert events[0].time == 3

    def test_cursors_survive_invalidation(self):
        """Post-invalidation draws are still never re-served to a consumer."""
        graph, database = _world()
        pool = _pool(graph)
        pool.begin_epoch(0)
        first = pool.acquire(database, 6, origin=0, consumer="q0")
        pool.invalidate_scope(0, "cut")
        second = pool.acquire(database, 6, origin=0, consumer="q0")
        # both acquisitions drew fresh: the evicted samples were never
        # replayed (fresh draws may still coincide on tuple ids by chance)
        assert pool.pool_hits == 0
        assert pool.pool_misses == 12
        assert len(first) == 6
        assert len(second) == 6
