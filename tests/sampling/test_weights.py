"""Tests for node weight functions."""

import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.topology import ring_topology
from repro.sampling.weights import (
    content_size_weights,
    degree_weights,
    table_weights,
    uniform_weights,
    validate_weights,
)


def test_uniform():
    weight = uniform_weights()
    assert weight(0) == weight(999) == 1.0


def test_content_size_tracks_database():
    database = P2PDatabase(Schema(("v",)), nodes=[0, 1])
    weight = content_size_weights(database)
    assert weight(0) == 0.0
    tid = database.insert(0, {"v": 1.0})
    assert weight(0) == 1.0  # live view, not a snapshot
    database.delete(tid)
    assert weight(0) == 0.0


def test_content_size_floor():
    database = P2PDatabase(Schema(("v",)), nodes=[0])
    weight = content_size_weights(database, floor=0.1)
    assert weight(0) == 0.1
    with pytest.raises(SamplingError):
        content_size_weights(database, floor=-1.0)


def test_degree_weights():
    graph = OverlayGraph(ring_topology(5), n_nodes=5)
    weight = degree_weights(graph)
    assert weight(0) == 2.0


def test_table_weights():
    weight = table_weights({0: 2.0, 1: 3.0})
    assert weight(1) == 3.0
    with pytest.raises(SamplingError):
        weight(7)
    with pytest.raises(SamplingError):
        table_weights({0: -1.0})


def test_validate_weights():
    validate_weights(uniform_weights(), [0, 1, 2])
    with pytest.raises(SamplingError, match="all node weights are zero"):
        validate_weights(lambda node: 0.0, [0, 1])
    with pytest.raises(SamplingError, match="invalid"):
        validate_weights(lambda node: float("nan"), [0])
