"""Tests for convergence analysis (Definitions 1-2, Theorem 3)."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, power_law_topology, ring_topology
from repro.sampling.metropolis import metropolis_matrix, stationary_distribution
from repro.sampling.mixing import (
    eigengap,
    eigengap_sparse,
    empirical_mixing_time,
    mixing_time_bound,
    relaxation_time,
    sparse_transition_matrix,
    total_variation,
    walk_length_for,
)
from repro.sampling.walker import WalkContext
from repro.sampling.weights import uniform_weights


class TestTotalVariation:
    def test_identical(self):
        p = np.array([0.5, 0.5])
        assert total_variation(p, p) == 0.0

    def test_disjoint(self):
        assert total_variation(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 1.0

    def test_symmetric(self):
        p = np.array([0.7, 0.3])
        q = np.array([0.4, 0.6])
        assert total_variation(p, q) == total_variation(q, p) == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(SamplingError):
            total_variation(np.ones(2) / 2, np.ones(3) / 3)


class TestEigengap:
    def test_identity_has_zero_gap(self):
        assert eigengap(np.eye(3)) == 0.0

    def test_uniform_chain_has_full_gap(self):
        matrix = np.full((4, 4), 0.25)
        assert eigengap(matrix) == pytest.approx(1.0, abs=1e-9)

    def test_two_state_chain(self):
        # P = [[1-a, a], [b, 1-b]]: lambda_2 = 1 - a - b
        a, b = 0.3, 0.2
        matrix = np.array([[1 - a, a], [b, 1 - b]])
        assert eigengap(matrix) == pytest.approx(a + b)

    def test_rejects_non_stochastic(self):
        with pytest.raises(SamplingError):
            eigengap(np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_rejects_non_square(self):
        with pytest.raises(SamplingError):
            eigengap(np.ones((2, 3)))

    def test_sparse_matches_dense(self):
        graph = OverlayGraph(mesh_topology(36), n_nodes=36)
        node_ids, dense = metropolis_matrix(graph, uniform_weights())
        context = WalkContext.from_graph(graph, uniform_weights())
        sparse = sparse_transition_matrix(
            context.offsets, context.targets, context.weights
        )
        np.testing.assert_allclose(sparse.toarray(), dense, atol=1e-12)
        assert eigengap_sparse(sparse) == pytest.approx(eigengap(dense), abs=1e-6)

    def test_sparse_larger_graph(self):
        rng = np.random.default_rng(0)
        graph = OverlayGraph(power_law_topology(200, rng=rng), n_nodes=200)
        context = WalkContext.from_graph(graph, uniform_weights())
        sparse = sparse_transition_matrix(
            context.offsets, context.targets, context.weights
        )
        dense_gap = eigengap(sparse.toarray())
        sparse_gap = eigengap_sparse(sparse)
        assert sparse_gap == pytest.approx(dense_gap, rel=1e-3)


class TestBounds:
    def test_mixing_time_bound_formula(self):
        # gap=0.5, p_min=0.1, gamma=0.01 -> ceil(ln(1000)/0.5) = 14
        assert mixing_time_bound(0.5, 0.1, 0.01) == 14

    def test_bound_validation(self):
        with pytest.raises(SamplingError):
            mixing_time_bound(0.0, 0.1, 0.01)
        with pytest.raises(SamplingError):
            mixing_time_bound(0.5, 0.0, 0.01)
        with pytest.raises(SamplingError):
            mixing_time_bound(0.5, 0.1, 1.5)

    def test_relaxation_time(self):
        assert relaxation_time(0.25) == 4
        assert relaxation_time(1.0) == 1
        with pytest.raises(SamplingError):
            relaxation_time(0.0)

    def test_theorem3_bound_dominates_empirical(self):
        """The analytic bound must upper-bound the exact mixing time."""
        for topology in (ring_topology(12), mesh_topology(16)):
            graph = OverlayGraph(topology)
            node_ids, matrix = metropolis_matrix(graph, uniform_weights())
            _, target = stationary_distribution(graph, uniform_weights())
            gamma = 0.05
            empirical = empirical_mixing_time(matrix, target, gamma)
            bound = walk_length_for(matrix, target, gamma)
            assert empirical <= bound

    def test_empirical_mixing_monotone_in_gamma(self):
        graph = OverlayGraph(mesh_topology(16))
        _, matrix = metropolis_matrix(graph, uniform_weights())
        _, target = stationary_distribution(graph, uniform_weights())
        loose = empirical_mixing_time(matrix, target, 0.2)
        tight = empirical_mixing_time(matrix, target, 0.01)
        assert tight >= loose

    def test_empirical_mixing_times_out(self):
        # periodic two-state chain never mixes
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        target = np.array([0.5, 0.5])
        with pytest.raises(SamplingError, match="did not mix"):
            empirical_mixing_time(matrix, target, 0.01, max_steps=50)

    def test_walk_length_rejects_zero_mass_target(self):
        graph = OverlayGraph(ring_topology(4))
        _, matrix = metropolis_matrix(graph, uniform_weights())
        target = np.array([0.5, 0.5, 0.0, 0.0])
        with pytest.raises(SamplingError):
            walk_length_for(matrix, target, 0.05)
