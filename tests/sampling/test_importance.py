"""Tests for the importance-sampling (plain walk + SNIS) alternative."""

import numpy as np
import pytest

from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.sampling.importance import (
    ImportanceSampler,
    WeightedSample,
    effective_sample_size,
    self_normalized_mean,
)


def _world(n=36, seed=0, skewed=False):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        count = 1 + (5 if skewed and node % 4 == 0 else 1)
        for _ in range(count):
            database.insert(node, {"v": float(rng.normal(10, 3))})
    return graph, database


class TestSampler:
    def test_draws_requested_count(self):
        graph, database = _world()
        sampler = ImportanceSampler(graph, np.random.default_rng(1))
        samples = sampler.sample_weighted_tuples(
            database, Expression("v"), 40, origin=0
        )
        assert len(samples) == 40
        for sample in samples:
            assert sample.weight > 0
            assert database.locate(sample.tuple_id) == sample.node

    def test_weights_are_m_over_d(self):
        graph, database = _world()
        sampler = ImportanceSampler(graph, np.random.default_rng(1))
        for sample in sampler.sample_weighted_tuples(
            database, Expression("v"), 10, origin=0
        ):
            expected = len(database.store(sample.node)) / graph.degree(sample.node)
            assert sample.weight == pytest.approx(expected)

    def test_estimate_consistent(self):
        """SNIS converges to the true tuple mean on a skewed world."""
        graph, database = _world(seed=2, skewed=True)
        truth = float(database.exact_values(Expression("v")).mean())
        sampler = ImportanceSampler(graph, np.random.default_rng(3))
        samples = sampler.sample_weighted_tuples(
            database, Expression("v"), 3000, origin=0
        )
        assert self_normalized_mean(samples) == pytest.approx(truth, abs=0.5)

    def test_validation(self):
        graph, database = _world()
        sampler = ImportanceSampler(graph, np.random.default_rng(1))
        with pytest.raises(SamplingError):
            sampler.sample_weighted_tuples(database, Expression("v"), 0, origin=0)
        with pytest.raises(SamplingError):
            sampler.sample_weighted_tuples(
                database, Expression("v"), 5, origin=10**6
            )
        with pytest.raises(SamplingError):
            ImportanceSampler(graph, np.random.default_rng(1), walk_length=0)


class TestEstimators:
    def _samples(self, weights, values):
        return [
            WeightedSample(tuple_id=i, node=0, value=v, weight=w)
            for i, (w, v) in enumerate(zip(weights, values))
        ]

    def test_self_normalized_mean(self):
        samples = self._samples([1.0, 3.0], [10.0, 20.0])
        assert self_normalized_mean(samples) == pytest.approx(17.5)

    def test_uniform_weights_reduce_to_mean(self):
        samples = self._samples([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])
        assert self_normalized_mean(samples) == pytest.approx(2.0)

    def test_ess(self):
        uniform = self._samples([1.0] * 4, [0.0] * 4)
        assert effective_sample_size(uniform) == pytest.approx(4.0)
        skewed = self._samples([100.0, 1e-6, 1e-6], [0.0] * 3)
        assert effective_sample_size(skewed) == pytest.approx(1.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(SamplingError):
            self_normalized_mean([])
        with pytest.raises(SamplingError):
            effective_sample_size([])


def test_ablation_shape():
    """Metropolis targeting beats SNIS reweighting on the skewed world."""
    from repro.experiments.ablations import importance_sampling_ablation

    result = importance_sampling_ablation(n_nodes=100, budget=50, trials=15)
    assert result.rmse_metropolis < result.rmse_importance
    assert result.mean_effective_sample_size < result.budget
