"""Tests for the sampling operator S."""

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, power_law_topology
from repro.sampling.mixing import total_variation
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sampling.weights import table_weights, uniform_weights


def _world(n=36, tuples_low=1, tuples_high=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n), n_nodes=n)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(int(rng.integers(tuples_low, tuples_high))):
            database.insert(node, {"v": float(rng.normal(0, 1))})
    return graph, database


class TestConfig:
    def test_defaults_valid(self):
        SamplerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gamma": 0.0},
            {"gamma": 1.0},
            {"laziness": 1.0},
            {"walk_length": 0},
            {"reset_length": 0},
            {"recompute_drift": 0.0},
            {"length_policy": "bogus"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(SamplingError):
            SamplerConfig(**kwargs)


class TestNodeSampling:
    def test_respects_weight_function(self):
        graph, _ = _world()
        weights = {node: 1.0 if node < 18 else 3.0 for node in graph.nodes()}
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(gamma=0.02, continued_walks=False),
        )
        samples = operator.sample_nodes(table_weights(weights), 6000, origin=0)
        counts = np.zeros(36)
        for node in samples:
            counts[node] += 1
        target = np.array([weights[n] for n in range(36)])
        target = target / target.sum()
        assert total_variation(counts / counts.sum(), target) < 0.05

    def test_zero_samples(self):
        graph, _ = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        assert operator.sample_nodes(uniform_weights(), 0, origin=0) == []

    def test_negative_samples_rejected(self):
        graph, _ = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        with pytest.raises(SamplingError):
            operator.sample_nodes(uniform_weights(), -1, origin=0)

    def test_unknown_origin_rejected(self):
        graph, _ = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        with pytest.raises(SamplingError):
            operator.sample_nodes(uniform_weights(), 1, origin=999)

    def test_fixed_walk_length_used(self):
        graph, _ = _world()
        ledger = MessageLedger()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            ledger,
            SamplerConfig(walk_length=40, continued_walks=False, laziness=0.0),
        )
        operator.sample_nodes(uniform_weights(), 10, origin=0)
        assert ledger.walk_steps == 400  # every step proposes at laziness 0

    def test_continued_walks_cheaper(self):
        graph, database = _world(64)
        costs = {}
        for continued in (True, False):
            ledger = MessageLedger()
            operator = SamplingOperator(
                graph,
                np.random.default_rng(0),
                ledger,
                SamplerConfig(continued_walks=continued),
            )
            for _ in range(4):
                operator.sample_nodes(uniform_weights(), 20, origin=0)
                if not continued:
                    operator.reset_pool()
            costs[continued] = ledger.walk_steps
        assert costs[True] < costs[False]

    def test_pool_survives_and_prunes_on_churn(self):
        graph, database = _world(49)
        operator = SamplingOperator(
            graph, np.random.default_rng(0), config=SamplerConfig()
        )
        operator.sample_nodes(uniform_weights(), 10, origin=0)
        assert operator._pool_nodes  # continued pool populated
        # remove a sampled node; the pool entry must not be reused
        victim = operator._pool_nodes[0]
        graph.leave(victim)
        samples = operator.sample_nodes(uniform_weights(), 10, origin=0)
        assert victim not in samples

    def test_sample_returns_counted(self):
        graph, _ = _world()
        ledger = MessageLedger()
        operator = SamplingOperator(graph, np.random.default_rng(0), ledger)
        operator.sample_nodes(uniform_weights(), 5, origin=0)
        assert ledger.sample_returns > 0

    def test_eigengap_cached_until_drift(self):
        graph, _ = _world(49)
        operator = SamplingOperator(graph, np.random.default_rng(0))
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        first_gap = operator.last_eigengap
        # tiny change: cache should persist (drift below threshold)
        graph.join(attach_to=[0, 1])
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        assert operator.last_eigengap == first_gap
        operator.invalidate_walk_length_cache()
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        assert operator.last_eigengap is not None

    def test_theorem3_policy_runs(self):
        graph, _ = _world(25)
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(length_policy="theorem3", gamma=0.1),
        )
        samples = operator.sample_nodes(uniform_weights(), 5, origin=0)
        assert len(samples) == 5


class TestTupleSampling:
    def test_two_stage_uniform_over_tuples(self):
        """Two-stage sampling makes every tuple ~equally likely."""
        graph, database = _world(25, tuples_low=1, tuples_high=8, seed=2)
        operator = SamplingOperator(
            graph,
            np.random.default_rng(3),
            config=SamplerConfig(gamma=0.02, continued_walks=False),
        )
        counts: dict[int, int] = {}
        for sample in operator.sample_tuples(database, 8000, origin=0):
            counts[sample.tuple_id] = counts.get(sample.tuple_id, 0) + 1
        n = database.n_tuples
        empirical = np.array([counts.get(t, 0) for t in range(n)], dtype=float)
        empirical /= empirical.sum()
        assert total_variation(empirical, np.full(n, 1.0 / n)) < 0.08

    def test_sample_row_matches_database(self):
        graph, database = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        for sample in operator.sample_tuples(database, 10, origin=0):
            assert database.locate(sample.tuple_id) == sample.node
            assert database.read(sample.tuple_id) == sample.row

    def test_empty_relation_rejected(self):
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        operator = SamplingOperator(graph, np.random.default_rng(0))
        with pytest.raises(SamplingError):
            operator.sample_tuples(database, 1, origin=0)

    def test_empty_nodes_skipped(self):
        """Nodes with no tuples have zero weight and yield no samples."""
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        for node in range(8):  # only half the nodes hold data
            database.insert(node, {"v": 1.0})
        operator = SamplingOperator(graph, np.random.default_rng(0))
        samples = operator.sample_tuples(database, 50, origin=0)
        assert len(samples) == 50
        assert all(s.node < 8 for s in samples)

    def test_cluster_sample_returns_whole_fragment(self):
        graph, database = _world()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        node, batch = operator.cluster_sample(database, origin=0)
        assert len(batch) == len(database.store(node))
        assert all(s.node == node for s in batch)


class TestPartitionScoping:
    def _partitioned_world(self, n=30, seed=0, fractions=(0.5, 0.5)):
        from repro.network.partitions import (
            PartitionEpisode,
            PartitionPlan,
            PartitionSchedule,
        )

        graph, database = _world(n=n, seed=seed)
        plan = PartitionPlan(
            PartitionSchedule(
                episodes=(
                    PartitionEpisode(
                        start=0, duration=10, fractions=fractions
                    ),
                )
            ),
            rng=seed + 3,
        )
        plan.step(0, graph)
        return graph, database, plan

    def test_samples_confined_to_origin_region(self):
        graph, database, plan = self._partitioned_world()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(1),
            config=SamplerConfig(walk_length=30, continued_walks=False),
            partitions=plan,
        )
        origin = 0
        scope = set(plan.reachable(graph, origin))
        assert len(scope) < len(graph)
        sampled = operator.sample_nodes(uniform_weights(), 40, origin)
        assert set(sampled) <= scope

    def test_singleton_scope_degenerates_to_origin(self):
        from repro.network.partitions import (
            PartitionEpisode,
            PartitionPlan,
            PartitionSchedule,
        )

        # two nodes, one edge: a 50/50 cut always isolates the origin
        graph = OverlayGraph([(0, 1)], n_nodes=2)
        plan = PartitionPlan(
            PartitionSchedule(
                episodes=(PartitionEpisode(start=0, duration=5),)
            ),
            rng=0,
        )
        plan.step(0, graph)
        operator = SamplingOperator(
            graph,
            np.random.default_rng(1),
            config=SamplerConfig(walk_length=5, continued_walks=False),
            partitions=plan,
        )
        assert operator.sample_nodes(uniform_weights(), 4, 0) == [0, 0, 0, 0]

    def test_inactive_plan_is_rng_transparent(self):
        """An idle partition plan must not perturb the walk draws."""
        from repro.network.partitions import (
            PartitionEpisode,
            PartitionPlan,
            PartitionSchedule,
        )

        def draws(with_plan: bool) -> list[int]:
            graph, database = _world(seed=4)
            plan = None
            if with_plan:
                plan = PartitionPlan(
                    PartitionSchedule(
                        episodes=(PartitionEpisode(start=50, duration=5),)
                    ),
                    rng=9,
                )
                plan.step(0, graph)
            operator = SamplingOperator(
                graph,
                np.random.default_rng(7),
                config=SamplerConfig(walk_length=20, continued_walks=False),
                partitions=plan,
            )
            return operator.sample_nodes(uniform_weights(), 15, 0)

        assert draws(False) == draws(True)

    def test_full_sampling_resumes_after_heal(self):
        graph, database, plan = self._partitioned_world()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(1),
            config=SamplerConfig(walk_length=30, continued_walks=False),
            partitions=plan,
        )
        plan.step(10, graph)  # heal
        assert not plan.active
        sampled = operator.sample_nodes(uniform_weights(), 60, 0)
        # walks roam the whole overlay again
        assert len(set(sampled)) > len(graph) // 2
