"""Tests for the Metropolis forwarding construction (Eq. 12, Theorems 1-2)."""

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.network.topology import (
    mesh_topology,
    power_law_topology,
    ring_topology,
)
from repro.sampling.metropolis import (
    acceptance_probability,
    metropolis_matrix,
    stationary_distribution,
)
from repro.sampling.weights import (
    content_size_weights,
    table_weights,
    uniform_weights,
)


class TestAcceptance:
    def test_symmetric_uniform(self):
        assert acceptance_probability(1.0, 4, 1.0, 4) == 1.0

    def test_favors_heavier_target(self):
        # moving to a heavier node is always accepted
        assert acceptance_probability(1.0, 3, 5.0, 3) == 1.0
        # moving to a lighter node is damped by the weight ratio
        assert acceptance_probability(5.0, 3, 1.0, 3) == pytest.approx(0.2)

    def test_degree_correction(self):
        # uniform weights, i has degree 2, j degree 4: accept with d_i/d_j
        assert acceptance_probability(1.0, 2, 1.0, 4) == pytest.approx(0.5)

    def test_zero_weight_always_leaves(self):
        assert acceptance_probability(0.0, 3, 1.0, 3) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(SamplingError):
            acceptance_probability(1.0, 0, 1.0, 1)
        with pytest.raises(SamplingError):
            acceptance_probability(-1.0, 1, 1.0, 1)


def _check_chain(graph, weight, laziness=0.5):
    """Shared assertions: stochastic rows, detailed balance, stationarity."""
    node_ids, matrix = metropolis_matrix(graph, weight, laziness=laziness)
    _, pi = stationary_distribution(graph, weight)
    # row stochastic, non-negative
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
    assert (matrix >= -1e-15).all()
    # detailed balance: pi_i P_ij == pi_j P_ji
    balance = pi[:, None] * matrix
    np.testing.assert_allclose(balance, balance.T, atol=1e-12)
    # stationarity: pi P == pi
    np.testing.assert_allclose(pi @ matrix, pi, atol=1e-12)
    return node_ids, matrix, pi


class TestChainConstruction:
    def test_uniform_on_mesh(self):
        graph = OverlayGraph(mesh_topology(25), n_nodes=25)
        _check_chain(graph, uniform_weights())

    def test_uniform_on_ring(self):
        graph = OverlayGraph(ring_topology(10), n_nodes=10)
        _check_chain(graph, uniform_weights())

    def test_nonuniform_on_power_law(self):
        rng = np.random.default_rng(0)
        graph = OverlayGraph(power_law_topology(60, rng=rng), n_nodes=60)
        weights = {node: float(1 + rng.integers(1, 10)) for node in graph.nodes()}
        _check_chain(graph, table_weights(weights))

    def test_content_size_weights(self):
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        rng = np.random.default_rng(1)
        for node in graph.nodes():
            for _ in range(1 + int(rng.integers(0, 4))):
                database.insert(node, {"v": 0.0})
        _, _, pi = _check_chain(graph, content_size_weights(database))
        sizes = np.array([len(database.store(n)) for n in sorted(graph.nodes())])
        np.testing.assert_allclose(pi, sizes / sizes.sum(), atol=1e-12)

    def test_laziness_zero(self):
        graph = OverlayGraph(mesh_topology(9), n_nodes=9)
        _, matrix, _ = _check_chain(graph, uniform_weights(), laziness=0.0)
        # without laziness, proposals carry full mass: uniform weights on a
        # corner node (degree 2) put 1/2 on each neighbor
        node_ids, _ = metropolis_matrix(graph, uniform_weights(), laziness=0.0)

    def test_laziness_half_diagonal(self):
        graph = OverlayGraph(ring_topology(6), n_nodes=6)
        _, matrix = metropolis_matrix(graph, uniform_weights(), laziness=0.5)
        assert (np.diag(matrix) >= 0.5 - 1e-12).all()

    def test_invalid_laziness(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(SamplingError):
            metropolis_matrix(graph, uniform_weights(), laziness=1.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            metropolis_matrix(OverlayGraph([]), uniform_weights())

    def test_all_zero_weights_rejected(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(SamplingError):
            metropolis_matrix(graph, lambda node: 0.0)

    def test_zero_weight_node_is_transient(self):
        """A zero-weight node gets zero stationary mass but stays reachable."""
        graph = OverlayGraph(ring_topology(5), n_nodes=5)
        weights = {0: 0.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0}
        node_ids, matrix = metropolis_matrix(graph, table_weights(weights))
        _, pi = stationary_distribution(graph, table_weights(weights))
        assert pi[0] == 0.0
        # power iteration converges to pi despite the transient state
        distribution = np.full(5, 0.2)
        for _ in range(2000):
            distribution = distribution @ matrix
        np.testing.assert_allclose(distribution, pi, atol=1e-6)


class TestStationaryDistribution:
    def test_normalization(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        _, pi = stationary_distribution(graph, table_weights({0: 1, 1: 2, 2: 3, 3: 4}))
        np.testing.assert_allclose(pi, [0.1, 0.2, 0.3, 0.4])

    def test_rejects_nan_weight(self):
        graph = OverlayGraph(ring_topology(4), n_nodes=4)
        with pytest.raises(SamplingError):
            stationary_distribution(graph, lambda node: float("nan"))
