"""Tests for the sampling operator's walk-length policies and caching."""

import numpy as np
import pytest

from repro.db.relation import P2PDatabase, Schema
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import augmented_mesh_topology, mesh_topology
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sampling.weights import uniform_weights


def _graph(n=49, augmented=False, seed=0):
    if augmented:
        edges = augmented_mesh_topology(n, rng=np.random.default_rng(seed))
    else:
        edges = mesh_topology(n)
    return OverlayGraph(edges, n_nodes=n)


class TestLengthPolicies:
    def test_empirical_shorter_than_theorem3(self):
        """The exact mixing length is well below the analytic bound."""
        lengths = {}
        for policy in ("empirical", "theorem3"):
            graph = _graph()
            ledger = MessageLedger()
            operator = SamplingOperator(
                graph,
                np.random.default_rng(0),
                ledger,
                SamplerConfig(
                    gamma=0.05,
                    length_policy=policy,
                    continued_walks=False,
                    laziness=0.0,  # every step proposes: msgs == steps
                ),
            )
            operator.sample_nodes(uniform_weights(), 1, origin=0)
            lengths[policy] = ledger.walk_steps
        assert lengths["empirical"] < lengths["theorem3"]
        assert lengths["empirical"] >= 1

    def test_explicit_walk_length_bypasses_spectral(self):
        graph = _graph()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(walk_length=17),
        )
        operator.sample_nodes(uniform_weights(), 2, origin=0)
        assert operator.last_eigengap is None  # never computed

    def test_reset_length_override(self):
        graph = _graph()
        ledger = MessageLedger()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            ledger,
            SamplerConfig(walk_length=50, reset_length=5, laziness=0.0),
        )
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        first = ledger.walk_steps
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        assert first == 50
        assert ledger.walk_steps - first == 5  # continued walk: reset only

    def test_tighter_gamma_longer_walks(self):
        lengths = {}
        for gamma in (0.2, 0.01):
            graph = _graph()
            ledger = MessageLedger()
            operator = SamplingOperator(
                graph,
                np.random.default_rng(0),
                ledger,
                SamplerConfig(
                    gamma=gamma, continued_walks=False, laziness=0.0
                ),
            )
            operator.sample_nodes(uniform_weights(), 1, origin=0)
            lengths[gamma] = ledger.walk_steps
        assert lengths[0.01] > lengths[0.2]

    def test_origin_change_recomputes(self):
        graph = _graph(augmented=True)
        operator = SamplingOperator(graph, np.random.default_rng(0))
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        gap_before = operator.last_eigengap
        # different origin: the empirical mix length depends on the start
        operator.sample_nodes(uniform_weights(), 1, origin=5)
        assert operator.last_eigengap is not None
        assert gap_before is not None

    def test_drift_triggers_recompute(self):
        graph = _graph()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            config=SamplerConfig(recompute_drift=0.05),
        )
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        mix_before = operator._spectral.mix_length
        # grow the overlay by >5%: spectral cache must refresh
        for _ in range(4):
            graph.join(attach_to=[0, 1], rng=np.random.default_rng(1))
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        assert operator._spectral.n_nodes == len(graph)
        assert operator._spectral.valid


class TestStatistics:
    def test_samples_drawn_counter(self):
        graph = _graph()
        operator = SamplingOperator(graph, np.random.default_rng(0))
        operator.sample_nodes(uniform_weights(), 7, origin=0)
        operator.sample_nodes(uniform_weights(), 3, origin=0)
        assert operator.samples_drawn == 10
        assert operator.walks_started >= 7  # continued pool reuses later

    def test_reset_pool_forces_full_mixing(self):
        graph = _graph()
        ledger = MessageLedger()
        operator = SamplingOperator(
            graph,
            np.random.default_rng(0),
            ledger,
            SamplerConfig(walk_length=40, reset_length=4, laziness=0.0),
        )
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        operator.reset_pool()
        before = ledger.walk_steps
        operator.sample_nodes(uniform_weights(), 1, origin=0)
        assert ledger.walk_steps - before == 40  # full mixing again
