"""Tests for the simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimulationClock


def test_starts_at_zero():
    assert SimulationClock().now == 0


def test_custom_start():
    assert SimulationClock(5).now == 5


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        SimulationClock(-1)


def test_advance_forward_only():
    clock = SimulationClock(3)
    clock.advance_to(7)
    assert clock.now == 7
    with pytest.raises(SimulationError):
        clock.advance_to(6)


def test_advance_to_same_time_ok():
    clock = SimulationClock(3)
    clock.advance_to(3)
    assert clock.now == 3


def test_tick():
    clock = SimulationClock()
    assert clock.tick() == 1
    assert clock.tick(4) == 5
    with pytest.raises(SimulationError):
        clock.tick(-1)


def test_repr():
    assert "now=2" in repr(SimulationClock(2))
