"""Tests for metric collection."""

import numpy as np
import pytest

from repro.sim.metrics import MetricSeries, RunMetrics


class TestMetricSeries:
    def test_record_and_read(self):
        series = MetricSeries("x")
        series.record(0, 1.0)
        series.record(2, 3.0)
        assert len(series) == 2
        assert series.times.tolist() == [0, 2]
        assert series.values.tolist() == [1.0, 3.0]
        assert series.last() == 3.0
        assert series.mean() == 2.0
        assert series.total() == 4.0

    def test_rejects_decreasing_times(self):
        series = MetricSeries("x")
        series.record(5, 1.0)
        with pytest.raises(ValueError):
            series.record(4, 1.0)

    def test_same_time_allowed(self):
        series = MetricSeries("x")
        series.record(5, 1.0)
        series.record(5, 2.0)
        assert len(series) == 2

    def test_empty_reads_rejected(self):
        series = MetricSeries("x")
        with pytest.raises(ValueError):
            series.last()
        with pytest.raises(ValueError):
            series.mean()
        assert series.total() == 0.0


class TestRunMetrics:
    def test_lazy_series_creation(self):
        metrics = RunMetrics()
        assert not metrics.has_series("estimate")
        metrics.series("estimate").record(0, 1.0)
        assert metrics.has_series("estimate")
        assert metrics.series_names() == ["estimate"]

    def test_merge_counters(self):
        a = RunMetrics(snapshot_queries=2, samples_total=10, samples_fresh=6)
        b = RunMetrics(snapshot_queries=1, samples_total=5, samples_retained=2)
        a.merge_counters(b)
        assert a.snapshot_queries == 3
        assert a.samples_total == 15
        assert a.samples_fresh == 6
        assert a.samples_retained == 2
