"""Tests for metric collection."""

import numpy as np
import pytest

from repro.sim.metrics import MetricSeries, RunMetrics


class TestMetricSeries:
    def test_record_and_read(self):
        series = MetricSeries("x")
        series.record(0, 1.0)
        series.record(2, 3.0)
        assert len(series) == 2
        assert series.times.tolist() == [0, 2]
        assert series.values.tolist() == [1.0, 3.0]
        assert series.last() == 3.0
        assert series.mean() == 2.0
        assert series.total() == 4.0

    def test_rejects_decreasing_times(self):
        series = MetricSeries("x")
        series.record(5, 1.0)
        with pytest.raises(ValueError):
            series.record(4, 1.0)

    def test_same_time_allowed(self):
        series = MetricSeries("x")
        series.record(5, 1.0)
        series.record(5, 2.0)
        assert len(series) == 2

    def test_empty_reads_rejected(self):
        # all three accessors agree: reading an empty series is an error
        series = MetricSeries("x")
        with pytest.raises(ValueError):
            series.last()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.total()

    def test_extend_appends_observations(self):
        a = MetricSeries("x")
        a.record(0, 1.0)
        b = MetricSeries("x")
        b.record(1, 2.0)
        b.record(3, 4.0)
        a.extend(b)
        assert a.times.tolist() == [0, 1, 3]
        assert a.values.tolist() == [1.0, 2.0, 4.0]

    def test_extend_rejects_time_regression(self):
        a = MetricSeries("x")
        a.record(5, 1.0)
        b = MetricSeries("x")
        b.record(2, 2.0)
        with pytest.raises(ValueError):
            a.extend(b)


class TestRunMetrics:
    def test_lazy_series_creation(self):
        metrics = RunMetrics()
        assert not metrics.has_series("estimate")
        metrics.series("estimate").record(0, 1.0)
        assert metrics.has_series("estimate")
        assert metrics.series_names() == ["estimate"]

    def test_merge_counters(self):
        a = RunMetrics(snapshot_queries=2, samples_total=10, samples_fresh=6)
        b = RunMetrics(snapshot_queries=1, samples_total=5, samples_retained=2)
        a.merge_counters(b)
        assert a.snapshot_queries == 3
        assert a.samples_total == 15
        assert a.samples_fresh == 6
        assert a.samples_retained == 2

    def test_merge_adopts_series(self):
        a = RunMetrics()
        b = RunMetrics()
        b.series("estimate").record(0, 1.0)
        b.series("estimate").record(2, 3.0)
        a.merge_counters(b)
        assert a.has_series("estimate")
        assert a.series("estimate").values.tolist() == [1.0, 3.0]

    def test_merge_ignores_empty_series(self):
        a = RunMetrics()
        a.series("estimate").record(0, 1.0)
        b = RunMetrics()
        b.series("estimate")  # created but never recorded
        a.merge_counters(b)  # must not raise
        assert len(a.series("estimate")) == 1

    def test_merge_rejects_series_collision(self):
        a = RunMetrics()
        a.series("estimate").record(0, 1.0)
        b = RunMetrics()
        b.series("estimate").record(0, 2.0)
        with pytest.raises(ValueError):
            a.merge_counters(b)
