"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    PRIORITY_CHURN,
    PRIORITY_QUERY,
    PRIORITY_UPDATES,
    SimulationEngine,
)


@pytest.fixture
def engine():
    return SimulationEngine()


class TestScheduling:
    def test_runs_in_time_order(self, engine):
        log = []
        engine.schedule_at(5, lambda t: log.append(("b", t)))
        engine.schedule_at(2, lambda t: log.append(("a", t)))
        engine.run_until(10)
        assert log == [("a", 2), ("b", 5)]
        assert engine.now == 10

    def test_priority_breaks_ties(self, engine):
        log = []
        engine.schedule_at(3, lambda t: log.append("query"), PRIORITY_QUERY)
        engine.schedule_at(3, lambda t: log.append("update"), PRIORITY_UPDATES)
        engine.schedule_at(3, lambda t: log.append("churn"), PRIORITY_CHURN)
        engine.run_until(3)
        assert log == ["update", "churn", "query"]

    def test_sequence_breaks_remaining_ties(self, engine):
        log = []
        engine.schedule_at(1, lambda t: log.append("first"))
        engine.schedule_at(1, lambda t: log.append("second"))
        engine.run_until(1)
        assert log == ["first", "second"]

    def test_schedule_in_past_rejected(self, engine):
        engine.run_until(5)
        with pytest.raises(SimulationError):
            engine.schedule_at(4, lambda t: None)

    def test_schedule_in(self, engine):
        log = []
        engine.run_until(2)
        engine.schedule_in(3, lambda t: log.append(t))
        engine.run_until(10)
        assert log == [5]
        with pytest.raises(SimulationError):
            engine.schedule_in(-1, lambda t: None)

    def test_actions_can_schedule_more(self, engine):
        log = []

        def chain(t):
            log.append(t)
            if t < 3:
                engine.schedule_at(t + 1, chain)

        engine.schedule_at(0, chain)
        engine.run_until(10)
        assert log == [0, 1, 2, 3]

    def test_cancel(self, engine):
        log = []
        event = engine.schedule_at(2, lambda t: log.append(t))
        event.cancel()
        engine.run_until(5)
        assert log == []

    def test_run_until_backwards_rejected(self, engine):
        engine.run_until(5)
        with pytest.raises(SimulationError):
            engine.run_until(3)

    def test_events_run_counter(self, engine):
        engine.schedule_at(1, lambda t: None)
        engine.schedule_at(2, lambda t: None)
        engine.run_until(5)
        assert engine.events_run == 2


class TestRecurring:
    def test_fires_every_period(self, engine):
        log = []
        engine.schedule_every(2, lambda t: log.append(t), start=1, until=9)
        engine.run_until(20)
        assert log == [1, 3, 5, 7, 9]

    def test_cancel_stops_chain(self, engine):
        log = []
        handle = engine.schedule_every(1, lambda t: log.append(t))
        engine.run_until(2)
        handle.cancel()
        engine.run_until(10)
        assert log == [0, 1, 2]

    def test_rejects_bad_period(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_every(0, lambda t: None)


class TestRunAll:
    def test_drains_queue(self, engine):
        log = []
        engine.schedule_at(7, lambda t: log.append(t))
        engine.schedule_at(3, lambda t: log.append(t))
        engine.run_all()
        assert log == [3, 7]
        assert engine.now == 7

    def test_runaway_guard(self, engine):
        def forever(t):
            engine.schedule_at(t + 1, forever)

        engine.schedule_at(0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            engine.run_all(max_events=100)


class TestPendingAndDiagnostics:
    def test_pending_excludes_cancelled_events(self, engine):
        events = [engine.schedule_at(i + 1, lambda t: None) for i in range(5)]
        assert engine.pending == 5
        events[0].cancel()
        events[3].cancel()
        assert engine.pending == 3
        engine.run_all()
        assert engine.pending == 0

    def test_pending_counts_timeout_style_supervision(self, engine):
        """Typical supervisor pattern: arm a timeout, cancel on success."""
        timeout = engine.schedule_at(100, lambda t: None)
        engine.schedule_at(1, lambda t: timeout.cancel())
        assert engine.pending == 2
        engine.run_until(1)
        assert engine.pending == 0  # the cancelled timeout is not live work

    def test_runaway_error_reports_clock_and_pending(self, engine):
        def forever(t):
            engine.schedule_at(t + 1, forever)

        engine.schedule_at(0, forever)
        with pytest.raises(SimulationError, match=r"t=\d+ with \d+ still pending"):
            engine.run_all(max_events=50)
