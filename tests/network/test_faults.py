"""Tests for the fault model (network/faults.py)."""

import numpy as np
import pytest

from repro.network.faults import (
    CrashProcess,
    FaultConfig,
    FaultLog,
    FaultPlan,
)
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, ring_topology


class TestFaultConfig:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(message_loss=1.0)
        with pytest.raises(ValueError):
            FaultConfig(crash_probability=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(link_failure_probability=2.0)
        with pytest.raises(ValueError):
            FaultConfig(latency_jitter=-1)
        with pytest.raises(ValueError):
            FaultConfig(min_nodes=0)

    def test_is_noop(self):
        assert FaultConfig().is_noop
        assert not FaultConfig(message_loss=0.1).is_noop
        assert not FaultConfig(latency_jitter=2).is_noop


class TestFaultLog:
    def test_records_counts_and_summary(self):
        log = FaultLog()
        assert log.summary() == "no faults recorded"
        log.record(3, "message_loss", walker_id=1, node=2)
        log.record(5, "message_loss")
        log.record(7, "node_crash", node=9, detail="x")
        assert len(log) == 3
        assert log.count("message_loss") == 2
        assert log.counts() == {"message_loss": 2, "node_crash": 1}
        assert log.summary() == "message_loss=2, node_crash=1"
        assert [e.time for e in log.events] == [3, 5, 7]

    def test_counts_kinds_in_sorted_order(self):
        log = FaultLog()
        log.record(0, "walk_timeout")
        log.record(1, "message_loss")
        log.record(2, "node_crash")
        log.record(3, "message_loss")
        assert list(log.counts()) == sorted(log.counts())
        # insertion order was walk_timeout first; the view must not be
        assert list(log.counts())[0] == "message_loss"

    def test_subscribe_keyed_replacement_and_unsubscribe(self):
        log = FaultLog()
        seen_a: list[str] = []
        seen_b: list[str] = []
        log.subscribe(lambda e: seen_a.append(e.kind), key="obs")
        log.record(0, "first")
        # same key replaces, never duplicates
        log.subscribe(lambda e: seen_b.append(e.kind), key="obs")
        log.record(1, "second")
        assert seen_a == ["first"]
        assert seen_b == ["second"]
        assert log.unsubscribe("obs") is True
        assert log.unsubscribe("obs") is False
        log.record(2, "third")
        assert seen_b == ["second"]
        assert log.unsubscribe("never-registered") is False


class TestFaultPlan:
    def test_no_loss_at_zero_rate(self):
        plan = FaultPlan(FaultConfig(), rng=0)
        assert not any(plan.message_lost() for _ in range(100))
        assert not plan.walk_lost(50)

    def test_loss_rate_is_approximately_honored(self):
        plan = FaultPlan(FaultConfig(message_loss=0.3), rng=0)
        losses = sum(plan.message_lost() for _ in range(5000))
        assert 0.25 < losses / 5000 < 0.35

    def test_walk_loss_uses_survival_probability(self):
        plan = FaultPlan(FaultConfig(message_loss=0.1), rng=1)
        losses = sum(plan.walk_lost(13) for _ in range(5000))
        expected = 1.0 - 0.9**13  # ~0.746
        assert abs(losses / 5000 - expected) < 0.05

    def test_delivery_delay_bounded_by_jitter(self):
        plan = FaultPlan(FaultConfig(latency_jitter=3), rng=2)
        delays = {plan.delivery_delay(5) for _ in range(500)}
        assert delays == {5, 6, 7, 8}
        no_jitter = FaultPlan(FaultConfig(), rng=2)
        assert no_jitter.delivery_delay(5) == 5

    def test_same_seed_same_draw_sequence(self):
        a = FaultPlan(FaultConfig(message_loss=0.2, latency_jitter=4), rng=7)
        b = FaultPlan(FaultConfig(message_loss=0.2, latency_jitter=4), rng=7)
        draws_a = [(a.message_lost(), a.delivery_delay(1)) for _ in range(200)]
        draws_b = [(b.message_lost(), b.delivery_delay(1)) for _ in range(200)]
        assert draws_a == draws_b


class TestCrashProcess:
    def _world(self, n=16):
        return OverlayGraph(mesh_topology(n), n_nodes=n)

    def test_no_crashes_at_zero_rate(self):
        graph = self._world()
        plan = FaultPlan(FaultConfig(), rng=0)
        crash = CrashProcess(graph, plan)
        assert crash.step(0) == []
        assert len(graph) == 16

    def test_protected_node_never_crashes(self):
        graph = self._world()
        plan = FaultPlan(FaultConfig(crash_probability=0.99), rng=0)
        crash = CrashProcess(graph, plan, protected={0})
        crash.protect(5)
        for time in range(10):
            crash.step(time)
        assert 0 in graph
        assert 5 in graph
        assert {0, 5} <= crash.protected

    def test_min_nodes_floor_holds(self):
        graph = self._world()
        plan = FaultPlan(
            FaultConfig(crash_probability=0.9, min_nodes=6), rng=1
        )
        crash = CrashProcess(graph, plan)
        for time in range(10):
            crash.step(time)
        assert len(graph) >= 6

    def test_crashes_are_recorded_on_the_log(self):
        graph = self._world()
        plan = FaultPlan(FaultConfig(crash_probability=0.5), rng=2)
        crash = CrashProcess(graph, plan)
        crashed = crash.step(time=42)
        assert plan.log.count("node_crash") == len(crashed)
        assert all(
            e.time == 42 for e in plan.log.events if e.kind == "node_crash"
        )

    def test_crash_rewire_keeps_graph_connected(self):
        graph = self._world(25)
        plan = FaultPlan(
            FaultConfig(crash_probability=0.2, min_nodes=8), rng=3
        )
        crash = CrashProcess(graph, plan)
        for time in range(8):
            crash.step(time)
        assert graph.is_connected()

    def test_link_failure_never_orphans_a_node(self):
        graph = OverlayGraph(ring_topology(12), n_nodes=12)
        plan = FaultPlan(
            FaultConfig(link_failure_probability=0.5), rng=4
        )
        crash = CrashProcess(graph, plan)
        for time in range(5):
            crash.step(time)
        assert all(graph.degree(node) >= 1 for node in graph.nodes())

    def test_deterministic_under_fixed_seed(self):
        results = []
        for _ in range(2):
            graph = self._world(20)
            plan = FaultPlan(
                FaultConfig(crash_probability=0.3, min_nodes=5), rng=9
            )
            crash = CrashProcess(graph, plan)
            history = [crash.step(time) for time in range(5)]
            results.append((history, sorted(graph.nodes())))
        assert results[0] == results[1]
