"""Tests for message accounting."""

import pytest

from repro.network.messaging import MessageLedger


def test_total_sums_categories():
    ledger = MessageLedger()
    ledger.record_walk_steps(10)
    ledger.record_sample_return(3)
    ledger.record_push(7)
    ledger.record_control(2, label="filter_growth")
    assert ledger.total == 22


def test_breakdown_includes_labels():
    ledger = MessageLedger()
    ledger.record_control(4, label="x")
    ledger.record_control(1, label="x")
    breakdown = ledger.breakdown()
    assert breakdown["control"] == 5
    assert breakdown["control:x"] == 5


def test_merge():
    a = MessageLedger()
    b = MessageLedger()
    a.record_walk_steps(5)
    b.record_walk_steps(3)
    b.record_push(2)
    b.record_control(1, label="y")
    a.merge(b)
    assert a.walk_steps == 8
    assert a.pushes == 2
    assert a.breakdown()["control:y"] == 1


def test_reset():
    ledger = MessageLedger()
    ledger.record_push(9)
    ledger.record_control(1, label="z")
    ledger.reset()
    assert ledger.total == 0
    assert ledger.breakdown()["control"] == 0


@pytest.mark.parametrize(
    "method",
    ["record_walk_steps", "record_sample_return", "record_push"],
)
def test_negative_counts_rejected(method):
    ledger = MessageLedger()
    with pytest.raises(ValueError):
        getattr(ledger, method)(-1)
