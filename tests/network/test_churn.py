"""Tests for the churn process."""

import numpy as np
import pytest

from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology


def _graph(n=25):
    return OverlayGraph(mesh_topology(n), n_nodes=n)


class TestConfigValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            ChurnConfig(leave_probability=1.5)

    def test_rejects_negative_join_rate(self):
        with pytest.raises(ValueError):
            ChurnConfig(join_rate=-1)

    def test_rejects_zero_links(self):
        with pytest.raises(ValueError):
            ChurnConfig(n_links=0)

    def test_rejects_zero_min_nodes(self):
        with pytest.raises(ValueError):
            ChurnConfig(min_nodes=0)


class TestDynamics:
    def test_no_churn_is_noop(self):
        graph = _graph()
        process = ChurnProcess(graph, ChurnConfig(), np.random.default_rng(0))
        event = process.step()
        assert event.is_empty
        assert len(graph) == 25

    def test_leaves_happen(self):
        graph = _graph()
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=0.5),
            np.random.default_rng(0),
        )
        event = process.step()
        assert len(event.left) > 0
        assert all(node not in graph for node in event.left)

    def test_joins_happen(self):
        graph = _graph()
        process = ChurnProcess(
            graph, ChurnConfig(join_rate=5.0), np.random.default_rng(0)
        )
        joined = []
        for _ in range(5):
            joined.extend(process.step().joined)
        assert joined
        assert all(node in graph for node in joined)

    def test_protected_nodes_never_leave(self):
        graph = _graph()
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=1.0, min_nodes=1),
            np.random.default_rng(0),
            protected={0},
        )
        for _ in range(3):
            process.step()
        assert 0 in graph

    def test_protect_after_construction(self):
        graph = _graph()
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=1.0, min_nodes=1),
            np.random.default_rng(0),
        )
        process.protect(7)
        process.step()
        assert 7 in graph
        assert 7 in process.protected

    def test_min_nodes_floor(self):
        graph = _graph(10)
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=1.0, min_nodes=5),
            np.random.default_rng(0),
        )
        for _ in range(5):
            process.step()
        assert len(graph) >= 5

    def test_rewire_keeps_connectivity(self):
        graph = _graph(36)
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=0.1, join_rate=3.0, rewire=True),
            np.random.default_rng(1),
        )
        for _ in range(10):
            process.step()
        assert graph.is_connected()

    def test_stable_size_when_balanced(self):
        """join_rate = p * n keeps the population roughly stationary."""
        graph = _graph(100)
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=0.05, join_rate=5.0),
            np.random.default_rng(2),
        )
        for _ in range(50):
            process.step()
        assert 60 <= len(graph) <= 160


class TestDepartureFairness:
    """Regression: the min_nodes cap must not bias survival by node id.

    Before the seeded shuffle, hitting the floor truncated the leaver list
    in candidate (ascending node id) order, so the high ids always
    survived a full-departure step.
    """

    def _survivors(self, seed):
        graph = OverlayGraph(mesh_topology(16), n_nodes=16)
        process = ChurnProcess(
            graph,
            ChurnConfig(leave_probability=1.0, min_nodes=8),
            np.random.default_rng(seed),
        )
        process.step()
        return frozenset(graph.nodes())

    def test_truncated_departures_are_not_id_ordered(self):
        # with the biased truncation every seed kept exactly {8..15}
        biased = frozenset(range(8, 16))
        survivor_sets = {self._survivors(seed) for seed in range(12)}
        assert survivor_sets != {biased}
        assert len(survivor_sets) > 1  # the shuffle actually varies

    def test_truncated_departures_are_seed_deterministic(self):
        assert self._survivors(3) == self._survivors(3)

    def test_rng_stream_untouched_when_no_truncation(self):
        """The shuffle only fires when the floor truncates, so existing
        seeded experiments that never hit min_nodes are unperturbed."""
        def run(min_nodes):
            graph = OverlayGraph(mesh_topology(25), n_nodes=25)
            process = ChurnProcess(
                graph,
                ChurnConfig(
                    leave_probability=0.2, join_rate=2.0, min_nodes=min_nodes
                ),
                np.random.default_rng(5),
            )
            events = [process.step() for _ in range(6)]
            return [(e.left, e.joined) for e in events]

        # min_nodes low enough to never truncate: identical histories
        assert run(2) == run(3)
