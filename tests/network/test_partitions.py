"""Tests for correlated failures (repro.network.partitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import power_law_topology, ring_topology
from repro.obs.schema import EVENT_PARTITION_HEAL, EVENT_PARTITION_OPEN
from repro.obs.tracer import RecordingTracer


def _graph(n: int = 20, seed: int = 0) -> OverlayGraph:
    rng = np.random.default_rng(seed)
    return OverlayGraph(power_law_topology(n, rng=rng), n_nodes=n)


def _plan(
    schedule: PartitionSchedule, seed: int = 7, **kwargs: object
) -> PartitionPlan:
    return PartitionPlan(schedule, rng=seed, **kwargs)  # type: ignore[arg-type]


def _one_cut(
    start: int = 5, duration: int = 10, fractions=(0.5, 0.5)
) -> PartitionSchedule:
    return PartitionSchedule(
        episodes=(
            PartitionEpisode(
                start=start, duration=duration, fractions=fractions
            ),
        )
    )


class TestEpisodeValidation:
    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start"):
            PartitionEpisode(start=-1, duration=5)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PartitionEpisode(start=0, duration=0)

    def test_rejects_single_region(self):
        with pytest.raises(ValueError, match="2 regions"):
            PartitionEpisode(start=0, duration=5, fractions=(1.0,))

    def test_rejects_fractions_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            PartitionEpisode(start=0, duration=5, fractions=(0.5, 0.4))

    def test_rejects_nonpositive_fraction(self):
        with pytest.raises(ValueError, match="> 0"):
            PartitionEpisode(start=0, duration=5, fractions=(1.0, 0.0))

    def test_end_and_label(self):
        episode = PartitionEpisode(start=3, duration=4, name="backbone")
        assert episode.end == 7
        assert episode.label(0) == "backbone"
        assert PartitionEpisode(start=3, duration=4).label(2) == "episode-2"


class TestScheduleValidation:
    def test_rejects_bad_flap_probability(self):
        with pytest.raises(ValueError, match="flap_probability"):
            PartitionSchedule(flap_probability=1.0)

    def test_rejects_bad_flap_duration(self):
        with pytest.raises(ValueError, match="flap_duration"):
            PartitionSchedule(flap_duration=0)

    def test_noop_detection(self):
        assert PartitionSchedule().is_noop
        assert not _one_cut().is_noop
        assert not PartitionSchedule(flap_probability=0.1).is_noop


class TestPlanValidation:
    def test_rejects_unknown_heal_policy(self):
        with pytest.raises(ValueError, match="heal_policy"):
            PartitionPlan(_one_cut(), rng=0, heal_policy="pray")

    def test_accepts_generator_or_seed(self):
        plan = PartitionPlan(_one_cut(), rng=np.random.default_rng(3))
        assert plan.is_noop is False
        assert PartitionPlan(PartitionSchedule(), rng=0).is_noop


class TestEpisodeLifecycle:
    def test_opens_at_start_and_heals_at_end(self):
        graph = _graph()
        plan = _plan(_one_cut(start=5, duration=10))
        plan.step(4, graph)
        assert not plan.active
        plan.step(5, graph)
        assert plan.active
        plan.step(14, graph)
        assert plan.active
        plan.step(15, graph)
        assert not plan.active

    def test_regions_respect_fractions(self):
        graph = _graph(n=40)
        plan = _plan(_one_cut(start=0, duration=5, fractions=(0.75, 0.25)))
        plan.step(0, graph)
        regions = [plan.region_of(0, node) for node in graph.nodes()]
        assert regions.count(0) == 30
        assert regions.count(1) == 10

    def test_blocked_iff_crossing_regions(self):
        graph = _graph()
        plan = _plan(_one_cut(start=0, duration=5))
        plan.step(0, graph)
        for u, v in graph.edges():
            crossing = plan.region_of(0, u) != plan.region_of(0, v)
            assert plan.blocked(u, v) is crossing
            assert plan.blocked(v, u) is crossing

    def test_nothing_blocked_after_heal(self):
        graph = _graph()
        plan = _plan(_one_cut(start=0, duration=3))
        plan.step(0, graph)
        plan.step(3, graph)
        assert all(not plan.blocked(u, v) for u, v in graph.edges())
        assert plan.region_of(0, graph.nodes()[0]) is None

    def test_reachable_confined_while_open(self):
        graph = _graph(n=30)
        plan = _plan(_one_cut(start=0, duration=5))
        plan.step(0, graph)
        origin = 0
        scope = plan.reachable(graph, origin)
        origin_region = plan.region_of(0, origin)
        assert all(
            plan.region_of(0, node) == origin_region for node in scope
        )
        assert 0.0 < plan.reachable_fraction(graph, origin) < 1.0

    def test_reachable_is_full_graph_when_inactive(self):
        graph = _graph()
        plan = _plan(_one_cut(start=50, duration=5))
        plan.step(0, graph)
        assert plan.reachable(graph, 0) == graph.hop_distances(0)
        assert plan.reachable_fraction(graph, 0) == 1.0

    def test_late_joiner_gets_lazily_assigned_region(self):
        graph = _graph()
        plan = _plan(_one_cut(start=0, duration=5))
        plan.step(0, graph)
        joined = graph.join(attach_to=[0, 1], rng=np.random.default_rng(9))
        region = plan.region_of(0, joined)
        assert region in (0, 1)
        # the assignment sticks
        assert plan.region_of(0, joined) == region

    def test_same_seed_same_split(self):
        regions = []
        for _ in range(2):
            graph = _graph(n=25, seed=4)
            plan = _plan(_one_cut(start=0, duration=5), seed=11)
            plan.step(0, graph)
            regions.append(
                tuple(plan.region_of(0, node) for node in graph.nodes())
            )
        assert regions[0] == regions[1]


class TestFlaps:
    def test_flapped_links_block_then_recover(self):
        graph = _graph()
        schedule = PartitionSchedule(flap_probability=0.5, flap_duration=2)
        plan = _plan(schedule)
        plan.step(0, graph)
        flapped = [edge for edge in graph.edges() if plan.blocked(*edge)]
        assert flapped  # p=0.5 over >= 19 edges
        assert plan.active
        # stepping past every flap's up-time expires the old flaps; any
        # edge still blocked at t=10 is a fresh draw with a later up-time
        plan.step(10, graph)
        for _edge, up_at in plan._flapped.items():
            assert up_at > 10

    def test_flaps_logged(self):
        graph = _graph()
        plan = _plan(PartitionSchedule(flap_probability=0.9, flap_duration=1))
        plan.step(0, graph)
        assert plan.log.counts().get("link_flap", 0) > 0


class TestHealRepair:
    def test_repair_bridges_fragmented_graph_on_heal(self):
        # a ring fragments when crashes remove the right nodes mid-episode
        n = 12
        graph = OverlayGraph(ring_topology(n), n_nodes=n)
        plan = _plan(_one_cut(start=0, duration=4), heal_policy="repair")
        plan.step(0, graph)
        # surgically break the ring into two arcs (no rewire)
        graph.remove_edge(0, 1)
        graph.remove_edge(5, 6)
        assert not graph.is_connected()
        plan.step(4, graph)
        assert graph.is_connected()
        assert plan.log.counts()["partition_heal"] == 1

    def test_passive_policy_leaves_fragments_alone(self):
        n = 12
        graph = OverlayGraph(ring_topology(n), n_nodes=n)
        plan = _plan(_one_cut(start=0, duration=4), heal_policy="passive")
        plan.step(0, graph)
        graph.remove_edge(0, 1)
        graph.remove_edge(5, 6)
        plan.step(4, graph)
        assert not graph.is_connected()

    def test_connected_graph_needs_no_repair(self):
        graph = _graph()
        plan = _plan(_one_cut(start=0, duration=4), heal_policy="repair")
        plan.step(0, graph)
        version = graph.version
        plan.step(4, graph)
        assert graph.version == version  # no edges added


class TestTracing:
    def test_open_and_heal_emit_events(self):
        tracer = RecordingTracer()
        graph = _graph()
        plan = PartitionPlan(
            _one_cut(start=2, duration=3), rng=0, tracer=tracer
        )
        for time in range(6):
            plan.step(time, graph)
        names = [event.name for event in tracer.trace().events]
        assert names.count(EVENT_PARTITION_OPEN) == 1
        assert names.count(EVENT_PARTITION_HEAL) == 1
        opened = next(
            event
            for event in tracer.trace().events
            if event.name == EVENT_PARTITION_OPEN
        )
        assert opened.attrs["n_regions"] == 2
        assert opened.attrs["n_blocked"] > 0
        assert opened.attrs["duration"] == 3

    def test_audit_log_records_open_and_heal(self):
        graph = _graph()
        plan = _plan(_one_cut(start=0, duration=2))
        plan.step(0, graph)
        plan.step(2, graph)
        counts = plan.log.counts()
        assert counts["partition_open"] == 1
        assert counts["partition_heal"] == 1


class TestComposition:
    def test_partition_rng_stream_is_independent_of_faults(self):
        """Enabling a partition plan must not perturb fault draws."""
        fault_draws = []
        for with_partitions in (False, True):
            faults = FaultPlan(FaultConfig(message_loss=0.3), rng=5)
            graph = _graph(seed=2)
            if with_partitions:
                plan = _plan(_one_cut(start=0, duration=5), seed=99)
                plan.step(0, graph)
            fault_draws.append(
                [faults.message_lost() for _ in range(50)]
            )
        assert fault_draws[0] == fault_draws[1]
