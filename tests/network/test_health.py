"""Tests for origin-side link health (repro.network.health)."""

from __future__ import annotations

import pytest

from repro.network.faults import FaultLog
from repro.network.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
)
from repro.obs.schema import EVENT_BREAKER_PROBE, EVENT_BREAKER_TRIP
from repro.obs.tracer import RecordingTracer


class TestHealthConfigValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            HealthConfig(failure_threshold=0)

    def test_rejects_bad_cooldown(self):
        with pytest.raises(ValueError, match="cooldown"):
            HealthConfig(cooldown=0)

    def test_rejects_bad_detect_fraction(self):
        with pytest.raises(ValueError, match="detect_fraction"):
            HealthConfig(detect_fraction=0.0)

    def test_rejects_bad_score_decay(self):
        with pytest.raises(ValueError, match="score_decay"):
            HealthConfig(score_decay=1.0)


class TestCircuitBreaker:
    def _breaker(self, threshold: int = 3, cooldown: int = 10) -> CircuitBreaker:
        return CircuitBreaker(
            HealthConfig(failure_threshold=threshold, cooldown=cooldown)
        )

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = self._breaker(threshold=3)
        assert breaker.record_failure(0) is False
        assert breaker.record_failure(1) is False
        assert breaker.record_failure(2) is True
        assert breaker.state == OPEN
        assert breaker.admits(3) is None

    def test_success_resets_the_failure_streak(self):
        breaker = self._breaker(threshold=3)
        breaker.record_failure(0)
        breaker.record_failure(1)
        breaker.record_success(2)
        assert breaker.record_failure(3) is False
        assert breaker.state == CLOSED

    def test_cooldown_gates_the_probe(self):
        breaker = self._breaker(threshold=1, cooldown=10)
        breaker.record_failure(5)
        assert breaker.admits(6) is None
        assert breaker.admits(14) is None
        assert breaker.admits(15) == "probe"

    def test_successful_probe_closes(self):
        breaker = self._breaker(threshold=1, cooldown=5)
        breaker.record_failure(0)
        assert breaker.admits(5) == "probe"
        breaker.start_probe(5)
        assert breaker.state == HALF_OPEN
        # only one probe in flight at a time
        assert breaker.admits(5) is None
        breaker.record_success(7)
        assert breaker.state == CLOSED
        assert breaker.admits(8) == CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker = self._breaker(threshold=1, cooldown=5)
        breaker.record_failure(0)
        breaker.start_probe(5)
        assert breaker.record_failure(6) is False  # not a fresh trip
        assert breaker.state == OPEN
        assert breaker.admits(10) is None  # cooldown restarted at t=6
        assert breaker.admits(11) == "probe"


class TestHealthMonitor:
    def _monitor(self, **kwargs: object) -> HealthMonitor:
        config = HealthConfig(
            failure_threshold=2, cooldown=5, detect_fraction=0.5
        )
        return HealthMonitor(config=config, **kwargs)  # type: ignore[arg-type]

    def test_admitted_preserves_neighbor_order(self):
        monitor = self._monitor()
        admitted, probes = monitor.admitted(0, [3, 1, 2], time=0)
        assert admitted == [3, 1, 2]
        assert probes == set()

    def test_tripped_neighbor_is_suppressed(self):
        monitor = self._monitor()
        for time in range(2):
            monitor.record_outcome(0, 1, ok=False, time=time, n_neighbors=3)
        admitted, _ = monitor.admitted(0, [1, 2, 3], time=2)
        assert admitted == [2, 3]
        assert monitor.trips == 1

    def test_cooled_breaker_reappears_as_probe(self):
        monitor = self._monitor()
        for time in range(2):
            monitor.record_outcome(0, 1, ok=False, time=time, n_neighbors=3)
        admitted, probes = monitor.admitted(0, [1, 2], time=1 + 5)
        assert admitted == [1, 2]
        assert probes == {1}

    def test_score_is_ewma_of_outcomes(self):
        monitor = self._monitor()
        assert monitor.score(0, 1) == 1.0
        monitor.record_outcome(0, 1, ok=False, time=0)
        first = monitor.score(0, 1)
        assert first == pytest.approx(0.8)
        monitor.record_outcome(0, 1, ok=True, time=1)
        assert monitor.score(0, 1) == pytest.approx(0.8 * first + 0.2)

    def test_health_is_per_origin(self):
        monitor = self._monitor()
        for time in range(2):
            monitor.record_outcome(0, 1, ok=False, time=time)
        # origin 5's view of neighbor 1 is untouched
        admitted, _ = monitor.admitted(5, [1], time=2)
        assert admitted == [1]

    def test_partition_suspected_and_cleared(self):
        log = FaultLog()
        monitor = self._monitor(fault_log=log)
        # two of three first-hop links die -> fraction 2/3 >= 0.5
        for neighbor in (1, 2):
            for time in range(2):
                monitor.record_outcome(
                    0, neighbor, ok=False, time=time, n_neighbors=3
                )
        assert monitor.partition_suspected(0)
        assert log.counts()["partition_suspected"] == 1
        # recoveries close the breakers and clear the suspicion
        monitor.record_outcome(0, 1, ok=True, time=10, n_neighbors=3)
        monitor.record_outcome(0, 2, ok=True, time=10, n_neighbors=3)
        assert not monitor.partition_suspected(0)
        assert log.counts()["partition_cleared"] == 1

    def test_open_fraction_uses_neighbor_count_when_given(self):
        monitor = self._monitor()
        for time in range(2):
            monitor.record_outcome(0, 1, ok=False, time=time, n_neighbors=8)
        assert monitor.open_fraction(0, 8) == pytest.approx(1 / 8)
        # without a count it falls back to tracked links only
        assert monitor.open_fraction(0) == pytest.approx(1.0)

    def test_trip_and_probe_emit_trace_events(self):
        tracer = RecordingTracer()
        monitor = self._monitor(tracer=tracer)
        for time in range(2):
            monitor.record_outcome(0, 1, ok=False, time=time, n_neighbors=3)
        monitor.start_probe(0, 1, time=7)
        names = [event.name for event in tracer.trace().events]
        assert names.count(EVENT_BREAKER_TRIP) == 1
        assert names.count(EVENT_BREAKER_PROBE) == 1
        assert monitor.probes == 1
