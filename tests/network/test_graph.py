"""Tests for the mutable overlay graph."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology, ring_topology


@pytest.fixture
def triangle():
    return OverlayGraph([(0, 1), (1, 2), (0, 2)])


class TestStructure:
    def test_basic_counts(self, triangle):
        assert len(triangle) == 3
        assert triangle.n_edges() == 3
        assert triangle.degree(0) == 2

    def test_contains(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle

    def test_isolated_nodes_via_n_nodes(self):
        graph = OverlayGraph([(0, 1)], n_nodes=4)
        assert len(graph) == 4
        assert graph.degree(3) == 0
        assert not graph.is_connected()

    def test_edges_sorted_pairs(self, triangle):
        assert triangle.edges() == [(0, 1), (0, 2), (1, 2)]

    def test_neighbors_deterministic(self):
        graph = OverlayGraph([(0, 1), (0, 2), (0, 3)])
        assert graph.neighbors(0) == [1, 2, 3]


class TestMutation:
    def test_add_edge_idempotent(self, triangle):
        version = triangle.version
        triangle.add_edge(0, 1)
        assert triangle.n_edges() == 3
        assert triangle.version == version  # no-op does not bump

    def test_self_loop_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_edge(1, 1)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)
        with pytest.raises(TopologyError):
            triangle.remove_edge(0, 1)

    def test_negative_id_rejected(self):
        with pytest.raises(TopologyError):
            OverlayGraph([(-1, 0)])

    def test_join_assigns_fresh_id(self, triangle):
        node = triangle.join(attach_to=[0, 1])
        assert node == 3
        assert triangle.has_edge(3, 0)
        assert triangle.has_edge(3, 1)

    def test_join_random_attachment(self, triangle):
        node = triangle.join(n_links=2, rng=np.random.default_rng(0))
        assert triangle.degree(node) == 2

    def test_ids_never_reused(self, triangle):
        node = triangle.join(attach_to=[0])
        triangle.leave(node)
        assert triangle.join(attach_to=[0]) == node + 1

    def test_leave_rewires_ring(self):
        """Removing a ring node must keep the graph connected via rewiring."""
        graph = OverlayGraph(ring_topology(8), n_nodes=8)
        graph.leave(3, rewire=True)
        assert graph.is_connected()
        assert 3 not in graph

    def test_leave_without_rewire_can_disconnect(self):
        graph = OverlayGraph([(0, 1), (1, 2)], n_nodes=3)
        graph.leave(1, rewire=False)
        assert not graph.is_connected()

    def test_leave_unknown_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.leave(42)

    def test_version_bumps_on_change(self, triangle):
        before = triangle.version
        triangle.join(attach_to=[0])
        assert triangle.version > before


class TestAnalysis:
    def test_hop_distances(self):
        graph = OverlayGraph([(0, 1), (1, 2), (2, 3)])
        distances = graph.hop_distances(0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_hop_distance_cache_invalidation(self):
        graph = OverlayGraph([(0, 1), (1, 2), (2, 3)])
        assert graph.hop_distances(0)[3] == 3
        graph.add_edge(0, 3)
        assert graph.hop_distances(0)[3] == 1

    def test_hop_distances_unknown_source(self, triangle):
        with pytest.raises(TopologyError):
            triangle.hop_distances(99)

    def test_is_connected_mesh(self):
        graph = OverlayGraph(mesh_topology(30), n_nodes=30)
        assert graph.is_connected()

    def test_empty_graph_connected(self):
        assert OverlayGraph([]).is_connected()

    def test_csr_roundtrip(self):
        graph = OverlayGraph([(0, 2), (2, 5), (0, 5)], n_nodes=6)
        node_ids, offsets, targets = graph.csr()
        assert node_ids.tolist() == [0, 1, 2, 3, 4, 5]
        rebuilt = set()
        for row in range(len(node_ids)):
            for position in range(offsets[row], offsets[row + 1]):
                neighbor = node_ids[targets[position]]
                rebuilt.add((min(node_ids[row], neighbor), max(node_ids[row], neighbor)))
        assert rebuilt == {(0, 2), (2, 5), (0, 5)}

    def test_csr_after_leave_has_compact_indices(self):
        graph = OverlayGraph(ring_topology(6), n_nodes=6)
        graph.leave(2)
        node_ids, offsets, targets = graph.csr()
        assert 2 not in node_ids.tolist()
        assert targets.max() < len(node_ids)

    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.join(attach_to=[0])
        assert len(clone) == 4
        assert len(triangle) == 3

    def test_copy_preserves_structure(self, triangle):
        clone = triangle.copy()
        assert clone.edges() == triangle.edges()
        assert clone.nodes() == triangle.nodes()


class TestComponents:
    def test_connected_graph_is_one_component(self):
        graph = OverlayGraph(ring_topology(6), n_nodes=6)
        assert graph.components() == [[0, 1, 2, 3, 4, 5]]

    def test_fragments_enumerated_by_smallest_member(self):
        graph = OverlayGraph([(4, 5), (0, 1), (2, 3)], n_nodes=6)
        assert graph.components() == [[0, 1], [2, 3], [4, 5]]

    def test_isolated_node_is_its_own_component(self):
        graph = OverlayGraph([(0, 1)], n_nodes=3)
        assert graph.components() == [[0, 1], [2]]


class TestBridgeComponents:
    def test_noop_on_connected_graph(self):
        graph = OverlayGraph(ring_topology(5), n_nodes=5)
        assert graph.bridge_components(np.random.default_rng(0)) == []

    def test_restores_connectivity_with_minimum_edges(self):
        graph = OverlayGraph([(0, 1), (2, 3), (4, 5)], n_nodes=6)
        added = graph.bridge_components(np.random.default_rng(0))
        assert len(added) == 2  # 3 components -> 2 bridges
        assert graph.is_connected()

    def test_respects_degree_bound_when_headroom_exists(self):
        # stars: centers have degree 3, leaves degree 1
        star = [(0, 1), (0, 2), (0, 3), (10, 11), (10, 12), (10, 13)]
        graph = OverlayGraph(star, n_nodes=0)
        added = graph.bridge_components(
            np.random.default_rng(0), max_degree=2
        )
        assert graph.is_connected()
        for u, v in added:
            # bridges land on leaves (degree 1 -> 2), not the full centers
            assert u not in (0, 10) and v not in (0, 10)

    def test_connectivity_wins_when_no_headroom(self):
        # every node saturated at max_degree=1 by its own pair edge
        graph = OverlayGraph([(0, 1), (2, 3)], n_nodes=4)
        added = graph.bridge_components(
            np.random.default_rng(0), max_degree=1
        )
        assert graph.is_connected()
        assert len(added) == 1

    def test_rejects_nonpositive_max_degree(self):
        graph = OverlayGraph([(0, 1), (2, 3)], n_nodes=4)
        with pytest.raises(TopologyError, match="max_degree"):
            graph.bridge_components(np.random.default_rng(0), max_degree=0)

    def test_deterministic_in_rng(self):
        def repair() -> list:
            graph = OverlayGraph([(0, 1), (2, 3), (4, 5), (6, 7)], n_nodes=8)
            return graph.bridge_components(np.random.default_rng(42))

        assert repair() == repair()
