"""Tests for overlay topology generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.graph import OverlayGraph
from repro.network.topology import (
    augmented_mesh_topology,
    degree_sequence,
    line_topology,
    mesh_topology,
    power_law_topology,
    random_regular_topology,
    random_topology,
    ring_topology,
    small_world_topology,
)


def _is_connected(edges, n):
    return OverlayGraph(edges, n_nodes=n).is_connected()


class TestMesh:
    def test_connected(self):
        assert _is_connected(mesh_topology(30), 30)

    def test_perfect_square(self):
        edges = mesh_topology(16)
        degrees = degree_sequence(edges, 16)
        # 4x4 grid: corners have degree 2, edges 3, interior 4
        assert sorted(degrees)[:4] == [2, 2, 2, 2]
        assert max(degrees) == 4

    def test_non_square_count(self):
        edges = mesh_topology(7)
        nodes = {u for e in edges for u in e}
        assert nodes == set(range(7))

    def test_single_node(self):
        assert mesh_topology(1) == []

    def test_rejects_zero(self):
        with pytest.raises(TopologyError):
            mesh_topology(0)


class TestAugmentedMesh:
    def test_superset_of_mesh(self):
        base = set(mesh_topology(36))
        augmented = set(augmented_mesh_topology(36, 0.3, rng=0))
        assert base <= augmented
        assert len(augmented) > len(base)

    def test_zero_fraction_is_plain_mesh(self):
        assert augmented_mesh_topology(25, 0.0, rng=0) == mesh_topology(25)

    def test_improves_mixing(self):
        """The long links must materially widen the eigengap."""
        from repro.sampling.metropolis import metropolis_matrix
        from repro.sampling.mixing import eigengap
        from repro.sampling.weights import uniform_weights

        plain = OverlayGraph(mesh_topology(100), n_nodes=100)
        augmented = OverlayGraph(
            augmented_mesh_topology(100, 0.3, rng=1), n_nodes=100
        )
        weight = uniform_weights()
        gap_plain = eigengap(metropolis_matrix(plain, weight)[1])
        gap_augmented = eigengap(metropolis_matrix(augmented, weight)[1])
        assert gap_augmented > 2 * gap_plain

    def test_rejects_negative_fraction(self):
        with pytest.raises(TopologyError):
            augmented_mesh_topology(25, -0.1)


class TestPowerLaw:
    def test_connected(self):
        assert _is_connected(power_law_topology(100, rng=0), 100)

    def test_heavy_tail(self):
        edges = power_law_topology(500, alpha=2.2, rng=0)
        degrees = degree_sequence(edges, 500)
        # a power-law graph has hubs well above the median degree
        assert max(degrees) >= 3 * np.median(degrees)

    def test_min_degree_respected_roughly(self):
        edges = power_law_topology(200, min_degree=2, rng=0)
        degrees = degree_sequence(edges, 200)
        assert degrees.min() >= 1  # dedup of the configuration model may drop one

    def test_deterministic_with_seed(self):
        assert power_law_topology(50, rng=7) == power_law_topology(50, rng=7)

    def test_rejects_bad_alpha(self):
        with pytest.raises(TopologyError):
            power_law_topology(50, alpha=0.5)

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            power_law_topology(2)


class TestOthers:
    def test_random_connected(self):
        assert _is_connected(random_topology(80, rng=0), 80)

    def test_small_world_connected(self):
        assert _is_connected(small_world_topology(60, rng=0), 60)

    def test_small_world_rejects_small_n(self):
        with pytest.raises(TopologyError):
            small_world_topology(4, k=4)

    def test_random_regular(self):
        edges = random_regular_topology(20, degree=4, rng=0)
        degrees = degree_sequence(edges, 20)
        assert set(degrees) == {4}

    def test_random_regular_parity(self):
        with pytest.raises(TopologyError):
            random_regular_topology(5, degree=3)  # odd n * odd degree

    def test_ring(self):
        edges = ring_topology(10)
        assert len(edges) == 10
        assert set(degree_sequence(edges, 10)) == {2}

    def test_line(self):
        edges = line_topology(5)
        assert edges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_ring_rejects_small(self):
        with pytest.raises(TopologyError):
            ring_topology(2)


def test_degree_sequence():
    assert degree_sequence([(0, 1), (1, 2)], 3).tolist() == [1, 2, 1]
