"""Smoke-run the example scripts.

Each example must stay runnable end to end; they double as executable
documentation. They take tens of seconds each, so the full set only runs
when ``REPRO_RUN_EXAMPLES=1``; one fast representative always runs.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

run_all = os.environ.get("REPRO_RUN_EXAMPLES") == "1"


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_exist():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 5


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "snapshot queries" in result.stdout


@pytest.mark.skipif(not run_all, reason="set REPRO_RUN_EXAMPLES=1 to run all")
@pytest.mark.parametrize(
    "name", [n for n in ALL_EXAMPLES if n != "quickstart.py"]
)
def test_example_runs(name):
    result = _run(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
