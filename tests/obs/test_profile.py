"""Tests for wall-clock section profiling (repro.obs.profile)."""

import pytest

from repro.obs.profile import WallClockProfiler


class TestWallClockProfiler:
    def test_section_accumulates_calls_and_time(self):
        profiler = WallClockProfiler()
        for _ in range(3):
            with profiler.section("work"):
                pass
        stats = profiler.stats("work")
        assert stats.calls == 3
        assert stats.total_ns >= 0
        assert stats.mean_ns == stats.total_ns / 3

    def test_distinct_sections_may_nest(self):
        profiler = WallClockProfiler()
        with profiler.section("outer"):
            with profiler.section("inner"):
                pass
        assert profiler.stats("outer").calls == 1
        assert profiler.stats("inner").calls == 1

    def test_same_name_reentry_raises(self):
        profiler = WallClockProfiler()
        with pytest.raises(RuntimeError):
            with profiler.section("work"):
                with profiler.section("work"):
                    pass
        # the failed inner entry must not wedge the section open: the
        # outer with booked one call on unwind, this books the second
        with profiler.section("work"):
            pass
        assert profiler.stats("work").calls == 2

    def test_section_closes_on_exception(self):
        profiler = WallClockProfiler()
        with pytest.raises(KeyError):
            with profiler.section("work"):
                raise KeyError("boom")
        assert profiler.stats("work").calls == 1

    def test_unknown_section_raises(self):
        with pytest.raises(KeyError):
            WallClockProfiler().stats("never")

    def test_report_orders_hottest_first(self):
        profiler = WallClockProfiler()
        with profiler.section("cheap"):
            pass
        with profiler.section("hot"):
            sum(range(20000))
        report = profiler.report()
        assert set(report) == {"cheap", "hot"}
        assert list(report)[0] == "hot"
        for entry in report.values():
            assert set(entry) == {"calls", "total_ms", "mean_us"}

    def test_empty_stats_mean_raises(self):
        from repro.obs.profile import SectionStats

        with pytest.raises(ValueError):
            SectionStats("x").mean_ns
