"""JSONL trace export/import round-trip tests (repro.obs.export)."""

import json

import numpy as np
import pytest

from repro.obs.export import FORMAT_VERSION, export_trace, import_trace
from repro.obs.tracer import RecordingTracer


def _sample_tracer() -> RecordingTracer:
    tracer = RecordingTracer(meta={"experiment": "unit", "seed": 7})
    cell = tracer.span("fault_cell", time=0, message_loss=0.1)
    walk = tracer.span("walk", time=0, parent=cell, walker_id=0)
    tracer.event("hop", time=1, span=walk, node=3)
    tracer.event("message", time=1, span=walk, category="walk", to_node=3)
    tracer.end(walk, time=4, outcome="completed", attempts=1)
    tracer.end(cell, time=9, n_required=5, n_achieved=5)
    tracer.event("fault", time=2, kind="message_loss", walker_id=0)
    return tracer


class TestRoundTrip:
    def test_summary_is_identical_after_round_trip(self, tmp_path):
        trace = _sample_tracer().trace()
        path = export_trace(trace, tmp_path / "trace.jsonl")
        restored = import_trace(path)
        assert restored.summary() == trace.summary()
        assert restored.meta == trace.meta

    def test_span_structure_survives(self, tmp_path):
        trace = _sample_tracer().trace()
        restored = import_trace(export_trace(trace, tmp_path / "t.jsonl"))
        walk = restored.spans_named("walk")[0]
        cell = restored.spans_named("fault_cell")[0]
        assert walk.parent_id == cell.span_id
        assert walk.attrs["outcome"] == "completed"
        assert [e.name for e in walk.events] == ["hop", "message"]
        assert walk.duration == 4

    def test_identical_runs_export_byte_identical_files(self, tmp_path):
        a = export_trace(_sample_tracer().trace(), tmp_path / "a.jsonl")
        b = export_trace(_sample_tracer().trace(), tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_numpy_scalar_attrs_export_as_plain_json(self, tmp_path):
        tracer = RecordingTracer()
        span = tracer.span("walk", time=0, weight=np.float64(0.25))
        tracer.end(span, time=np.int64(3), sampled_node=np.int64(4))
        path = export_trace(tracer.trace(), tmp_path / "np.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        span_record = next(r for r in lines if r["kind"] == "span")
        assert span_record["attrs"] == {"weight": 0.25, "sampled_node": 4}
        restored = import_trace(path)
        assert restored.spans[0].attrs["sampled_node"] == 4

    def test_unportable_attr_raises_at_export(self, tmp_path):
        tracer = RecordingTracer()
        span = tracer.span("walk", time=0, payload=object())
        tracer.end(span, time=1)
        with pytest.raises(TypeError):
            export_trace(tracer.trace(), tmp_path / "bad.jsonl")


class TestFormatGuards:
    def test_header_records_version_and_counts(self, tmp_path):
        trace = _sample_tracer().trace()
        path = export_trace(trace, tmp_path / "t.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["format_version"] == FORMAT_VERSION
        assert header["n_spans"] == len(trace.spans)
        assert header["n_events"] == len(trace.events)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format_version": 999}) + "\n"
        )
        with pytest.raises(ValueError, match="format version"):
            import_trace(path)

    def test_unknown_record_kind_raises_with_line_number(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format_version": FORMAT_VERSION})
            + "\n"
            + json.dumps({"kind": "mystery"})
            + "\n"
        )
        with pytest.raises(ValueError, match=":2:"):
            import_trace(path)

    def test_blank_lines_are_ignored(self, tmp_path):
        trace = _sample_tracer().trace()
        path = export_trace(trace, tmp_path / "t.jsonl")
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert import_trace(path).summary() == trace.summary()
