"""End-to-end telemetry tests: instrumented protocol, engine and sweep.

The tracer must be a pure observer (identical simulation results with and
without it), the trace must account for the ledger's message costs
category by category, and replaying an exported trace must reproduce the
live RunMetrics counters exactly — the CI consistency gate.
"""

import time as wallclock

import numpy as np

from repro.core.query import Precision
from repro.experiments import fault_tolerance
from repro.experiments.harness import (
    build_instance,
    make_engine,
    run_continuous_query,
)
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology
from repro.obs.analysis import (
    message_attribution,
    run_metrics_from_trace,
    trigger_breakdown,
    verify_trace_consistency,
    walk_latency_histogram,
    walk_outcomes,
)
from repro.obs.export import export_trace, import_trace
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler
from repro.sampling.weights import uniform_weights
from repro.sim.engine import SimulationEngine


def _run_sampler(tracer=None, ledger=None, variant="bounce", seed=0):
    graph = OverlayGraph(mesh_topology(16), n_nodes=16)
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        SimulationEngine(),
        np.random.default_rng(seed),
        ledger,
        ProtocolConfig(variant=variant),
        tracer=tracer,
    )
    sampled = sampler.run_walks(origin=0, n=12, walk_length=15)
    return sampler, sampled


class TestTracerIsAPureObserver:
    def test_tracing_does_not_perturb_the_simulation(self):
        bare_ledger = MessageLedger()
        _, bare = _run_sampler(tracer=None, ledger=bare_ledger)
        traced_ledger = MessageLedger()
        _, traced = _run_sampler(
            tracer=RecordingTracer(), ledger=traced_ledger
        )
        assert bare == traced
        assert bare_ledger.breakdown() == traced_ledger.breakdown()

    def test_null_tracer_overhead_smoke(self):
        # the disabled path is one dynamic dispatch; a generous wall-clock
        # bound catches accidental allocation or sink work creeping in
        started = wallclock.perf_counter()
        span = NULL_TRACER.span("walk", time=0)
        for i in range(200_000):
            NULL_TRACER.event("hop", time=i, span=span, node=i)
        NULL_TRACER.end(span, time=1)
        assert wallclock.perf_counter() - started < 2.0


class TestWalkSpans:
    def test_walk_spans_match_ledger_attribution(self):
        ledger = MessageLedger()
        tracer = RecordingTracer()
        sampler, sampled = _run_sampler(tracer=tracer, ledger=ledger)
        trace = tracer.trace()
        attribution = message_attribution(trace)
        assert attribution["walk_steps"] == ledger.walk_steps
        assert attribution["sample_returns"] == ledger.sample_returns
        assert attribution["retries"] == ledger.retries == 0
        assert attribution["total"] == ledger.total
        outcomes = walk_outcomes(trace)
        assert outcomes == {"completed": 12}
        assert walk_latency_histogram(trace).count == 12
        completed = [
            span.attrs["sampled_node"] for span in trace.spans_named("walk")
        ]
        assert sorted(completed) == sorted(sampled)

    def test_cached_variant_traces_advertisements(self):
        ledger = MessageLedger()
        tracer = RecordingTracer()
        sampler, _ = _run_sampler(
            tracer=tracer, ledger=ledger, variant="cached"
        )
        attribution = message_attribution(tracer.trace())
        assert attribution["advertisements"] == sampler.advertisements_sent
        assert attribution["advertisements"] > 0
        assert (
            attribution["control"] + ledger.pushes
            == ledger.control + ledger.pushes
        )


class TestEngineTrace:
    def _traced_run(self, scheduler="all", n_steps=8):
        instance = build_instance("temperature", scale=0.05, seed=0)
        tracer = RecordingTracer(meta={"experiment": "unit"})
        engine = make_engine(
            instance,
            Precision(4.0, 2.0),
            scheduler,
            "independent",
            origin=0,
            seed=0,
            tracer=tracer,
        )
        run = run_continuous_query(instance, engine, n_steps=n_steps)
        return engine, run

    def test_run_captures_trace_and_counters_are_derived(self):
        engine, run = self._traced_run()
        assert run.trace is not None
        queries = run.trace.spans_named("snapshot_query")
        assert len(queries) == engine.metrics.snapshot_queries == 8
        assert verify_trace_consistency(run.trace, engine.metrics) == []

    def test_trigger_reasons_start_with_bootstrap(self):
        _, run = self._traced_run()
        breakdown = trigger_breakdown(run.trace)
        assert breakdown == {"bootstrap": 1, "periodic": 7}

    def test_pred_scheduler_reports_prediction_triggers(self):
        _, run = self._traced_run(scheduler="pred", n_steps=15)
        breakdown = trigger_breakdown(run.trace)
        # PRED-k keeps answering "bootstrap" until it has k points to fit
        assert breakdown.pop("bootstrap") >= 1
        assert breakdown  # it must eventually extrapolate
        assert set(breakdown) <= {"predicted_drift", "horizon_capped"}
        assert sum(breakdown.values()) + 1 <= len(
            run.trace.spans_named("snapshot_query")
        )


class TestFaultSweepTrace:
    def test_replayed_trace_matches_live_metrics_exactly(self, tmp_path):
        result = fault_tolerance.run(fault_tolerance.smoke_config(), seed=1)
        assert result.trace is not None
        assert verify_trace_consistency(result.trace, result.metrics) == []
        # the gate must survive the export → import round trip: CI verifies
        # the JSONL artifact, not the in-memory trace
        restored = import_trace(
            export_trace(result.trace, tmp_path / "sweep.jsonl")
        )
        assert restored.summary() == result.trace.summary()
        assert verify_trace_consistency(restored, result.metrics) == []

    def test_attribution_equals_summed_cell_ledgers(self):
        result = fault_tolerance.run(fault_tolerance.smoke_config(), seed=1)
        attribution = message_attribution(result.trace)
        summed: dict[str, int] = {}
        for row in result.rows:
            for category, count in row.ledger_breakdown.items():
                summed[category] = summed.get(category, 0) + count
        assert attribution["walk_steps"] == summed["walk_steps"]
        assert attribution["sample_returns"] == summed["sample_returns"]
        assert attribution["retries"] == summed["retries"]
        assert attribution["control"] == summed["control"]

    def test_degraded_cells_appear_in_the_trace(self):
        result = fault_tolerance.run(fault_tolerance.smoke_config(), seed=1)
        degraded_rows = sum(1 for row in result.rows if row.degraded)
        replayed = run_metrics_from_trace(result.trace)
        assert replayed.degraded_estimates == degraded_rows
        assert replayed.faults_injected == sum(
            sum(row.faults.values()) for row in result.rows
        )
