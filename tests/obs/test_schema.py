"""Tests for the declared trace schema (repro.obs.schema).

Two contracts are pinned here. First, the constant *values* are trace
format v1: exported JSONL traces on disk use these exact strings, so the
values may never change (adding new names is fine; renaming is not).
Second, migrating producers/consumers from string literals to the
constants must be invisible on disk and in every derived summary — the
replay regression asserts byte-identical round trips.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import schema
from repro.obs.analysis import (
    counter_dict,
    message_attribution,
    run_metrics_from_trace,
    verify_trace_consistency,
    walk_outcomes,
)
from repro.obs.export import export_trace, import_trace
from repro.obs.schema import (
    EVENT_SCHEMAS,
    SPAN_SCHEMAS,
    EventSchema,
    SpanSchema,
    event_names,
    span_names,
    trace_names,
)
from repro.obs.tracer import RecordingTracer, RunMetricsSink
from repro.sim.metrics import RunMetrics

#: trace format v1: these exact values appear in traces on disk and in
#: pinned RESULTS.md-producing runs. Never change a value; only add.
V1_SPAN_NAMES = {
    "SPAN_WALK": "walk",
    "SPAN_SHARED_WALK_BATCH": "shared_walk_batch",
    "SPAN_SNAPSHOT_QUERY": "snapshot_query",
    "SPAN_FAULT_CELL": "fault_cell",
    "SPAN_PARTITION_CELL": "partition_cell",
    "SPAN_POOL_SERVE": "pool_serve",
    "SPAN_SAMPLE_ACQUISITION": "sample_acquisition",
    "SPAN_TUPLE_SAMPLING": "tuple_sampling",
}

V1_EVENT_NAMES = {
    "EVENT_ADVERTISEMENT": "advertisement",
    "EVENT_FAULT": "fault",
    "EVENT_RETRY": "retry",
    "EVENT_TIMEOUT": "timeout",
    "EVENT_MESSAGE": "message",
    "EVENT_HOP": "hop",
    "EVENT_PROBE": "probe",
    "EVENT_PARTITION_OPEN": "partition_open",
    "EVENT_PARTITION_HEAL": "partition_heal",
    "EVENT_BREAKER_TRIP": "breaker_trip",
    "EVENT_BREAKER_PROBE": "breaker_probe",
    "EVENT_POOL_INVALIDATE": "pool_invalidate",
    "EVENT_BREAKER_CLOSE": "breaker_close",
    "EVENT_ALERT_FIRING": "alert_firing",
    "EVENT_ALERT_RESOLVED": "alert_resolved",
}

#: trace format v2 additions (causal hop tracing). Same freeze rules.
V2_SPAN_NAMES = {
    "SPAN_HOP_SEGMENT": "hop_segment",
}

V2_EVENT_NAMES = {
    "EVENT_CTX_FORWARD": "ctx_forward",
}

PINNED_SPAN_NAMES = {**V1_SPAN_NAMES, **V2_SPAN_NAMES}
PINNED_EVENT_NAMES = {**V1_EVENT_NAMES, **V2_EVENT_NAMES}


class TestFrozenV1Values:
    def test_span_constants_pin_v1_values(self):
        for constant, value in PINNED_SPAN_NAMES.items():
            assert getattr(schema, constant) == value

    def test_event_constants_pin_v1_values(self):
        for constant, value in PINNED_EVENT_NAMES.items():
            assert getattr(schema, constant) == value

    def test_no_unpinned_name_constants(self):
        """Every SPAN_*/EVENT_* constant is in the pinned tables above --
        adding a name means extending the version table here, deliberately."""
        declared = {
            name
            for name in vars(schema)
            if name.startswith(("SPAN_", "EVENT_"))
            and isinstance(getattr(schema, name), str)
        }
        assert declared == set(PINNED_SPAN_NAMES) | set(PINNED_EVENT_NAMES)


class TestRegistry:
    def test_every_constant_has_a_registry_entry(self):
        assert span_names() == frozenset(PINNED_SPAN_NAMES.values())
        assert event_names() == frozenset(PINNED_EVENT_NAMES.values())
        assert trace_names() == span_names() | event_names()

    def test_registry_keys_match_entry_names(self):
        for name, entry in SPAN_SCHEMAS.items():
            assert entry.name == name
        for name, entry in EVENT_SCHEMAS.items():
            assert entry.name == name

    def test_required_and_optional_do_not_overlap(self):
        for entry in (*SPAN_SCHEMAS.values(), *EVENT_SCHEMAS.values()):
            assert not set(entry.required) & set(entry.optional), entry.name
            assert entry.attrs == entry.required + entry.optional

    def test_event_span_references_are_declared(self):
        for entry in EVENT_SCHEMAS.values():
            if entry.span is not None:
                assert entry.span in SPAN_SCHEMAS

    def test_schemas_are_immutable(self):
        entry = SPAN_SCHEMAS["walk"]
        try:
            entry.name = "renamed"  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover - frozen dataclass must refuse
            raise AssertionError("SpanSchema is not frozen")

    def test_shapes_are_plain_dataclasses(self):
        assert isinstance(SPAN_SCHEMAS["walk"], SpanSchema)
        assert isinstance(EVENT_SCHEMAS["fault"], EventSchema)


class TestLeafModule:
    def test_schema_imports_nothing_from_the_package(self):
        """The analyzer parses this module statically and the tracer
        imports it at interpreter start; it must stay a leaf."""
        source = Path(schema.__file__).read_text(encoding="utf-8")
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith(("import ", "from ")):
                assert stripped == "from __future__ import annotations" or (
                    stripped.startswith("from dataclasses import")
                ), stripped


def _traced_run() -> tuple[RecordingTracer, RunMetrics]:
    """A run exercising every counter, written via the schema constants."""
    metrics = RunMetrics()
    tracer = RecordingTracer(sinks=[RunMetricsSink(metrics)])

    walk = tracer.span(schema.SPAN_WALK, time=0, walker_id=0)
    tracer.event(
        schema.EVENT_MESSAGE, time=0, span=walk, category="walk", to_node=2
    )
    tracer.event(schema.EVENT_HOP, time=1, span=walk, node=2)
    tracer.event(
        schema.EVENT_PROBE, time=1, span=walk, node=2, target=3, messages=2
    )
    tracer.end(walk, time=6, outcome="completed", attempts=2)

    query = tracer.span(schema.SPAN_SNAPSHOT_QUERY, time=50, trigger="periodic")
    tracer.end(
        query, time=50, n_total=8, n_fresh=5, n_retained=3, degraded=True
    )

    tracer.event(schema.EVENT_FAULT, time=3, kind="message_loss")
    tracer.event(schema.EVENT_ADVERTISEMENT, time=0, to_node=1, source=0)
    return tracer, metrics


def _summaries(trace) -> str:
    """Every trace-derived summary, serialized deterministically."""
    return json.dumps(
        {
            "counters": counter_dict(run_metrics_from_trace(trace)),
            "messages": message_attribution(trace),
            "outcomes": walk_outcomes(trace),
            "summary": trace.summary(),
        },
        sort_keys=True,
    )


class TestReplayRegression:
    def test_constants_produce_v1_names_on_disk(self, tmp_path):
        tracer, _ = _traced_run()
        path = export_trace(tracer.trace(), tmp_path / "run.jsonl")
        text = path.read_text(encoding="utf-8")
        assert '"name": "walk"' in text
        assert '"name": "snapshot_query"' in text
        assert '"name": "fault"' in text

    def test_replayed_summaries_are_byte_identical(self, tmp_path):
        """Export -> import -> summarize must reproduce the in-memory
        summaries byte for byte, and a second export round trip must
        reproduce the file byte for byte."""
        tracer, live = _traced_run()
        trace = tracer.trace()
        first = tmp_path / "run.jsonl"
        export_trace(trace, first)
        replayed = import_trace(first)
        assert _summaries(replayed) == _summaries(trace)
        assert verify_trace_consistency(replayed, live) == []
        second = tmp_path / "replayed.jsonl"
        export_trace(replayed, second)
        assert second.read_bytes() == first.read_bytes()
