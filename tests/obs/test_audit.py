"""Tests for the per-query guarantee auditor (repro.obs.audit)."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import QueryError
from repro.obs.audit import (
    META_PROMISES,
    GuaranteeAuditor,
    GuaranteePromise,
    auditor_from_trace,
)
from repro.obs.schema import SPAN_SNAPSHOT_QUERY, SPAN_WALK
from repro.obs.tracer import Span, Trace


def _estimate(degraded=False, achieved_epsilon=None, achieved_confidence=None):
    return SimpleNamespace(
        degraded=degraded,
        achieved_epsilon=achieved_epsilon,
        achieved_confidence=achieved_confidence,
    )


class TestPromise:
    def test_rejects_confidence_outside_unit_interval(self):
        for confidence in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(QueryError):
                GuaranteePromise("q", 0.5, confidence)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(QueryError):
            GuaranteePromise("q", 0.0, 0.9)

    def test_error_budget(self):
        assert GuaranteePromise("q", 0.5, 0.9).error_budget == pytest.approx(0.1)


class TestRegistration:
    def test_register_is_idempotent_for_equal_promises(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        auditor.register("q", 0.5, 0.9)
        assert auditor.query_ids() == ["q"]

    def test_register_rejects_conflicting_promise(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        with pytest.raises(QueryError):
            auditor.register("q", 0.4, 0.9)

    def test_observe_unregistered_query_raises(self):
        with pytest.raises(QueryError):
            GuaranteeAuditor().observe("ghost", 0, _estimate())

    def test_rejects_bad_recent_window(self):
        with pytest.raises(QueryError):
            GuaranteeAuditor(recent_window=0)


class TestViolations:
    def test_clean_estimate_is_not_a_violation(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        assert not auditor.violates("q", _estimate())

    def test_degraded_is_always_a_violation(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        assert auditor.violates("q", _estimate(degraded=True))

    def test_wide_achieved_epsilon_violates(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        assert auditor.violates("q", _estimate(achieved_epsilon=0.7))
        assert not auditor.violates("q", _estimate(achieved_epsilon=0.4))

    def test_low_achieved_confidence_violates(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        assert auditor.violates("q", _estimate(achieved_confidence=0.8))
        assert not auditor.violates("q", _estimate(achieved_confidence=0.95))


class TestBurnRate:
    def test_burn_rate_is_budget_normalized(self):
        auditor = GuaranteeAuditor(recent_window=4)
        auditor.register("q", 0.5, 0.9)  # budget 0.1
        auditor.observe("q", 0, _estimate(degraded=True))
        auditor.observe("q", 1, _estimate())
        # 1 violation / 2 recent = 0.5 fraction over a 0.1 budget
        assert auditor.burn_rate("q") == pytest.approx(5.0)

    def test_bad_snapshots_age_out_of_the_recent_window(self):
        auditor = GuaranteeAuditor(recent_window=2)
        auditor.register("q", 0.5, 0.9)
        auditor.observe("q", 0, _estimate(degraded=True))
        auditor.observe("q", 1, _estimate())
        auditor.observe("q", 2, _estimate())
        assert auditor.burn_rate("q") == 0.0  # the violation aged out
        verdict = auditor.verdict("q")
        assert verdict.violations == 1  # lifetime count remains
        assert verdict.ok

    def test_verdict_fields(self):
        auditor = GuaranteeAuditor(recent_window=4)
        auditor.register("q", 0.5, 0.9)
        auditor.observe("q", 0, _estimate(degraded=True))
        verdict = auditor.verdict("q")
        assert verdict.query_id == "q"
        assert verdict.snapshots == 1
        assert verdict.violations == 1
        assert verdict.violation_fraction == 1.0
        assert not verdict.ok

    def test_signals_take_worst_burn_across_queries(self):
        auditor = GuaranteeAuditor(recent_window=4)
        auditor.register("good", 0.5, 0.9)
        auditor.register("bad", 0.5, 0.9)
        auditor.observe("good", 0, _estimate())
        auditor.observe("bad", 0, _estimate(degraded=True))
        signals = auditor.signals()
        assert signals["audit_burn_rate"] == pytest.approx(10.0)
        assert signals["audit_violation_fraction"] == pytest.approx(0.5)

    def test_signals_empty_auditor(self):
        assert GuaranteeAuditor().signals() == {
            "audit_burn_rate": 0.0,
            "audit_violation_fraction": 0.0,
        }


class TestSpanObservation:
    def _span(self, name=SPAN_SNAPSHOT_QUERY, attrs=None, end=5):
        return Span(span_id=1, name=name, start=4, attrs=attrs or {}, end=end)

    def test_ignores_non_snapshot_spans(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        assert auditor.observe_span(self._span(name=SPAN_WALK)) is None

    def test_ignores_unregistered_queries(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        span = self._span(attrs={"query": "other", "degraded": True})
        assert auditor.observe_span(span) is None
        assert auditor.verdict("q").snapshots == 0

    def test_observes_registered_snapshot_span(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        span = self._span(attrs={"query": "q", "degraded": True})
        assert auditor.observe_span(span) is True
        assert auditor.verdict("q").violations == 1

    def test_reads_achieved_restatements_from_attrs(self):
        auditor = GuaranteeAuditor()
        auditor.register("q", 0.5, 0.9)
        span = self._span(
            attrs={"query": "q", "degraded": False, "achieved_epsilon": 0.9}
        )
        assert auditor.observe_span(span) is True


class TestAuditorFromTrace:
    def test_returns_none_without_promises(self):
        assert auditor_from_trace(Trace()) is None
        assert auditor_from_trace(Trace(meta={META_PROMISES: {}})) is None

    def test_rebuilds_registered_promises(self):
        trace = Trace(
            meta={
                META_PROMISES: {
                    "q1": {"epsilon": 0.5, "confidence": 0.9},
                    "q0": {"epsilon": 0.4, "confidence": 0.8},
                }
            }
        )
        auditor = auditor_from_trace(trace, recent_window=8)
        assert auditor is not None
        assert auditor.query_ids() == ["q0", "q1"]
        assert auditor.recent_window == 8

    def test_rejects_malformed_promise(self):
        trace = Trace(meta={META_PROMISES: {"q": [0.5, 0.9]}})
        with pytest.raises(QueryError):
            auditor_from_trace(trace)
