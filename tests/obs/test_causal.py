"""Tests for cross-node causal assembly (repro.obs.causal).

Two layers of guarantees are pinned here. *Correctness on clean runs*:
with no faults and constant hop latency, delivery is FIFO, so the
assembled chain of every walk must equal the send order exactly —
property-tested across seeds, sizes, and both protocol variants.
*Tolerance on damaged runs*: orphans (late deliveries of superseded
attempts), gaps (dropped transits), unrooted segments (missing walk
spans), and truncated JSONL tails must all degrade the assembly
gracefully instead of raising — the operator reads a damaged trace
precisely when something went wrong.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import mesh_topology
from repro.obs import causal
from repro.obs.export import export_trace, import_trace
from repro.obs.schema import SPAN_HOP_SEGMENT, SPAN_WALK
from repro.obs.tracer import RecordingTracer
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import PRIORITY_CHURN, SimulationEngine


def _run(
    variant="bounce",
    seed=3,
    n=6,
    walk_length=6,
    faults=None,
    retry=None,
    partitions=None,
):
    """One traced run; returns (trace, sampler)."""
    n_nodes = 16
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    simulation = SimulationEngine()
    tracer = RecordingTracer(clock=simulation.clock)
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        simulation,
        np.random.default_rng(seed),
        MessageLedger(),
        ProtocolConfig(variant=variant),
        faults=faults,
        retry=retry,
        partitions=partitions,
        tracer=tracer,
    )
    if partitions is not None:
        simulation.schedule_every(
            1,
            lambda t: partitions.step(t, graph),
            priority=PRIORITY_CHURN,
            start=0,
            until=200,
        )
    sampler.run_walks(
        origin=0, n=n, walk_length=walk_length, allow_partial=True
    )
    return tracer.trace(), sampler


class TestCleanAssembly:
    def test_every_walk_gets_a_tree_with_a_chain(self):
        trace, _ = _run()
        assembly = causal.assemble(trace)
        assert len(assembly.walks) == len(list(trace.spans_named(SPAN_WALK)))
        assert not assembly.unrooted
        assert assembly.n_orphans == 0
        for tree in assembly.walks:
            assert tree.chain  # every clean walk moved at least once
            assert tree.chain_latency <= tree.walk_latency
            assert tree.supervision_latency >= 0

    def test_attribution_buckets_cover_all_hops(self):
        trace, _ = _run()
        assembly = causal.assemble(trace)
        attribution = causal.hop_latency_attribution(assembly)
        assert set(attribution) <= {"walk", "return", "orphan"}
        assert sum(s["count"] for s in attribution.values()) == float(
            assembly.n_hops + len(assembly.unrooted)
        )
        for stats in attribution.values():
            assert stats["mean"] <= stats["max"]

    def test_v1_trace_assembles_to_bare_trees(self):
        """A trace with walk spans but no hop segments (v1, or the
        non-recording fast path) yields empty chains, not errors."""
        trace, _ = _run()
        trace.spans = [
            span for span in trace.spans if span.name != SPAN_HOP_SEGMENT
        ]
        assembly = causal.assemble(trace)
        assert assembly.walks
        assert all(not tree.chain for tree in assembly.walks)
        assert assembly.orphan_rate == 0.0

    def test_critical_paths_scope_the_run(self):
        trace, _ = _run()
        paths = causal.critical_paths(trace)
        assert paths and paths[0].scope == "run"
        run = paths[0]
        assert run.n_walks == len(causal.assemble(trace).walks)
        assert run.chain_latency + run.supervision_latency == run.walk_latency

    def test_batch_scopes_cover_coalesced_batches(self):
        from repro.core.scheduler import WalkDemand, coalesce_demands

        n_nodes = 16
        graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
        simulation = SimulationEngine()
        tracer = RecordingTracer(clock=simulation.clock)
        sampler = ProtocolSampler(
            graph,
            uniform_weights(),
            simulation,
            np.random.default_rng(9),
            MessageLedger(),
            ProtocolConfig(variant="bounce"),
            tracer=tracer,
        )
        plan = coalesce_demands([WalkDemand("q0", 4), WalkDemand("q1", 3)])
        sampler.run_walk_batch(origin=0, plan=plan, walk_length=5)
        paths = causal.critical_paths(tracer.trace())
        batch_paths = [p for p in paths if p.scope.startswith("batch:")]
        assert len(batch_paths) == 1
        # coalescing shares walks across the two demands: the batch pays
        # for max(4, 3) walks, and every one belongs to the batch scope
        n_walks = len(list(tracer.trace().spans_named(SPAN_WALK)))
        assert batch_paths[0].n_walks == n_walks == 4
        assert batch_paths[0].walk_latency >= batch_paths[0].chain_latency


class TestDamageTolerance:
    def test_lossy_run_leaves_gaps_not_failures(self):
        trace, sampler = _run(
            faults=FaultPlan(
                FaultConfig(message_loss=0.2, latency_jitter=3), rng=23
            ),
            retry=RetryPolicy(timeout=25, max_retries=2),
            n=12,
        )
        assert sampler.fault_log.count("message_loss") > 0
        assembly = causal.assemble(trace)
        assert len(assembly.walks) == 12
        # chains only ever contain final-attempt, non-orphaned transits
        for tree in assembly.walks:
            final = tree.span.attrs.get("attempts", 1)
            assert all(hop.attempt == final for hop in tree.chain)
            assert all(not hop.orphaned for hop in tree.chain)
            assert tree.chain_latency <= tree.walk_latency
        # superseded-attempt deliveries are claimed by no chain
        for tree in assembly.walks:
            for hop in tree.orphans:
                assert hop.orphaned or hop.attempt != tree.span.attrs.get(
                    "attempts", 1
                )

    def test_partitioned_run_assembles(self):
        plan = PartitionPlan(
            PartitionSchedule(
                episodes=(PartitionEpisode(start=0, duration=40),)
            ),
            rng=5,
        )
        trace, sampler = _run(
            partitions=plan,
            retry=RetryPolicy(timeout=12, max_retries=1),
            n=10,
        )
        assert sampler.fault_log.count("partition_drop") > 0
        assembly = causal.assemble(trace)
        assert assembly.walks
        paths = causal.critical_paths(trace, assembly)
        assert paths[0].scope == "run"
        assert paths[0].chain_latency <= paths[0].walk_latency

    def test_missing_walk_span_collects_unrooted(self):
        trace, _ = _run()
        victim = next(iter(trace.spans_named(SPAN_WALK)))
        n_victim_hops = sum(
            1
            for span in trace.spans_named(SPAN_HOP_SEGMENT)
            if span.attrs.get("ctx_trace") == victim.span_id
        )
        assert n_victim_hops > 0
        trace.spans = [s for s in trace.spans if s.span_id != victim.span_id]
        assembly = causal.assemble(trace)
        assert len(assembly.unrooted) == n_victim_hops
        assert assembly.orphan_rate > 0.0
        # summaries stay JSON-portable
        assert assembly.summary()["n_unrooted"] == n_victim_hops

    def test_truncated_tail_is_dropped_and_flagged(self, tmp_path):
        trace, _ = _run()
        path = export_trace(trace, tmp_path / "run.jsonl")
        text = path.read_text(encoding="utf-8")
        # cut mid-way through the final line (a killed run's tail)
        path.write_text(text[: len(text) - 40], encoding="utf-8")
        damaged = import_trace(path)
        assert damaged.meta.get("truncated") is True
        assert len(damaged.spans) <= len(trace.spans)
        assembly = causal.assemble(damaged)
        assert assembly.walks  # the intact prefix still assembles
        causal.critical_paths(damaged, assembly)  # and is still boundable

    def test_truncation_on_a_line_boundary_loses_only_records(self, tmp_path):
        trace, _ = _run()
        path = export_trace(trace, tmp_path / "run.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        path.write_text("".join(lines[:-3]), encoding="utf-8")
        damaged = import_trace(path)
        # whole-line truncation parses cleanly (no flag), three fewer records
        assert "truncated" not in damaged.meta
        assert len(damaged.spans) + len(damaged.events) == (
            len(trace.spans) + len(trace.events) - 3
        )
        causal.assemble(damaged)


# -- hypothesis properties ---------------------------------------------------
#
# Clean runs are deterministic FIFO: no fault plan means no jitter, so
# every transit takes exactly hop_latency ticks and deliveries happen in
# send order. That makes the assembled chain fully checkable.

_SEEDS = st.integers(min_value=0, max_value=2**16)
_N_WALKS = st.integers(min_value=1, max_value=6)
_LENGTHS = st.integers(min_value=1, max_value=10)
_VARIANTS = st.sampled_from(("bounce", "cached"))


@settings(max_examples=30, deadline=None)
@given(seed=_SEEDS, n=_N_WALKS, walk_length=_LENGTHS, variant=_VARIANTS)
def test_clean_chain_is_send_order(seed, n, walk_length, variant):
    trace, _ = _run(variant=variant, seed=seed, n=n, walk_length=walk_length)
    assembly = causal.assemble(trace)
    assert len(assembly.walks) == n
    assert assembly.n_orphans == 0
    for tree in assembly.walks:
        # delivery order == send order: the (end, span_id) sort must
        # reproduce ascending span ids (spans are numbered at send time)
        assert [h.span_id for h in tree.chain] == sorted(
            h.span_id for h in tree.chain
        )
        # the chain is connected: each transit departs where the
        # previous one arrived, starting at the origin
        origin = tree.span.attrs["origin"]
        previous = origin
        for hop in tree.chain:
            assert hop.from_node == previous
            previous = hop.to_node
        # the last transit is the sample return arriving home
        if tree.chain:
            assert tree.chain[-1].to_node == origin
        assert tree.chain_latency <= tree.walk_latency


@settings(max_examples=15, deadline=None)
@given(seed=_SEEDS, n=_N_WALKS, variant=_VARIANTS)
def test_critical_path_is_bounded_by_walk_latency(seed, n, variant):
    trace, _ = _run(variant=variant, seed=seed, n=n, walk_length=5)
    for path in causal.critical_paths(trace):
        assert path.chain_latency <= path.walk_latency
        assert path.supervision_latency == (
            path.walk_latency - path.chain_latency
        )
        assert sum(h.latency for h in path.hops) == path.chain_latency
