"""Tests for the live streaming pipeline (repro.obs.live)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.obs.analysis import counter_dict, verify_trace_consistency
from repro.obs.live import (
    META_FINISHED_AT,
    LivePipeline,
    WindowConfig,
    WindowStats,
    feed_trace,
)
from repro.obs.schema import (
    EVENT_ALERT_FIRING,
    EVENT_BREAKER_CLOSE,
    EVENT_BREAKER_TRIP,
    EVENT_FAULT,
    EVENT_MESSAGE,
    EVENT_PROBE,
    SPAN_POOL_SERVE,
    SPAN_SNAPSHOT_QUERY,
    SPAN_WALK,
)
from repro.obs.tracer import RecordingTracer, RunMetricsSink, SinkTracer
from repro.sim.metrics import RunMetrics


def _walk_span(tracer, start, end, outcome="ok", attempts=1, events=()):
    span = tracer.span(
        SPAN_WALK,
        time=start,
        walker_id=1,
        origin=0,
        walk_length=end - start,
    )
    for time, name, attrs in events:
        span.add_event(time, name, **attrs)
    tracer.end(span, time=end, outcome=outcome, attempts=attempts)
    return span


class TestWindowConfig:
    def test_rejects_bad_width(self):
        with pytest.raises(QueryError):
            WindowConfig(width=0)

    def test_rejects_bad_slide(self):
        with pytest.raises(QueryError):
            WindowConfig(slide=0)

    def test_rejects_history_below_slide(self):
        with pytest.raises(QueryError):
            WindowConfig(slide=8, history=4)


class TestWindowing:
    def test_tumbling_window_closes_on_boundary(self):
        pipeline = LivePipeline(WindowConfig(width=10, slide=2))
        tracer = SinkTracer(sinks=[pipeline])
        _walk_span(tracer, 0, 3)
        _walk_span(tracer, 4, 8)
        assert len(pipeline.windows) == 0  # first window still open
        _walk_span(tracer, 10, 12)  # crosses the boundary
        assert len(pipeline.windows) == 1
        window = pipeline.windows[0]
        assert (window.start, window.end) == (0, 10)
        assert window.walks == 2
        assert window.walk_latency_sum == 3 + 4
        assert window.walk_latency_max == 4

    def test_gap_emits_empty_windows(self):
        pipeline = LivePipeline(WindowConfig(width=10, slide=2))
        tracer = SinkTracer(sinks=[pipeline])
        _walk_span(tracer, 0, 1)
        _walk_span(tracer, 35, 36)  # three window boundaries later
        assert [w.walks for w in pipeline.windows] == [1, 0, 0]

    def test_untimed_records_dropped(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])  # no clock: records get -1
        span = tracer.span(SPAN_WALK, walker_id=1, origin=0, walk_length=5)
        tracer.end(span, outcome="ok", attempts=1)
        tracer.event(EVENT_FAULT, kind="x", walker_id=0, node=0, detail="")
        assert pipeline.records_dropped == 2
        assert pipeline.records_seen == 0

    def test_finish_closes_partial_window(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])
        _walk_span(tracer, 0, 4)
        pipeline.finish(7)
        assert len(pipeline.windows) == 1
        window = pipeline.windows[0]
        assert window.partial
        assert (window.start, window.end) == (0, 7)
        # idempotent: a second finish must not close anything else
        pipeline.finish(9)
        assert len(pipeline.windows) == 1

    def test_history_is_bounded(self):
        pipeline = LivePipeline(WindowConfig(width=1, slide=1, history=4))
        tracer = SinkTracer(sinks=[pipeline])
        for tick in range(20):
            _walk_span(tracer, tick, tick)
        assert len(pipeline.windows) == 4


class TestAccumulation:
    def test_walk_failures_and_message_categories(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])
        _walk_span(
            tracer,
            0,
            5,
            outcome="failed",
            events=[
                (1, EVENT_MESSAGE, {"category": "walk", "to_node": 2}),
                (2, EVENT_MESSAGE, {"category": "retry", "to_node": 3}),
                (3, EVENT_PROBE, {"node": 4, "probes": 1, "messages": 2}),
            ],
        )
        pipeline.finish(5)
        window = pipeline.windows[0]
        assert window.walks_failed == 1
        assert window.messages == {"walk": 1, "retry": 1, "probe": 2}
        assert window.signals()["walk_failure_fraction"] == 1.0

    def test_pool_and_snapshot_accumulation(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])
        span = tracer.span(
            SPAN_POOL_SERVE,
            time=1,
            n_requested=4,
            consumer="q0",
            origin=0,
        )
        tracer.end(span, time=1, n_hit=3, n_miss=1, n_drawn=1)
        span = tracer.span(SPAN_SNAPSHOT_QUERY, time=2, query="q0")
        tracer.end(span, time=2, degraded=True)
        span = tracer.span(SPAN_SNAPSHOT_QUERY, time=3, query="q1")
        tracer.end(span, time=3, degraded=False)
        pipeline.finish(4)
        signals = pipeline.windows[0].signals()
        assert signals["pool_hit_ratio"] == 0.75
        assert signals["snapshot_count"] == 2.0
        assert signals["degraded_fraction"] == 0.5

    def test_fault_and_breaker_events(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])
        tracer.event(
            EVENT_FAULT, time=1, kind="message_loss", walker_id=1, node=2, detail=""
        )
        tracer.event(EVENT_BREAKER_TRIP, time=2, origin=0, neighbor=1, failures=3)
        tracer.event(EVENT_BREAKER_TRIP, time=2, origin=0, neighbor=2, failures=3)
        tracer.event(EVENT_BREAKER_CLOSE, time=3, origin=0, neighbor=1)
        pipeline.finish(4)
        window = pipeline.windows[0]
        assert window.faults == 1
        assert window.breaker_trips == 2
        assert window.breaker_closes == 1
        assert window.breaker_open_fraction == 0.5
        assert window.breaker_open_by_origin == {0: 0.5}

    def test_alert_events_are_not_input(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = SinkTracer(sinks=[pipeline])
        tracer.event(
            EVENT_ALERT_FIRING,
            time=1,
            rule="r",
            kind="threshold",
            signal="s",
            value=1.0,
            threshold=0.0,
        )
        assert pipeline.records_seen == 0
        assert pipeline.records_dropped == 0


class TestSliding:
    def test_sliding_merges_recent_windows(self):
        pipeline = LivePipeline(WindowConfig(width=10, slide=2))
        tracer = SinkTracer(sinks=[pipeline])
        _walk_span(tracer, 0, 5, outcome="failed")
        _walk_span(tracer, 11, 13)
        _walk_span(tracer, 14, 16)
        pipeline.finish(20)
        merged = pipeline.sliding()
        assert merged is not None
        assert merged.walks == 3
        assert merged.walks_failed == 1
        assert merged.signals()["walk_failure_fraction"] == pytest.approx(1 / 3)

    def test_sliding_none_without_windows(self):
        assert LivePipeline(WindowConfig(width=10)).sliding() is None

    def test_merge_keeps_latest_state_snapshots(self):
        early = WindowStats(start=0, end=10, breaker_open_fraction=0.8)
        late = WindowStats(start=10, end=20, breaker_open_fraction=0.2)
        late.extra["audit_burn_rate"] = 3.0
        early.merge(late)
        assert early.breaker_open_fraction == 0.2
        assert early.extra == {"audit_burn_rate": 3.0}


class TestReplay:
    def test_feed_trace_reproduces_live_windows(self):
        config = WindowConfig(width=10, slide=2)
        live = LivePipeline(config)
        tracer = RecordingTracer(sinks=[live])
        _walk_span(
            tracer,
            0,
            5,
            outcome="failed",
            events=[(1, EVENT_MESSAGE, {"category": "walk", "to_node": 2})],
        )
        tracer.event(
            EVENT_FAULT, time=7, kind="message_loss", walker_id=1, node=2, detail=""
        )
        _walk_span(tracer, 12, 15)
        tracer.meta[META_FINISHED_AT] = 15
        live.finish(15)

        replayed = feed_trace(LivePipeline(config), tracer.trace())
        assert len(replayed.windows) == len(live.windows)
        for live_window, replay_window in zip(live.windows, replayed.windows):
            assert live_window.signals() == replay_window.signals()
            assert live_window.partial == replay_window.partial


# -- satellite: sink fan-out must be order-insensitive -----------------

_OUTCOMES = st.sampled_from(["ok", "failed", "lost"])

_WALKS = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 10), _OUTCOMES, st.integers(1, 3)),
    max_size=12,
)

_FAULT_TIMES = st.lists(st.integers(0, 50), max_size=8)


def _emit_stream(tracer, walks, fault_times):
    """One deterministic record stream (same inputs → same records)."""
    for start, duration, outcome, attempts in walks:
        _walk_span(tracer, start, start + duration, outcome, attempts)
    for time in fault_times:
        tracer.event(
            EVENT_FAULT, time=time, kind="message_loss", walker_id=0, node=1, detail=""
        )


@settings(max_examples=40, deadline=None)
@given(walks=_WALKS, fault_times=_FAULT_TIMES)
def test_sink_order_does_not_affect_counters_or_windows(walks, fault_times):
    """RunMetricsSink and LivePipeline must commute inside the fan-out.

    The same stream through ``[counters, pipeline]`` and ``[pipeline,
    counters]`` must produce identical counters and identical windows,
    and the replayed-counter consistency check must hold for both
    recorded traces.
    """
    config = WindowConfig(width=10, slide=2)
    results = []
    for reverse in (False, True):
        metrics = RunMetrics()
        pipeline = LivePipeline(config)
        sinks = [RunMetricsSink(metrics), pipeline]
        if reverse:
            sinks.reverse()
        tracer = RecordingTracer(sinks=sinks)
        _emit_stream(tracer, walks, fault_times)
        pipeline.finish(60)
        tracer.meta[META_FINISHED_AT] = 60
        assert verify_trace_consistency(tracer.trace(), metrics) == []
        results.append(
            (counter_dict(metrics), [w.signals() for w in pipeline.windows])
        )
    assert results[0] == results[1]
