"""Tests for the deterministic metric instruments (repro.obs.registry)."""

import pytest

from repro.obs.registry import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("x")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing_is_upper_bound_inclusive(self):
        histogram = Histogram("h", (1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 5.1):
            histogram.observe(value)
        # v lands in the first bucket with v <= bound; > last bound
        # overflows into the implicit final bucket
        assert histogram.counts == [2, 2, 1, 1]
        assert histogram.count == 6

    def test_mean_is_exact_without_per_sample_storage(self):
        histogram = Histogram("h", (10.0,))
        histogram.observe(1.0)
        histogram.observe(2.0)
        assert histogram.mean() == 1.5

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0,)).mean()

    def test_boundaries_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_bucket_labels_cover_every_bucket(self):
        histogram = Histogram("h", (1.0, 5.0))
        labels = histogram.bucket_labels()
        assert labels == ["<= 1", "(1, 5]", "> 5"]
        assert len(labels) == len(histogram.counts)

    def test_identical_observations_produce_identical_state(self):
        # determinism: two histograms fed the same stream are equal in
        # every exported field (the trace round-trip relies on this)
        values = [0.0, 1.0, 3.0, 7.0, 2000.0]
        a = Histogram("h", DEFAULT_DURATION_BUCKETS)
        b = Histogram("h", DEFAULT_DURATION_BUCKETS)
        for value in values:
            a.observe(value)
            b.observe(value)
        assert (a.counts, a.count, a.total) == (b.counts, b.count, b.total)


class TestMetricsRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_boundary_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h", (1.0,)).observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["histograms"]["h"]["counts"] == [0, 1]
        json.dumps(snapshot)  # must not raise
