"""Tests for the span/event tracer core (repro.obs.tracer)."""

import pytest

from repro.network.faults import FaultLog
from repro.obs.tracer import (
    NO_TIME,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    RegistrySink,
    RunMetricsSink,
    SinkTracer,
    Span,
    TraceEvent,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import SimulationClock
from repro.sim.metrics import RunMetrics


class TestNullTracer:
    def test_disabled_and_identity_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("walk", time=3, walker_id=7)
        assert span is NULL_SPAN

    def test_null_span_swallows_mutation(self):
        NULL_SPAN.set(aggregate=1.0)
        NULL_SPAN.add_event(5, "hop", node=2)
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.events == []
        assert NULL_SPAN.duration == 0

    def test_end_and_event_are_noops(self):
        tracer = NullTracer()
        tracer.end(NULL_SPAN, time=9, outcome="completed")
        tracer.event("fault", time=2, kind="message_loss")
        assert NULL_SPAN.end is None

    def test_profile_is_a_null_context(self):
        with NULL_TRACER.profile("section"):
            pass

    def test_session_protocol_is_all_noops(self):
        # a NullTracer must be a drop-in for a session's tracer: sinks
        # and clocks are dropped, and meta writes land in a throwaway
        tracer = NullTracer()
        tracer.add_sink(object())
        assert tracer.has_clock is True  # nothing to stamp, vacuously
        tracer.set_clock(lambda: 5)
        assert tracer.now() == NO_TIME
        tracer.meta["promises"] = {"q0": {}}
        assert tracer.meta == {}


class TestSinkTracer:
    def test_span_lifecycle_and_sequential_ids(self):
        tracer = SinkTracer()
        a = tracer.span("walk", time=0, walker_id=0)
        b = tracer.span("walk", time=1, walker_id=1)
        assert (a.span_id, b.span_id) == (1, 2)
        tracer.end(a, time=5, outcome="completed")
        assert a.end == 5 and a.duration == 5
        assert a.attrs == {"walker_id": 0, "outcome": "completed"}
        assert tracer.spans_started == 2 and tracer.spans_ended == 1

    def test_end_is_idempotent(self):
        captured = []

        class Sink:
            def on_span_end(self, span):
                captured.append(span)

            def on_event(self, event):
                raise AssertionError("no loose events here")

        tracer = SinkTracer(sinks=[Sink()])
        span = tracer.span("walk", time=0)
        tracer.end(span, time=4)
        tracer.end(span, time=9, outcome="late")
        assert span.end == 4
        assert "outcome" not in span.attrs
        assert captured == [span]

    def test_end_never_precedes_start(self):
        tracer = SinkTracer()
        span = tracer.span("walk", time=10)
        tracer.end(span, time=3)
        assert span.end == 10 and span.duration == 0

    def test_untimed_records_use_the_sentinel(self):
        tracer = SinkTracer()
        span = tracer.span("walk")
        assert span.start == NO_TIME

    def test_clock_callable_supplies_time(self):
        now = {"t": 7}
        tracer = SinkTracer(clock=lambda: now["t"])
        span = tracer.span("walk")
        now["t"] = 12
        tracer.end(span)
        assert (span.start, span.end) == (7, 12)

    def test_simulation_clock_supplies_time(self):
        clock = SimulationClock(start=2)
        tracer = SinkTracer(clock=clock)
        span = tracer.span("walk")
        clock.tick(3)
        tracer.end(span)
        assert (span.start, span.end) == (2, 5)

    def test_explicit_time_beats_the_clock(self):
        tracer = SinkTracer(clock=lambda: 99)
        span = tracer.span("walk", time=1)
        assert span.start == 1

    def test_set_clock_wires_a_late_time_source(self):
        tracer = SinkTracer()
        assert tracer.has_clock is False
        assert tracer.now() == NO_TIME
        tracer.set_clock(lambda: 4)
        assert tracer.has_clock is True
        assert tracer.now() == 4
        assert tracer.span("walk").start == 4

    def test_set_clock_accepts_a_simulation_clock(self):
        clock = SimulationClock(start=3)
        tracer = SinkTracer()
        tracer.set_clock(clock)
        clock.tick(2)
        assert tracer.now() == 5

    def test_set_clock_refuses_to_replace_an_existing_clock(self):
        tracer = SinkTracer(clock=lambda: 1)
        with pytest.raises(ValueError, match="already has a clock"):
            tracer.set_clock(lambda: 2)

    def test_span_attached_event_stays_off_the_sinks(self):
        loose = []

        class Sink:
            def on_span_end(self, span):
                pass

            def on_event(self, event):
                loose.append(event.name)

        tracer = SinkTracer(sinks=[Sink()])
        span = tracer.span("walk", time=0)
        tracer.event("hop", time=1, span=span, node=3)
        tracer.event("fault", time=2, kind="message_loss")
        assert [event.name for event in span.events] == ["hop"]
        assert loose == ["fault"]

    def test_parenting_skips_the_null_span(self):
        tracer = SinkTracer()
        root = tracer.span("cell", time=0)
        child = tracer.span("walk", time=0, parent=root)
        orphan = tracer.span("walk", time=0, parent=NULL_SPAN)
        assert child.parent_id == root.span_id
        assert orphan.parent_id is None

    def test_ending_the_null_span_is_ignored(self):
        tracer = SinkTracer()
        tracer.end(NULL_SPAN, time=8)
        assert NULL_SPAN.end is None
        assert tracer.spans_ended == 0


class TestRecordingTracer:
    def test_trace_retains_finished_spans_in_id_order(self):
        tracer = RecordingTracer(meta={"experiment": "unit"})
        first = tracer.span("walk", time=0)
        second = tracer.span("walk", time=1)
        open_span = tracer.span("walk", time=2)
        tracer.end(second, time=3)
        tracer.end(first, time=4)
        tracer.event("fault", time=5, kind="message_loss")
        trace = tracer.trace()
        assert [span.span_id for span in trace.spans] == [1, 2]
        assert open_span.span_id not in {s.span_id for s in trace.spans}
        assert [event.name for event in trace.events] == ["fault"]
        assert trace.meta == {"experiment": "unit"}

    def test_summary_digest_distinguishes_attachment(self):
        tracer = RecordingTracer()
        span = tracer.span("walk", time=0)
        tracer.event("hop", time=1, span=span)
        tracer.end(span, time=2)
        tracer.event("fault", time=3)
        assert tracer.trace().summary() == {
            "event:hop": 1,
            "loose:fault": 1,
            "span:walk": 1,
        }


class TestRunMetricsSink:
    def test_snapshot_query_span_books_sample_counters(self):
        metrics = RunMetrics()
        sink = RunMetricsSink(metrics)
        sink.on_span_end(
            Span(
                span_id=1,
                name="snapshot_query",
                start=0,
                end=0,
                attrs={
                    "n_total": 10,
                    "n_fresh": 6,
                    "n_retained": 4,
                    "degraded": True,
                },
            )
        )
        assert metrics.snapshot_queries == 1
        assert metrics.samples_total == 10
        assert metrics.samples_fresh == 6
        assert metrics.samples_retained == 4
        assert metrics.degraded_estimates == 1

    def test_walk_span_books_retries_and_failures(self):
        metrics = RunMetrics()
        sink = RunMetricsSink(metrics)
        sink.on_span_end(
            Span(
                span_id=1,
                name="walk",
                start=0,
                end=9,
                attrs={"outcome": "completed", "attempts": 3},
            )
        )
        sink.on_span_end(
            Span(
                span_id=2,
                name="walk",
                start=0,
                end=9,
                attrs={"outcome": "failed", "attempts": 1},
            )
        )
        assert metrics.walks_retried == 2
        assert metrics.walks_failed == 1

    def test_fault_event_books_faults_injected(self):
        metrics = RunMetrics()
        sink = RunMetricsSink(metrics)
        sink.on_event(TraceEvent(time=4, name="fault", attrs={}))
        sink.on_event(TraceEvent(time=5, name="advertisement", attrs={}))
        assert metrics.faults_injected == 1

    def test_unrelated_spans_leave_counters_alone(self):
        metrics = RunMetrics()
        RunMetricsSink(metrics).on_span_end(
            Span(span_id=1, name="fault_cell", start=0, end=1)
        )
        assert metrics.snapshot_queries == 0


class TestRegistrySink:
    def test_counts_and_duration_histogram(self):
        registry = MetricsRegistry()
        sink = RegistrySink(registry)
        span = Span(span_id=1, name="walk", start=0, end=7)
        span.events.append(TraceEvent(time=1, name="hop", attrs={}))
        sink.on_span_end(span)
        sink.on_event(TraceEvent(time=2, name="fault", attrs={}))
        assert registry.counter("spans.walk").value == 1
        assert registry.counter("events.hop").value == 1
        assert registry.counter("events.fault").value == 1
        histogram = registry.histogram("span_duration.walk")
        assert histogram.count == 1 and histogram.total == 7.0


class TestBridgeFaultLog:
    def test_forwards_faults_as_loose_events(self):
        from repro.obs.tracer import bridge_fault_log

        log = FaultLog()
        tracer = RecordingTracer()
        bridge_fault_log(log, tracer)
        log.record(5, "message_loss", walker_id=3, node=1, detail="hop")
        events = tracer.trace().events
        assert [e.name for e in events] == ["fault"]
        assert events[0].time == 5
        assert events[0].attrs["kind"] == "message_loss"

    def test_double_bridge_records_each_fault_once(self):
        from repro.obs.tracer import bridge_fault_log

        log = FaultLog()
        tracer = RecordingTracer()
        bridge_fault_log(log, tracer)
        bridge_fault_log(log, tracer)
        log.record(1, "node_crash")
        assert len(tracer.trace().events) == 1

    def test_null_tracer_subscribes_nothing(self):
        from repro.obs.tracer import bridge_fault_log

        log = FaultLog()
        bridge_fault_log(log, NULL_TRACER)
        log.record(1, "node_crash")  # must not call into the tracer
