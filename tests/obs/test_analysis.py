"""Tests for post-hoc trace analysis (repro.obs.analysis)."""

import pytest

from repro.obs.analysis import (
    COUNTER_FIELDS,
    alert_timeline,
    counter_dict,
    degraded_timeline,
    fault_timeline,
    folded_stacks,
    message_attribution,
    run_metrics_from_trace,
    shared_walk_attribution,
    trigger_breakdown,
    verify_trace_consistency,
    walk_latency_histogram,
    walk_outcomes,
)
from repro.obs.tracer import (
    RecordingTracer,
    RunMetricsSink,
    Span,
    Trace,
    TraceEvent,
)
from repro.sim.metrics import RunMetrics


def _traced_run() -> tuple[RecordingTracer, RunMetrics]:
    """A hand-built trace exercising every counter, with a live sink."""
    metrics = RunMetrics()
    tracer = RecordingTracer(sinks=[RunMetricsSink(metrics)])

    completed = tracer.span("walk", time=0, walker_id=0)
    tracer.event("message", time=0, span=completed, category="walk")
    tracer.event("hop", time=1, span=completed, node=2)
    tracer.event("message", time=1, span=completed, category="return")
    tracer.event("probe", time=1, span=completed, node=2, messages=2)
    tracer.end(completed, time=6, outcome="completed", attempts=2)

    failed = tracer.span("walk", time=2, walker_id=1)
    tracer.event("message", time=2, span=failed, category="retry")
    tracer.end(failed, time=40, outcome="failed", attempts=3)

    query = tracer.span("snapshot_query", time=50, trigger="periodic")
    tracer.end(
        query,
        time=50,
        n_total=8,
        n_fresh=5,
        n_retained=3,
        degraded=True,
    )

    tracer.event("fault", time=3, kind="message_loss")
    tracer.event("fault", time=1, kind="node_crash")
    tracer.event("advertisement", time=0, to_node=1, source=0)
    return tracer, metrics


class TestCounterReplay:
    def test_replay_equals_live_sink(self):
        tracer, live = _traced_run()
        replayed = run_metrics_from_trace(tracer.trace())
        assert counter_dict(replayed) == counter_dict(live)
        assert verify_trace_consistency(tracer.trace(), live) == []

    def test_replayed_counters_have_expected_values(self):
        tracer, _ = _traced_run()
        counters = counter_dict(run_metrics_from_trace(tracer.trace()))
        assert counters == {
            "snapshot_queries": 1,
            "samples_total": 8,
            "samples_fresh": 5,
            "samples_retained": 3,
            "walks_retried": 3,  # (2-1) + (3-1)
            "walks_failed": 1,
            "faults_injected": 2,
            "degraded_estimates": 1,
            "pool_hits": 0,
            "pool_misses": 0,
            "alerts_fired": 0,
            "alerts_resolved": 0,
        }

    def test_mismatch_is_reported_per_counter(self):
        tracer, live = _traced_run()
        live.walks_failed += 1
        live.faults_injected += 2
        mismatches = verify_trace_consistency(tracer.trace(), live)
        assert mismatches == [
            "walks_failed: trace=1 live=2",
            "faults_injected: trace=2 live=4",
        ]

    def test_counter_dict_has_fixed_field_order(self):
        assert tuple(counter_dict(RunMetrics())) == COUNTER_FIELDS


class TestAttribution:
    def test_message_attribution_buckets_by_category(self):
        tracer, _ = _traced_run()
        attribution = message_attribution(tracer.trace())
        assert attribution == {
            "walk_steps": 1,
            "sample_returns": 1,
            "retries": 1,
            "probes": 2,
            "advertisements": 1,
            "control": 3,
            "total": 6,
        }

    def test_walk_outcomes(self):
        tracer, _ = _traced_run()
        assert walk_outcomes(tracer.trace()) == {"completed": 1, "failed": 1}

    def test_walk_latency_histogram_observes_finished_walks(self):
        tracer, _ = _traced_run()
        histogram = walk_latency_histogram(tracer.trace())
        assert histogram.count == 2
        assert histogram.total == 6 + 38
        assert histogram.mean() == 22.0


class TestTimelines:
    def test_fault_timeline_is_time_ordered(self):
        tracer, _ = _traced_run()
        timeline = fault_timeline(tracer.trace())
        assert [event.attrs["kind"] for event in timeline] == [
            "node_crash",
            "message_loss",
        ]

    def test_degraded_timeline_selects_degraded_queries(self):
        tracer, _ = _traced_run()
        degraded = degraded_timeline(tracer.trace())
        assert [span.name for span in degraded] == ["snapshot_query"]

    def test_trigger_breakdown(self):
        tracer, _ = _traced_run()
        assert trigger_breakdown(tracer.trace()) == {"periodic": 1}


class TestFoldedStacks:
    def _nested_trace(self):
        tracer = RecordingTracer()
        cell = tracer.span("fault_cell", time=0)
        walk = tracer.span("walk", time=0, parent=cell)
        tracer.end(walk, time=30)
        tracer.end(cell, time=100)
        lone = tracer.span("walk", time=0)
        tracer.end(lone, time=10)
        return tracer.trace()

    def test_time_weight_books_self_time(self):
        stacks = folded_stacks(self._nested_trace(), weight="time")
        # the cell's 100 ticks minus the 30 spent in its child walk
        assert stacks == {
            "fault_cell": 70,
            "fault_cell;walk": 30,
            "walk": 10,
        }

    def test_count_weight_counts_spans(self):
        stacks = folded_stacks(self._nested_trace(), weight="count")
        assert stacks == {
            "fault_cell": 1,
            "fault_cell;walk": 1,
            "walk": 1,
        }

    def test_self_time_is_clamped_at_zero(self):
        tracer = RecordingTracer()
        parent = tracer.span("outer", time=0)
        child = tracer.span("inner", time=0, parent=parent)
        tracer.end(child, time=50)
        tracer.end(parent, time=10)  # children outlast the parent interval
        stacks = folded_stacks(tracer.trace(), weight="time")
        assert stacks["outer"] == 0

    def test_unknown_weight_raises(self):
        with pytest.raises(ValueError):
            folded_stacks(RecordingTracer().trace(), weight="bytes")


class TestDegenerateTraces:
    """Truncated and empty traces must analyze cleanly, never crash."""

    def test_empty_trace_replays_to_zero_counters(self):
        replayed = run_metrics_from_trace(Trace())
        assert all(v == 0 for v in counter_dict(replayed).values())
        assert verify_trace_consistency(Trace(), RunMetrics()) == []

    def test_empty_trace_analyses_are_empty(self):
        trace = Trace()
        assert all(v == 0 for v in message_attribution(trace).values())
        assert shared_walk_attribution(trace) == {}
        assert walk_outcomes(trace) == {}
        assert fault_timeline(trace) == []
        assert alert_timeline(trace) == []
        assert degraded_timeline(trace) == []
        assert trigger_breakdown(trace) == {}
        assert folded_stacks(trace) == {}
        assert walk_latency_histogram(trace).count == 0

    def test_truncated_open_walk_span(self):
        # a run cut off mid-walk leaves an open span with no outcome
        trace = Trace(spans=[Span(span_id=1, name="walk", start=3)])
        replayed = run_metrics_from_trace(trace)
        assert replayed.walks_failed == 0
        assert replayed.walks_retried == 0
        assert walk_outcomes(trace) == {"open": 1}
        assert walk_latency_histogram(trace).count == 0
        assert folded_stacks(trace) == {}  # open spans have no duration

    def test_spans_and_events_missing_attrs(self):
        trace = Trace(
            spans=[Span(span_id=1, name="snapshot_query", start=2, end=2)],
            events=[TraceEvent(5, "fault")],
        )
        replayed = run_metrics_from_trace(trace)
        assert replayed.snapshot_queries == 1
        assert replayed.samples_total == 0
        assert replayed.degraded_estimates == 0
        assert replayed.faults_injected == 1
        assert degraded_timeline(trace) == []
        assert trigger_breakdown(trace) == {"unknown": 1}
        assert [e.time for e in fault_timeline(trace)] == [5]

    def test_folded_stacks_survive_a_dangling_parent(self):
        # the parent span was cut off (never retained); the child's
        # stack stops at the deepest span still present
        trace = Trace(
            spans=[
                Span(span_id=9, name="walk", start=0, parent_id=4, end=6)
            ]
        )
        assert folded_stacks(trace) == {"walk": 6}
        assert folded_stacks(trace, weight="count") == {"walk": 1}
