"""Tests for the declarative alert engine (repro.obs.alerts)."""

from __future__ import annotations

import json

import pytest

from repro.errors import QueryError
from repro.obs.alerts import (
    ABSENCE,
    BURN_RATE,
    FIRING,
    RESOLVED,
    THRESHOLD,
    AlertEngine,
    AlertRule,
    load_rules,
    replay_alerts,
    verify_alert_replay,
)
from repro.obs.analysis import alert_timeline
from repro.obs.live import META_FINISHED_AT, LivePipeline, WindowConfig
from repro.obs.schema import EVENT_ALERT_FIRING, SPAN_WALK
from repro.obs.tracer import RecordingTracer


def _fail_walk(tracer, start, end, outcome="failed"):
    span = tracer.span(
        SPAN_WALK, time=start, walker_id=1, origin=0, walk_length=end - start
    )
    tracer.end(span, time=end, outcome=outcome, attempts=1)


FAILURE_RULE = AlertRule(
    name="walk-failures",
    signal="walk_failure_fraction",
    kind=THRESHOLD,
    threshold=0.5,
    comparison=">",
)


class TestAlertRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(QueryError):
            AlertRule(name="r", signal="s", kind="median")

    def test_rejects_unknown_comparison(self):
        with pytest.raises(QueryError):
            AlertRule(name="r", signal="s", comparison="!=")

    def test_rejects_empty_name(self):
        with pytest.raises(QueryError):
            AlertRule(name="", signal="s")

    def test_rejects_nonpositive_for_windows(self):
        with pytest.raises(QueryError):
            AlertRule(name="r", signal="s", for_windows=0)

    def test_absence_breaches_at_or_below_threshold(self):
        rule = AlertRule(name="r", signal="s", kind=ABSENCE)
        assert rule.breaches(0.0)
        assert not rule.breaches(0.5)

    def test_threshold_directions(self):
        below = AlertRule(name="r", signal="s", threshold=2.0, comparison="<")
        assert below.breaches(1.0)
        assert not below.breaches(3.0)


class TestEngineLifecycle:
    def test_rejects_duplicate_rule_names(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        with pytest.raises(QueryError):
            AlertEngine(pipeline, [FAILURE_RULE, FAILURE_RULE])

    def test_fires_and_resolves(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        engine = AlertEngine(pipeline, [FAILURE_RULE])
        tracer = RecordingTracer(sinks=[pipeline])
        _fail_walk(tracer, 0, 5)  # window [0,10): 1/1 failed
        _fail_walk(tracer, 12, 15, outcome="ok")  # [10,20): clean
        _fail_walk(tracer, 22, 25, outcome="ok")  # closes [10,20)
        pipeline.finish(25)
        states = [(t.state, t.time) for t in engine.transitions]
        assert states == [(FIRING, 10), (RESOLVED, 20)]
        assert engine.firing == []

    def test_for_windows_hysteresis(self):
        rule = AlertRule(
            name="sustained",
            signal="walk_failure_fraction",
            threshold=0.5,
            comparison=">",
            for_windows=2,
        )
        pipeline = LivePipeline(WindowConfig(width=10))
        engine = AlertEngine(pipeline, [rule])
        tracer = RecordingTracer(sinks=[pipeline])
        _fail_walk(tracer, 0, 5)  # breach 1
        _fail_walk(tracer, 12, 15)  # breach 2 (closes window 1)
        _fail_walk(tracer, 22, 25)  # closes window 2 -> fires here
        pipeline.finish(30)
        assert [(t.state, t.time) for t in engine.transitions] == [(FIRING, 20)]
        assert engine.firing == ["sustained"]

    def test_burn_rate_rule_uses_sliding_view(self):
        # one failed walk then one clean walk per window: each tumbling
        # window alternates 1.0 / 0.0 but the 2-window sliding view stays
        # at 0.5, so only the burn-rate rule pages
        tumbling = AlertRule(
            name="spike", signal="walk_failure_fraction",
            threshold=0.4, comparison=">", for_windows=2,
        )
        burn = AlertRule(
            name="burn", signal="walk_failure_fraction", kind=BURN_RATE,
            threshold=0.4, comparison=">", for_windows=2,
        )
        pipeline = LivePipeline(WindowConfig(width=10, slide=2))
        engine = AlertEngine(pipeline, [tumbling, burn])
        tracer = RecordingTracer(sinks=[pipeline])
        for index in range(4):
            outcome = "failed" if index % 2 == 0 else "ok"
            start = index * 10
            _fail_walk(tracer, start, start + 5, outcome=outcome)
        pipeline.finish(40)
        fired = {t.rule for t in engine.transitions if t.state == FIRING}
        assert fired == {"burn"}

    def test_transitions_recorded_as_trace_events_and_ops_log(self):
        pipeline = LivePipeline(WindowConfig(width=10))
        tracer = RecordingTracer(sinks=[pipeline])
        engine = AlertEngine(pipeline, [FAILURE_RULE], tracer=tracer)
        _fail_walk(tracer, 0, 5)
        _fail_walk(tracer, 12, 15)
        pipeline.finish(15)
        trace = tracer.trace()
        events = [e for e in trace.events if e.name == EVENT_ALERT_FIRING]
        assert len(events) == 1
        assert events[0].time == 10
        assert events[0].attrs["rule"] == "walk-failures"
        assert events[0].attrs["value"] == 1.0
        assert engine.fault_log.counts() == {FIRING: 1}


class TestRulesFile:
    def test_load_rules_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                [
                    {"name": "r1", "signal": "fault_count", "threshold": 5},
                    {
                        "name": "r2",
                        "signal": "snapshot_count",
                        "kind": "absence",
                        "for_windows": 3,
                    },
                ]
            )
        )
        rules = load_rules(path)
        assert [r.name for r in rules] == ["r1", "r2"]
        assert rules[1].kind == ABSENCE

    def test_load_rules_rejects_non_list(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{}")
        with pytest.raises(QueryError):
            load_rules(path)

    def test_load_rules_rejects_unknown_keys(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([{"name": "r", "signal": "s", "sev": 1}]))
        with pytest.raises(QueryError):
            load_rules(path)


class TestReplay:
    def _recorded_run(self):
        config = WindowConfig(width=10, slide=2)
        rules = [FAILURE_RULE]
        pipeline = LivePipeline(config)
        tracer = RecordingTracer(sinks=[pipeline])
        AlertEngine(pipeline, rules, tracer=tracer)
        _fail_walk(tracer, 0, 5)
        _fail_walk(tracer, 12, 15, outcome="ok")
        _fail_walk(tracer, 22, 25, outcome="ok")
        tracer.meta[META_FINISHED_AT] = 25
        pipeline.finish(25)
        return tracer.trace(), rules, config

    def test_replay_matches_recorded_transitions(self):
        trace, rules, config = self._recorded_run()
        assert verify_alert_replay(trace, rules, config) == []
        replayed = replay_alerts(trace, rules, config)
        assert [(t.state, t.time) for t in replayed] == [
            (FIRING, 10),
            (RESOLVED, 20),
        ]
        # the recorded alert events do not feed back into the replay
        assert len(alert_timeline(trace)) == len(replayed)

    def test_replay_detects_tampered_trace(self):
        trace, rules, config = self._recorded_run()
        tampered = [e for e in trace.events if e.name != EVENT_ALERT_FIRING]
        trace.events.clear()
        trace.events.extend(tampered)
        problems = verify_alert_replay(trace, rules, config)
        assert problems and "count" in problems[0]
