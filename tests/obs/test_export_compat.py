"""Backward-compatibility gate for trace format v1.

``tests/obs/golden/v1_faulted_trace.jsonl`` is a committed trace written
by the v1 exporter (before hop segments existed). The v2 reader must
import it unchanged, and the full analysis surface — attribution,
replayed counters, walk outcomes, causal assembly — must produce
*byte-identical* output against the committed expectation. Any diff here
is a silent format break for every trace users have already saved.

Regenerating the expectation (only when the analysis surface gains
fields, never because values drifted)::

    PYTHONPATH=src python -m tests.obs.test_export_compat --write
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.analysis import (
    assemble,
    counter_dict,
    critical_paths,
    hop_latency_attribution,
    message_attribution,
    run_metrics_from_trace,
    walk_outcomes,
)
from repro.obs.export import SUPPORTED_VERSIONS, export_trace, import_trace
from repro.obs.schema import SPAN_HOP_SEGMENT

GOLDEN_DIR = Path(__file__).parent / "golden"
V1_TRACE = GOLDEN_DIR / "v1_faulted_trace.jsonl"
V1_ANALYSIS = GOLDEN_DIR / "v1_faulted_analysis.json"


def analysis_payload(trace) -> dict[str, object]:
    """Every analysis product a v1 trace feeds, in one JSON-stable dict."""
    assembly = assemble(trace)
    return {
        "message_attribution": message_attribution(trace),
        "counters": counter_dict(run_metrics_from_trace(trace)),
        "walk_outcomes": walk_outcomes(trace),
        "causal_assembly": assembly.summary(),
        "hop_latency": hop_latency_attribution(assembly),
        "critical_paths": [
            path.as_dict() for path in critical_paths(trace, assembly)
        ],
    }


def render_payload(trace) -> str:
    return json.dumps(analysis_payload(trace), indent=2, sort_keys=True) + "\n"


class TestV1Import:
    def test_v1_is_a_supported_version(self):
        assert 1 in SUPPORTED_VERSIONS

    def test_v1_golden_imports_through_the_v2_reader(self):
        trace = import_trace(V1_TRACE)
        header = json.loads(V1_TRACE.read_text().splitlines()[0])
        assert header["format_version"] == 1
        assert len(trace.spans) == header["n_spans"]
        assert len(trace.events) == header["n_events"]
        assert "truncated" not in trace.meta

    def test_v1_trace_has_no_hop_segments_and_bare_chains(self):
        trace = import_trace(V1_TRACE)
        assert not list(trace.spans_named(SPAN_HOP_SEGMENT))
        assembly = assemble(trace)
        assert assembly.walks
        assert all(not tree.chain for tree in assembly.walks)
        # walks can still be bounded, but with no transit to attribute
        # the whole latency is supervision-side
        for path in critical_paths(trace, assembly):
            assert path.hops == ()
            assert path.chain_latency == 0
            assert path.supervision_latency == path.walk_latency

    def test_v1_analysis_is_byte_identical_to_the_committed_golden(self):
        """The load-bearing gate: a v1 file must keep analyzing to the
        exact bytes it produced when v2 shipped."""
        trace = import_trace(V1_TRACE)
        assert render_payload(trace) == V1_ANALYSIS.read_text(
            encoding="utf-8"
        )

    def test_v1_reexports_as_v2_with_identical_analysis(self, tmp_path):
        """Upgrading a v1 file through export is lossless: the rewritten
        file declares v2 but analyzes to the same bytes."""
        trace = import_trace(V1_TRACE)
        path = export_trace(trace, tmp_path / "upgraded.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format_version"] == 2
        assert render_payload(import_trace(path)) == render_payload(trace)


def main() -> None:  # pragma: no cover - regeneration entry point
    import sys

    if "--write" not in sys.argv:
        raise SystemExit(__doc__)
    V1_ANALYSIS.write_text(
        render_payload(import_trace(V1_TRACE)), encoding="utf-8"
    )
    print(f"wrote {V1_ANALYSIS}")


if __name__ == "__main__":  # pragma: no cover
    main()
