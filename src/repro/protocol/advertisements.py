"""Cached-variant weight advertisements: flood, repair, on-demand probe.

The cached protocol variant lets a sender evaluate Metropolis acceptance
locally, which only works if it holds its neighbors' current weights.
:class:`AdvertisementCache` owns that state and its maintenance traffic:
the initial flood (every node advertises to every neighbor), re-
advertisement on weight change, and cache repair after churn rewires the
overlay. Every advertisement is paid control traffic on the ledger —
the advertisement volume *is* the price of the cached variant, so the
accounting lives next to the cache it maintains.

The bounce variant is cache-free and never constructs one of these; its
correctness cannot depend on stale state by design.
"""

from __future__ import annotations

from typing import Iterable

from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.obs.schema import EVENT_ADVERTISEMENT
from repro.obs.tracer import Tracer
from repro.protocol.transport import Transport
from repro.sampling.weights import WeightFunction


class AdvertisementCache:
    """Per-node caches of neighbor weights, kept warm by advertisements."""

    def __init__(
        self,
        graph: OverlayGraph,
        weight: WeightFunction,
        ledger: MessageLedger,
        tracer: Tracer,
        transport: Transport,
    ) -> None:
        self._graph = graph
        self._weight = weight
        self._ledger = ledger
        self._tracer = tracer
        self._transport = transport
        #: ``weights[node][neighbor]`` = the weight ``node`` has cached
        #: for ``neighbor``
        self.weights: dict[int, dict[int, float]] = {}
        self.sent = 0

    def flood(self) -> None:
        """Every node advertises its weight to every neighbor (setup)."""
        for node in self._graph.nodes():
            self.weights[node] = {}
        for node in self._graph.nodes():
            weight = self._weight(node)
            for neighbor in self._graph.neighbors(node):
                self._deliver(neighbor, node, weight)

    def _deliver(self, to_node: int, source: int, weight: float) -> None:
        self._ledger.record_control(1, label="weight_advertisement")
        self.sent += 1
        if self._tracer.enabled:
            self._tracer.event(
                EVENT_ADVERTISEMENT,
                time=self._transport.now,
                to_node=to_node,
                source=source,
            )
        self.weights.setdefault(to_node, {})[source] = weight

    def notify_weight_change(self, node: int) -> None:
        """``node``'s weight changed: re-advertise it to its neighbors."""
        weight = self._weight(node)
        for neighbor in self._graph.neighbors(node):
            self._deliver(neighbor, node, weight)

    def handle_topology_change(
        self,
        joined: Iterable[int] = (),
        left: Iterable[int] = (),
    ) -> None:
        """Refresh advertisements after overlay changes.

        Purges cache entries sourced from departed nodes, then repairs
        every missing neighbor entry (joins, and the new survivor-to-
        survivor links that leave-rewiring creates) with a paid
        advertisement.
        """
        gone = set(left)
        if gone:
            for node in gone:
                self.weights.pop(node, None)
            for cache in self.weights.values():
                for node in gone:
                    cache.pop(node, None)
        self.repair()

    def repair(self) -> None:
        """Advertise across every live edge missing a cached weight."""
        for node in self._graph.nodes():
            cache = self.weights.setdefault(node, {})
            for neighbor in self._graph.neighbors(node):
                if neighbor not in cache:
                    self._deliver(node, neighbor, self._weight(neighbor))

    def lookup(self, node: int, target: int) -> float | None:
        """The weight ``node`` has cached for ``target``, if any."""
        return self.weights.get(node, {}).get(target)

    def store(self, node: int, target: int, weight: float) -> None:
        """Fill one cache entry (after an on-demand probe)."""
        self.weights.setdefault(node, {})[target] = weight
