"""Message types of the sampling protocol.

Every message is an immutable record delivered by the runtime after its
hop latency; handlers run at the *receiving* node with only that node's
local state in scope. Messages carry the ``attempt`` number of the walk
they belong to so the origin-side supervisor can discard deliveries from
attempts it has already timed out and superseded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WalkToken:
    """The sampling agent, forwarded node to node.

    ``steps_remaining`` counts chain transitions still to perform
    (including the one being decided). For the bounce variant the token
    carries the sender's ``(weight, degree)`` so the receiver can evaluate
    the Metropolis acceptance without a probe round trip.
    """

    walker_id: int
    origin: int
    steps_remaining: int
    sender: int
    sender_weight: float
    sender_degree: int
    attempt: int = 1


@dataclass(frozen=True)
class BounceBack:
    """Rejection bounce: the token returns to the proposing node."""

    walker_id: int
    origin: int
    steps_remaining: int
    attempt: int = 1


@dataclass(frozen=True)
class SampleReturn:
    """A finished walk reporting its final position back to the origin.

    ``at_node`` is the node currently holding the message. Each hop the
    holder re-resolves the shortest path toward the origin against the
    *live* topology (rather than trusting a hop count precomputed when the
    walk ended), so returns survive crashes and rewiring along the way.
    """

    walker_id: int
    origin: int
    sampled_node: int
    at_node: int
    attempt: int = 1


@dataclass(frozen=True)
class WeightAdvertisement:
    """Cached-variant control traffic: a node's new weight, to a neighbor."""

    source: int
    weight: float
