"""Message types of the sampling protocol.

Every message is an immutable record delivered by the runtime after its
hop latency; handlers run at the *receiving* node with only that node's
local state in scope. Messages carry the ``attempt`` number of the walk
they belong to so the origin-side supervisor can discard deliveries from
attempts it has already timed out and superseded.

Causal tracing rides inside the messages themselves: every message
carries an optional :class:`TraceContext` stamped by the origin-side
supervisor when the attempt launches. Handlers forward the context
unchanged (``dataclasses.replace`` preserves it for free), so hop-level
spans recorded at *other* nodes can be joined back to the walk that
caused them without any origin-side inference — which is the only way
causality survives once the transport is a real network instead of a
simulation (see the asyncio-backend roadmap item).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceContext:
    """Compact causal context propagated inside protocol messages.

    ``trace_id`` is the span id of the walk span that owns the whole
    causal tree; ``span_id`` is the parent span under which downstream
    hop segments attach (equal to ``trace_id`` when stamped at launch);
    ``attempt`` tags which retry attempt the message belongs to, so
    deliveries from superseded attempts assemble as orphans rather than
    corrupting the final chain.
    """

    trace_id: int
    span_id: int
    attempt: int


def mint_context(trace_id: int, span_id: int, attempt: int) -> TraceContext:
    """The one sanctioned way to create a *fresh* :class:`TraceContext`.

    Minting is the stamping authority's job: only
    :class:`~repro.protocol.lifecycle.WalkLifecycle` mints, at launch and
    at every retry. Everything downstream — executors, transports, the
    future asyncio backend — forwards the incoming message's ``ctx``
    unchanged. Hand-built context dicts and out-of-band
    ``TraceContext(...)`` calls are flagged statically (digest-lint
    DGL015).
    """
    return TraceContext(trace_id=trace_id, span_id=span_id, attempt=attempt)


@dataclass(frozen=True)
class WalkToken:
    """The sampling agent, forwarded node to node.

    ``steps_remaining`` counts chain transitions still to perform
    (including the one being decided). For the bounce variant the token
    carries the sender's ``(weight, degree)`` so the receiver can evaluate
    the Metropolis acceptance without a probe round trip.
    """

    walker_id: int
    origin: int
    steps_remaining: int
    sender: int
    sender_weight: float
    sender_degree: int
    attempt: int = 1
    ctx: TraceContext | None = None


@dataclass(frozen=True)
class BounceBack:
    """Rejection bounce: the token returns to the proposing node."""

    walker_id: int
    origin: int
    steps_remaining: int
    attempt: int = 1
    ctx: TraceContext | None = None


@dataclass(frozen=True)
class SampleReturn:
    """A finished walk reporting its final position back to the origin.

    ``at_node`` is the node currently holding the message. Each hop the
    holder re-resolves the shortest path toward the origin against the
    *live* topology (rather than trusting a hop count precomputed when the
    walk ended), so returns survive crashes and rewiring along the way.
    """

    walker_id: int
    origin: int
    sampled_node: int
    at_node: int
    attempt: int = 1
    ctx: TraceContext | None = None


@dataclass(frozen=True)
class WeightAdvertisement:
    """Cached-variant control traffic: a node's new weight, to a neighbor.

    Control traffic is not caused by any single walk, so advertisements
    normally travel with ``ctx=None``; the field exists so the wire
    format is uniform across every message the transport carries.
    """

    source: int
    weight: float
    ctx: TraceContext | None = None
