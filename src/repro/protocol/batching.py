"""Coalesced walk batches: one prefetch serving several queries.

When several continuous queries come due at the same tick, each would
independently launch ``n_q`` sampling walks — yet a uniformly random
tuple serves every query equally well, so one batch of ``max_q n_q``
walks covers them all. :func:`coalesce_demands` folds the per-query
:class:`WalkDemand`\\ s into a :class:`WalkBatchPlan` that knows how many
walks to launch and, for each walk, *which queries consume it* (walk
``i`` feeds every query demanding more than ``i`` samples) — the
attribution carried on shared-walk trace spans so per-query cost
accounting survives the sharing.

These types live at the protocol layer because a batch is a property of
the *walk lifecycle* (how many supervised walks to launch and who reads
their samples), not of any single query's scheduling policy; the session
layer builds plans from its schedulers and hands them down.
:mod:`repro.core.scheduler` re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import QueryError


@dataclass(frozen=True)
class WalkDemand:
    """One query's sample demand at a tick: ``n_samples`` uniform tuples."""

    query: str
    n_samples: int

    def __post_init__(self) -> None:
        if self.n_samples < 0:
            raise QueryError(
                f"demand for {self.query!r} must be >= 0, got {self.n_samples}"
            )


@dataclass(frozen=True)
class WalkBatchPlan:
    """A coalesced walk batch serving several queries' demands at once.

    ``demands`` is deterministic (sorted by query id, zero demands
    dropped). Walks are fungible, so the batch needs only the *maximum*
    demand many walks; walk ``i`` (0-based) is consumed by every query
    whose demand exceeds ``i`` — the first ``n_q`` delivered samples go to
    query ``q``, giving maximal overlap between consumers.
    """

    demands: tuple[WalkDemand, ...]

    @property
    def n_walks(self) -> int:
        """Walks the coalesced batch launches (the maximum demand)."""
        return max((d.n_samples for d in self.demands), default=0)

    @property
    def total_demand(self) -> int:
        """Walks the queries would have launched independently."""
        return sum(d.n_samples for d in self.demands)

    @property
    def walks_saved(self) -> int:
        """Walks avoided by coalescing (``total_demand - n_walks``)."""
        return self.total_demand - self.n_walks

    @property
    def consumers(self) -> tuple[str, ...]:
        """All consuming query ids, in demand order."""
        return tuple(d.query for d in self.demands)

    def consumers_of(self, walk_index: int) -> tuple[str, ...]:
        """Query ids consuming walk ``walk_index`` (0-based)."""
        if not 0 <= walk_index < self.n_walks:
            raise QueryError(
                f"walk index {walk_index} outside batch of {self.n_walks}"
            )
        return tuple(
            d.query for d in self.demands if d.n_samples > walk_index
        )

    def share_of(self, query: str) -> int:
        """How many of the batch's samples the given query consumes."""
        for demand in self.demands:
            if demand.query == query:
                return demand.n_samples
        return 0


def coalesce_demands(demands: Iterable[WalkDemand]) -> WalkBatchPlan:
    """Fold per-query demands into one deterministic batch plan.

    Zero demands are dropped; duplicate query ids are rejected (a query
    states its demand once per tick); ordering is by query id so the same
    demands always produce the same plan and trace attribution.
    """
    kept = sorted(
        (d for d in demands if d.n_samples > 0), key=lambda d: d.query
    )
    queries = [d.query for d in kept]
    if len(set(queries)) != len(queries):
        raise QueryError(f"duplicate demand for a query in {queries}")
    return WalkBatchPlan(demands=tuple(kept))
