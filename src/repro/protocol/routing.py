"""Pluggable first-hop routing for supervised walks.

A walk leaves its origin through exactly one neighbor per attempt, and
that choice is the one place the protocol can act on link-health
knowledge: everything after the first hop runs on remote nodes that only
see local state. A :class:`RoutingPolicy` therefore owns two things —
choosing the first hop, and absorbing the origin-side outcome feedback
(completion / timeout) attributed to that hop:

* :class:`UniformRouting` — the paper's baseline: a uniform draw over
  the origin's live neighbors, no feedback. Byte-compatible with the
  pre-policy runtime (same RNG, same draw).
* :class:`HealthAwareRouting` — consults a
  :class:`~repro.network.health.HealthMonitor` of per-neighbor circuit
  breakers: draws uniformly over the *admitted* neighbors (closed
  breakers plus at most the half-open probes the monitor offers) and
  feeds outcomes back so correlated timeouts trip the offending link's
  breaker.

Mid-walk steps are *not* routed through a policy: remote nodes draw
uniformly over their own neighbors by construction (the Metropolis
proposal), and routing them through an origin-side object would break
the locality discipline documented in :mod:`repro.protocol.runtime`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.network.faults import FaultLog
from repro.network.graph import OverlayGraph
from repro.network.health import HealthMonitor

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.protocol.lifecycle import WalkRecord


class RoutingPolicy(Protocol):
    """First-hop choice plus origin-side outcome feedback."""

    def choose_first_hop(
        self, record: "WalkRecord", neighbors: list[int], now: int
    ) -> int | None:
        """Pick this attempt's first hop out of the origin's neighbors.

        Sets ``record.first_hop`` on success. ``None`` means the policy
        refuses every neighbor right now (e.g. all breakers open) — the
        caller fast-fails the walk instead of burning its timeout.
        """
        ...

    def record_outcome(
        self, origin: int, first_hop: int | None, ok: bool, time: int
    ) -> None:
        """Attribute a walk outcome to the link it first left through.

        ``first_hop`` is ``None`` when the attempt never moved (nothing
        to attribute); policies without feedback ignore the call.
        """
        ...


class UniformRouting:
    """Uniform first-hop draw over live neighbors; no feedback."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose_first_hop(
        self, record: "WalkRecord", neighbors: list[int], now: int
    ) -> int | None:
        target = neighbors[int(self._rng.integers(len(neighbors)))]
        record.first_hop = target
        return target

    def record_outcome(
        self, origin: int, first_hop: int | None, ok: bool, time: int
    ) -> None:
        return None


class HealthAwareRouting:
    """Breaker-aware first-hop choice backed by a health monitor.

    Draws uniformly over the admitted neighbors; when every link is
    suppressed the walk fast-fails instead of burning its full timeout
    on a hop the origin already knows is dead — the caller sees an
    honest shortfall immediately.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        monitor: HealthMonitor,
        rng: np.random.Generator,
        fault_log: FaultLog,
    ) -> None:
        self._graph = graph
        self._monitor = monitor
        self._rng = rng
        self._fault_log = fault_log

    def choose_first_hop(
        self, record: "WalkRecord", neighbors: list[int], now: int
    ) -> int | None:
        admitted, probes = self._monitor.admitted(
            record.origin, neighbors, now
        )
        if not admitted:
            self._fault_log.record(
                now,
                "breaker_suppressed",
                walker_id=record.walker_id,
                node=record.origin,
            )
            return None
        target = admitted[int(self._rng.integers(len(admitted)))]
        record.first_hop = target
        if target in probes:
            self._monitor.start_probe(record.origin, target, now)
        return target

    def record_outcome(
        self, origin: int, first_hop: int | None, ok: bool, time: int
    ) -> None:
        if first_hop is None:
            return
        self._monitor.record_outcome(
            origin,
            first_hop,
            ok=ok,
            time=time,
            n_neighbors=(
                len(self._graph.neighbors(origin))
                if origin in self._graph
                else None
            ),
        )
