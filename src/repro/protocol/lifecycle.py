"""Origin-side walk supervision as an explicit state machine.

Every supervised walk moves through a fixed phase graph::

    PENDING --launch--> IN_FLIGHT --complete--> DONE
                          |    ^
                    timeout    retry
                          v    |
                        RETRYING --fail--> FAILED
                   (IN_FLIGHT --fail--> FAILED too)

:data:`TRANSITIONS` is the whole machine as data — one ``(phase, event)
-> phase`` table — and :func:`next_phase` is its only evaluator, so the
legal interleavings are enumerable by tests instead of being implicit in
callback wiring. An illegal transition raises :class:`AssertionError`:
it can only mean a protocol-internal invariant broke (a stale timer
firing past the guards, a completion after a failure), never bad user
input, and scheduled handlers are statically checked (DGL006) to raise
nothing else.

:class:`WalkLifecycle` owns the per-walk supervision state
(:class:`WalkRecord`), the retry timers (armed through the transport so
the same machine can later run on an asyncio backend), the outcome
bookkeeping, and the walk-span observability hooks. It knows nothing
about the overlay graph or the protocol variants: the walk *executor*
injects tokens through the ``bind``-ed launcher and reports back via
:meth:`complete` / :meth:`fail`, and first-hop health feedback flows
through the :class:`~repro.protocol.routing.RoutingPolicy` seam.

Hot-path observability
----------------------
``note_hop`` / ``note_message`` / ``note_probe`` run once per hop /
message — the innermost loops of the whole system. When the tracer is
recording (a sink retains span events: export, registry), they append
full :class:`~repro.obs.tracer.TraceEvent` records exactly as before.
When tracing is enabled but *nothing consumes per-event records* (live
metrics and windowed analytics read only span attributes), they skip
event construction entirely and keep a per-category message count that
is attached to the walk span as ``messages_by_category`` at walk end —
the quantity :class:`~repro.obs.live.LivePipeline` actually needs, at a
fraction of the cost (see ``benchmarks/bench_obs_overhead.py``).

Causal stamping
---------------
The lifecycle is also the *stamping authority* for causal tracing: every
attempt gets a fresh :class:`~repro.protocol.messages.TraceContext`
(minted through the one sanctioned helper,
:func:`~repro.protocol.messages.mint_context`) that travels inside every
message the attempt sends. Downstream layers forward it unchanged —
statically enforced by digest-lint DGL015 — so hop-level spans recorded
mid-overlay join back to their walk without origin-side inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import SamplingError
from repro.network.faults import FaultLog
from repro.obs.schema import (
    EVENT_CTX_FORWARD,
    EVENT_HOP,
    EVENT_MESSAGE,
    EVENT_PROBE,
    EVENT_RETRY,
    EVENT_TIMEOUT,
    SPAN_HOP_SEGMENT,
    SPAN_WALK,
)
from repro.obs.tracer import NULL_SPAN, Span, TraceEvent, Tracer
from repro.protocol.messages import TraceContext, mint_context
from repro.protocol.transport import Transport
from repro.sim.clock import SimulationClock
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.protocol.routing import RoutingPolicy

# ----------------------------------------------------------------------
# the state machine, as data
# ----------------------------------------------------------------------

PENDING = "pending"
IN_FLIGHT = "in_flight"
RETRYING = "retrying"
DONE = "done"
FAILED = "failed"

#: every phase, in lifecycle order
PHASES = (PENDING, IN_FLIGHT, RETRYING, DONE, FAILED)
#: phases a walk can never leave
TERMINAL_PHASES = (DONE, FAILED)
#: every transition event
EVENTS = ("launch", "timeout", "retry", "complete", "fail")

#: the full machine: ``(phase, event) -> next phase``; any pair not in
#: the table is illegal
TRANSITIONS: dict[tuple[str, str], str] = {
    (PENDING, "launch"): IN_FLIGHT,
    (IN_FLIGHT, "timeout"): RETRYING,
    (RETRYING, "retry"): IN_FLIGHT,
    (IN_FLIGHT, "complete"): DONE,
    (IN_FLIGHT, "fail"): FAILED,
    (RETRYING, "fail"): FAILED,
}


def next_phase(phase: str, event: str) -> str:
    """Evaluate one transition; illegal pairs raise ``AssertionError``.

    An illegal transition is an internal-invariant violation (the guards
    in this module exist to make them unreachable), so it asserts rather
    than raising a domain error — and stays within the exception set
    scheduled handlers are allowed (DGL013).
    """
    target = TRANSITIONS.get((phase, event))
    assert target is not None, (
        f"illegal walk transition: no {event!r} edge from phase {phase!r}"
    )
    return target


# ----------------------------------------------------------------------
# supervision policy and bookkeeping records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Origin-side walk supervision.

    A walk attempt that has not completed ``timeout`` ticks after launch
    is declared lost and relaunched, up to ``max_retries`` retries; each
    successive attempt's timeout is scaled by ``backoff`` (lost walks on a
    congested or jittery overlay need progressively more slack). The
    origin needs no global knowledge for this — it supervises only its
    own outstanding requests.
    """

    timeout: int
    max_retries: int = 3
    backoff: float = 1.5

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise SamplingError(f"timeout must be >= 1, got {self.timeout}")
        if self.max_retries < 0:
            raise SamplingError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise SamplingError(f"backoff must be >= 1.0, got {self.backoff}")

    def timeout_for(self, attempt: int) -> int:
        """Timeout (ticks) for the given 1-based attempt number."""
        return max(1, int(round(self.timeout * self.backoff ** (attempt - 1))))


@dataclass(frozen=True)
class WalkStats:
    """Supervision outcome summary across all walks of a sampler."""

    launched: int
    completed: int
    failed: int
    attempts: int
    timeouts: int
    retried_completions: int  # walks that completed on attempt >= 2

    @property
    def completion_rate(self) -> float:
        """Fraction of launched walks that eventually completed."""
        return self.completed / self.launched if self.launched else 1.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of walks that timed out at least once but completed."""
        troubled = self.retried_completions + self.failed
        return self.retried_completions / troubled if troubled else 1.0


@dataclass
class WalkOutcome:
    """The delivered result of one completed walk."""

    walker_id: int
    sampled_node: int
    completed_at: int
    attempts: int = 1


@dataclass
class WalkRecord:
    """Origin-side supervision record for one walk."""

    walker_id: int
    origin: int
    walk_length: int
    phase: str = PENDING
    attempt: int = 0
    timeouts: int = 0
    #: the neighbor this attempt first left the origin through, for
    #: health attribution (reset per attempt; None until the token moves)
    first_hop: int | None = None
    #: causal context stamped for the *current* attempt; every message
    #: this attempt sends carries it (re-minted per attempt, so stale
    #: deliveries assemble as orphans instead of joining the live chain)
    ctx: TraceContext | None = None
    timeout_event: Event | None = field(default=None, repr=False)
    span: Span = field(default_factory=lambda: NULL_SPAN, repr=False)
    #: per-category message counts, kept only on the non-recording trace
    #: fast path (attached as the span's ``messages_by_category`` at end)
    msg_counts: dict[str, int] | None = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.phase == DONE

    @property
    def failed(self) -> bool:
        return self.phase == FAILED

    @property
    def finished(self) -> bool:
        return self.phase in TERMINAL_PHASES


#: a launcher injects the next attempt's token into the walk executor
Launcher = Callable[[WalkRecord, int], None]


class WalkLifecycle:
    """Drives every walk through the transition table.

    Construction wires the seams: timers and time through ``transport``,
    first-hop feedback through ``routing``, spans through ``tracer``.
    The token-injection side is bound after construction (:meth:`bind`)
    because the executor needs the lifecycle first — the one deliberate
    cycle in the stack, tied at the orchestrator.
    """

    def __init__(
        self,
        transport: Transport,
        tracer: Tracer,
        fault_log: FaultLog,
        clock: SimulationClock,
        routing: "RoutingPolicy",
        retry: RetryPolicy | None = None,
    ) -> None:
        self._transport = transport
        self._tracer = tracer
        #: ``enabled`` and the clock are cached as plain attributes — the
        #: per-message hooks read them and property dispatch is
        #: measurable at that call rate
        self._traced = tracer.enabled
        self._clock = clock
        self.fault_log = fault_log
        self._routing = routing
        self._retry = retry
        self.outcomes: dict[int, WalkOutcome] = {}
        self._records: dict[int, WalkRecord] = {}
        self._next_walker = 0
        self._inject: Launcher | None = None

    def bind(self, inject: Launcher) -> None:
        """Wire the token injector (the walk executor's entry point)."""
        self._inject = inject

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------

    def _transition(self, record: WalkRecord, event: str) -> None:
        record.phase = next_phase(record.phase, event)

    def launch(self, origin: int, walk_length: int) -> int:
        """Create and launch one supervised walk; returns its walker id."""
        walker_id = self._next_walker
        self._next_walker += 1
        record = WalkRecord(
            walker_id=walker_id, origin=origin, walk_length=walk_length
        )
        record.span = self._tracer.span(
            SPAN_WALK,
            time=self._transport.now,
            walker_id=walker_id,
            origin=origin,
            walk_length=walk_length,
        )
        self._records[walker_id] = record
        self._transition(record, "launch")
        self._launch_attempt(record)
        return walker_id

    def _launch_attempt(self, record: WalkRecord) -> None:
        """Begin the next attempt of a walk: arm the timeout, inject token."""
        record.attempt += 1
        record.first_hop = None
        attempt = record.attempt
        # the stamping authority: a fresh context per attempt, rooted at
        # the walk span (DGL015 keeps minting confined to this module)
        ctx = mint_context(record.span.span_id, record.span.span_id, attempt)
        record.ctx = ctx
        if attempt > 1:
            record.span.add_event(
                self._transport.now,
                EVENT_RETRY,
                attempt=attempt,
                ctx_trace=ctx.trace_id,
                ctx_span=ctx.span_id,
                ctx_attempt=ctx.attempt,
            )
        if self._retry is not None:
            record.timeout_event = self._transport.schedule(
                self._retry.timeout_for(attempt),
                lambda time: self._handle_timeout(record, attempt),
            )

        def begin(time: int) -> None:
            if record.finished or attempt != record.attempt:
                return
            assert self._inject is not None, "lifecycle launched before bind()"
            self._inject(record, attempt)

        self._transport.schedule(0, begin)

    def _handle_timeout(self, record: WalkRecord, attempt: int) -> None:
        """Origin-side deadline: declare the attempt lost, retry or fail."""
        if record.finished or attempt != record.attempt:
            return  # superseded or already resolved; stale timer
        self._transition(record, "timeout")
        record.timeouts += 1
        record.span.add_event(
            self._transport.now, EVENT_TIMEOUT, attempt=attempt
        )
        self.fault_log.record(
            self._transport.now,
            "walk_timeout",
            walker_id=record.walker_id,
            node=record.origin,
            detail=f"attempt {attempt}",
        )
        # the attempt died somewhere past its first hop: the routing
        # policy may indict the link it left through (correlated
        # timeouts trip that link's breaker under health-aware routing)
        self._routing.record_outcome(
            record.origin, record.first_hop, ok=False, time=self._transport.now
        )
        if self._retry is None or record.attempt > self._retry.max_retries:
            self.fail(record, "retries_exhausted")
            return
        self._transition(record, "retry")
        self._launch_attempt(record)

    def fail(self, record: WalkRecord, reason: str) -> None:
        """Terminal failure: record it; the walk yields no sample."""
        self._transition(record, "fail")
        if record.timeout_event is not None:
            record.timeout_event.cancel()
            record.timeout_event = None
        self.fault_log.record(
            self._transport.now,
            "walk_failed",
            walker_id=record.walker_id,
            detail=reason,
        )
        self._attach_message_counts(record)
        self._tracer.end(
            record.span,
            time=self._transport.now,
            outcome="failed",
            attempts=record.attempt,
            reason=reason,
        )

    def complete(self, record: WalkRecord, sampled_node: int) -> None:
        """A sample made it back to the origin; release the supervisor."""
        self._transition(record, "complete")
        self._routing.record_outcome(
            record.origin, record.first_hop, ok=True, time=self._transport.now
        )
        if record.timeout_event is not None:
            record.timeout_event.cancel()
            record.timeout_event = None
        self.outcomes[record.walker_id] = WalkOutcome(
            walker_id=record.walker_id,
            sampled_node=sampled_node,
            completed_at=self._transport.now,
            attempts=record.attempt,
        )
        self._attach_message_counts(record)
        self._tracer.end(
            record.span,
            time=self._transport.now,
            outcome="completed",
            attempts=record.attempt,
            sampled_node=sampled_node,
        )

    # ------------------------------------------------------------------
    # lookups and driving
    # ------------------------------------------------------------------

    def record(self, walker_id: int) -> WalkRecord:
        """The supervision record of a launched walk."""
        return self._records[walker_id]

    def live_record(self, walker_id: int, attempt: int) -> WalkRecord | None:
        """The walk's record iff this attempt is still the live one."""
        record = self._records.get(walker_id)
        if record is None or record.finished or attempt != record.attempt:
            return None
        return record

    def drive(self, walker_ids: list[int], deadline: int | None) -> None:
        """Run the transport dry (or to ``deadline``), failing stragglers."""
        if deadline is None:
            self._transport.run_all()
            return
        self._transport.run_until(self._transport.now + deadline)
        for walker_id in walker_ids:
            record = self._records[walker_id]
            if not record.finished:
                self.fail(record, "deadline_expired")

    @property
    def stats(self) -> WalkStats:
        """Aggregate supervision outcomes across all launched walks."""
        records = self._records.values()
        completed = sum(1 for r in records if r.done)
        return WalkStats(
            launched=len(self._records),
            completed=completed,
            failed=sum(1 for r in records if r.failed),
            attempts=sum(r.attempt for r in records),
            timeouts=sum(r.timeouts for r in records),
            retried_completions=sum(
                1 for r in records if r.done and r.attempt > 1
            ),
        )

    # ------------------------------------------------------------------
    # per-hop / per-message observability hooks (the hot path)
    # ------------------------------------------------------------------

    def note_hop(self, record: WalkRecord, node: int, steps_remaining: int) -> None:
        """One walker hop; recorded only when a sink keeps span events."""
        if self._traced and self._tracer.is_recording:
            ctx = record.ctx
            assert ctx is not None, "live record without a minted context"
            # appended directly: this runs once per hop
            record.span.events.append(
                TraceEvent(
                    self._clock.now,
                    EVENT_HOP,
                    {
                        "node": node,
                        "steps_remaining": steps_remaining,
                        "ctx_trace": ctx.trace_id,
                        "ctx_span": ctx.span_id,
                        "ctx_attempt": ctx.attempt,
                    },
                )
            )

    def note_message(
        self, walker_id: int, attempt: int, kind: str, to_node: int
    ) -> None:
        """One protocol message, bucketed exactly like the ledger.

        Mirrors the executor's ledger bucketing (retry traffic under
        ``retry``), so trace attribution and the ledger cannot disagree.
        On the non-recording path only the per-category count survives.
        """
        if not self._traced:
            return
        record = self._records.get(walker_id)
        if record is None:
            return
        category = "retry" if attempt > 1 else kind
        if self._tracer.is_recording:
            # appended directly: this runs once per message
            record.span.events.append(
                TraceEvent(
                    self._clock.now,
                    EVENT_MESSAGE,
                    {"category": category, "to_node": to_node},
                )
            )
        else:
            counts = record.msg_counts
            if counts is None:
                counts = record.msg_counts = {}
            counts[category] = counts.get(category, 0) + 1

    def note_probe(self, walker_id: int, node: int, target: int) -> None:
        """One cached-weight probe round-trip (2 control messages)."""
        if not self._traced:
            return
        record = self._records.get(walker_id)
        if record is None:
            return
        if self._tracer.is_recording:
            record.span.add_event(
                self._transport.now,
                EVENT_PROBE,
                node=node,
                target=target,
                messages=2,
            )
        else:
            counts = record.msg_counts
            if counts is None:
                counts = record.msg_counts = {}
            counts["probe"] = counts.get("probe", 0) + 2

    def begin_hop_segment(
        self,
        walker_id: int,
        kind: str,
        from_node: int,
        to_node: int,
        ctx: TraceContext | None,
    ) -> Span | None:
        """Open one message-transit span, joined to its walk by ``ctx``.

        Returns ``None`` on the non-recording path — transit spans exist
        only for sinks that retain them (export, registry), so the hot
        path pays one boolean check and nothing else. The span is ended
        at *delivery* (:meth:`end_hop_segment`); a message the transport
        drops leaves its segment forever open, and open spans are never
        exported — the causal chain simply has a gap where the overlay
        swallowed the message, which is exactly what a real network
        would show.
        """
        if ctx is None or not (self._traced and self._tracer.is_recording):
            return None
        record = self._records.get(walker_id)
        return self._tracer.span(
            SPAN_HOP_SEGMENT,
            time=self._clock.now,
            parent=record.span if record is not None else None,
            walker_id=walker_id,
            category=kind,
            from_node=from_node,
            to_node=to_node,
            ctx_trace=ctx.trace_id,
            ctx_span=ctx.span_id,
            ctx_attempt=ctx.attempt,
        )

    def end_hop_segment(
        self, segment: Span | None, walker_id: int, attempt: int
    ) -> None:
        """Close a transit span at delivery time.

        ``orphaned`` marks deliveries of attempts the supervisor has
        already superseded or resolved — they really happened on the
        overlay (and are billed), but no live chain will claim them.
        """
        if segment is None:
            return
        self._tracer.end(
            segment,
            time=self._clock.now,
            delivered=True,
            orphaned=self.live_record(walker_id, attempt) is None,
        )

    def note_ctx_forward(
        self,
        walker_id: int,
        ctx: TraceContext | None,
        from_node: int,
        to_node: int,
    ) -> None:
        """A handler forwarded a message with its context unchanged."""
        if ctx is None or not (self._traced and self._tracer.is_recording):
            return
        record = self._records.get(walker_id)
        if record is None:
            return
        record.span.events.append(
            TraceEvent(
                self._clock.now,
                EVENT_CTX_FORWARD,
                {
                    "ctx_trace": ctx.trace_id,
                    "ctx_span": ctx.span_id,
                    "ctx_attempt": ctx.attempt,
                    "from_node": from_node,
                    "to_node": to_node,
                },
            )
        )

    def _attach_message_counts(self, record: WalkRecord) -> None:
        """Surface fast-path message counts on the span before it ends."""
        if record.msg_counts:
            record.span.set(messages_by_category=record.msg_counts)
