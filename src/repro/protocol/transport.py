"""The delivery substrate of the protocol stack.

A :class:`Transport` owns everything between "this node sends a message"
and "that node's handler runs": hop latency, latency jitter, message
loss, correlated partition cuts, and crashed receivers. The layers above
it (:mod:`repro.protocol.lifecycle`, :mod:`repro.protocol.walkers`)
never touch the fault model directly — they hand the transport a
``deliver`` thunk and the transport decides whether, and when, it runs.

The interface is deliberately asyncio-shaped: ``send`` is fire-and-
forget, ``schedule`` returns a cancellable handle (``asyncio.call_later``
semantics), and ``run_all``/``run_until`` are "drain the event loop"
operations. A future asyncio backend implements the same five methods
over a real event loop; :class:`SimTransport` implements them over the
:class:`~repro.sim.engine.SimulationEngine` so simulated runs stay
deterministic and seed-exact.

Every undeliverable message becomes a recorded
:class:`~repro.network.faults.FaultEvent` — never an exception — because
delivery failures are *data* in an unreliable overlay, not errors:

* ``partition_drop`` — the edge crosses an open partition cut (or a
  flapped link); the sender paid for a message the cut swallows whole.
* ``message_loss`` — the link's independent per-hop loss draw fired.
* ``crashed_receiver`` — the receiver left the overlay while the
  message was in flight.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.network.faults import FaultLog, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.partitions import PartitionPlan
from repro.sim.engine import Event, SimulationEngine

#: message kinds a transport carries (ledger categories are derived from
#: these by the orchestrator, with retry-attempt traffic split out)
KIND_WALK = "walk"
KIND_RETURN = "return"


class Transport(Protocol):
    """Unreliable point-to-point delivery plus timer scheduling.

    Implementations own the failure model; callers own the cost model
    (messages are tallied at the call site *before* ``send`` because a
    lost message was still sent).
    """

    @property
    def now(self) -> int:
        """Current transport time in ticks."""
        ...

    def send(
        self,
        kind: str,
        from_node: int,
        to_node: int,
        walker_id: int,
        deliver: Callable[[], None],
    ) -> None:
        """Deliver ``deliver`` at ``to_node`` after the hop latency.

        May drop the message (loss, partition, crashed receiver); every
        drop is recorded on the fault log, never raised.
        """
        ...

    def schedule(self, delay: int, action: Callable[[int], None]) -> Event:
        """Run ``action(time)`` after ``delay`` ticks; cancellable."""
        ...

    def run_all(self) -> None:
        """Drain the event queue (drive until quiescent)."""
        ...

    def run_until(self, deadline: int) -> None:
        """Drive the event queue up to absolute time ``deadline``."""
        ...


class SimTransport:
    """:class:`Transport` over the discrete-event simulation engine.

    With ``faults`` and ``partitions`` left at ``None`` the transport is
    a perfectly reliable network with fixed ``hop_latency`` — and
    bit-identical traffic to the pre-failure-model implementation. The
    hot-path flags (``_lossy``, ``_jittery``) are precomputed from the
    (frozen) fault config so a noop plan costs no per-message draws.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        simulation: SimulationEngine,
        hop_latency: int,
        fault_log: FaultLog,
        faults: FaultPlan | None = None,
        partitions: PartitionPlan | None = None,
    ) -> None:
        self._graph = graph
        self._simulation = simulation
        self._hop_latency = hop_latency
        self.fault_log = fault_log
        self._faults = faults
        self._partitions = partitions
        self._lossy = faults is not None and faults.config.message_loss > 0.0
        self._jittery = faults is not None and faults.config.latency_jitter > 0

    @property
    def now(self) -> int:
        return self._simulation.now

    def send(
        self,
        kind: str,
        from_node: int,
        to_node: int,
        walker_id: int,
        deliver: Callable[[], None],
    ) -> None:
        """One unreliable delivery; every failure is a fault event.

        Delivery runs ``deliver`` after the hop latency (plus jitter
        under a fault plan) unless an open partition (or flapped link)
        cuts the ``from_node -> to_node`` edge, the link drops it, or
        the receiver has crashed by then.
        """
        partitions = self._partitions
        if (
            partitions is not None
            and partitions.active
            and partitions.blocked(from_node, to_node)
        ):
            # correlated drop: the sender paid for a message the cut
            # swallows whole — exactly how a partitioned overlay looks
            # from the inside (no error, just silence)
            self.fault_log.record(
                self._simulation.now,
                "partition_drop",
                walker_id=walker_id,
                node=to_node,
                detail=f"({from_node}, {to_node})",
            )
            return
        faults = self._faults
        if self._lossy and faults is not None and faults.message_lost():
            self.fault_log.record(
                self._simulation.now,
                "message_loss",
                walker_id=walker_id,
                node=to_node,
            )
            return
        delay = (
            faults.delivery_delay(self._hop_latency)
            if self._jittery and faults is not None
            else self._hop_latency
        )

        def handle_delivery(time: int) -> None:
            if to_node not in self._graph:
                self.fault_log.record(
                    time, "crashed_receiver", walker_id=walker_id, node=to_node
                )
                return
            deliver()

        self._simulation.schedule_in(delay, handle_delivery)

    def schedule(self, delay: int, action: Callable[[int], None]) -> Event:
        return self._simulation.schedule_in(delay, action)

    def run_all(self) -> None:
        self._simulation.run_all()

    def run_until(self, deadline: int) -> None:
        self._simulation.run_until(deadline)
