"""The protocol orchestrator: wiring lifecycle × routing × transport.

Executes Metropolis sampling walks as scheduled message deliveries on a
:class:`~repro.sim.engine.SimulationEngine`. This module is deliberately
thin: it validates configuration, wires the layered stack, and exposes
the run-level API. The layers do the work:

* :mod:`repro.protocol.transport` — unreliable delivery: hop latency,
  jitter, message loss, partitions, crashed receivers
  (:class:`~repro.protocol.transport.SimTransport` over the simulator);
* :mod:`repro.protocol.lifecycle` — origin-side supervision as an
  explicit state machine (PENDING → IN_FLIGHT → RETRYING → DONE/FAILED)
  owning timeouts, backoff, retries, and the walk-span hooks;
* :mod:`repro.protocol.routing` — pluggable first-hop choice
  (:class:`~repro.protocol.routing.UniformRouting`, or breaker-aware
  :class:`~repro.protocol.routing.HealthAwareRouting` when a
  :class:`~repro.network.health.HealthConfig` is supplied);
* :mod:`repro.protocol.walkers` — the per-node handlers (both protocol
  variants, acceptance, hop-by-hop return routing, ledger accounting);
* :mod:`repro.protocol.advertisements` — cached-variant weight caches
  and their maintenance traffic;
* :mod:`repro.protocol.batching` — coalesced multi-query walk batches
  (:meth:`ProtocolSampler.run_walk_batch` is lifecycle-supervised like
  any other walk, plus per-consumer trace attribution).

The overlay is *unreliable*: an optional :class:`FaultPlan` injects
per-hop message loss, delivery-latency jitter, and (via
:class:`~repro.network.faults.CrashProcess`, scheduled by the caller)
mid-walk node crashes. The stack degrades instead of crashing — every
failure becomes a recorded :class:`~repro.network.faults.FaultEvent`,
walks are retried under the :class:`RetryPolicy`, and all messages land
in a :class:`MessageLedger` with the same categories the abstract cost
model uses, so costs stay directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError, TopologyError
from repro.network.churn import ChurnEvent
from repro.network.faults import FaultLog, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.health import HealthConfig, HealthMonitor
from repro.network.messaging import MessageLedger
from repro.network.partitions import PartitionPlan
from repro.obs.schema import SPAN_SHARED_WALK_BATCH
from repro.obs.tracer import NULL_TRACER, Tracer, bridge_fault_log
from repro.protocol.advertisements import AdvertisementCache
from repro.protocol.batching import WalkBatchPlan
from repro.protocol.lifecycle import (
    RetryPolicy,
    WalkLifecycle,
    WalkOutcome,
    WalkStats,
)
from repro.protocol.routing import (
    HealthAwareRouting,
    RoutingPolicy,
    UniformRouting,
)
from repro.protocol.transport import SimTransport
from repro.protocol.walkers import WalkExecutor
from repro.sampling.weights import WeightFunction
from repro.sim.engine import SimulationEngine

__all__ = [
    "ProtocolConfig",
    "ProtocolSampler",
    "RetryPolicy",
    "VARIANTS",
    "WalkOutcome",
    "WalkStats",
]

VARIANTS = ("bounce", "cached")


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol variant and timing.

    ``hop_latency`` is the delivery delay of one overlay hop in simulator
    ticks; ``laziness`` is the Metropolis self-loop mass (lazy steps burn
    a tick but no message).
    """

    variant: str = "bounce"
    hop_latency: int = 1
    laziness: float = 0.5

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise SamplingError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        if self.hop_latency < 1:
            raise SamplingError(
                f"hop_latency must be >= 1, got {self.hop_latency}"
            )
        if not 0.0 <= self.laziness < 1.0:
            raise SamplingError(
                f"laziness must be in [0, 1), got {self.laziness}"
            )


class ProtocolSampler:
    """Distributed Metropolis sampling as a real message protocol.

    With ``faults`` and ``retry`` left at ``None`` the runtime behaves as
    a perfectly reliable network: no losses, no jitter, no timeouts — and
    bit-identical traffic to the pre-failure-model implementation.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        weight: WeightFunction,
        simulation: SimulationEngine,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        config: ProtocolConfig | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        partitions: PartitionPlan | None = None,
        health: HealthConfig | None = None,
    ) -> None:
        if not graph.is_connected():
            raise TopologyError("the protocol needs a connected overlay")
        self._graph = graph
        self._config = config if config is not None else ProtocolConfig()
        self.ledger = ledger if ledger is not None else MessageLedger()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: audit trail of everything that went wrong (shared with the
        #: fault plan's log when one is injected, so crash/loss events and
        #: protocol-observed failures interleave in one timeline)
        self.fault_log: FaultLog = faults.log if faults is not None else FaultLog()
        bridge_fault_log(self.fault_log, self._tracer)
        self._transport = SimTransport(
            graph,
            simulation,
            self._config.hop_latency,
            self.fault_log,
            faults=faults,
            partitions=partitions,
        )
        #: origin-side link health; None keeps first-hop choice (and the
        #: RNG draw sequence) bit-identical to the health-free runtime
        self.health: HealthMonitor | None = (
            HealthMonitor(health, tracer=self._tracer, fault_log=self.fault_log)
            if health is not None
            else None
        )
        routing: RoutingPolicy = (
            HealthAwareRouting(graph, self.health, rng, self.fault_log)
            if self.health is not None
            else UniformRouting(rng)
        )
        self._lifecycle = WalkLifecycle(
            transport=self._transport,
            tracer=self._tracer,
            fault_log=self.fault_log,
            clock=simulation.clock,
            routing=routing,
            retry=retry,
        )
        self._ads: AdvertisementCache | None = (
            AdvertisementCache(
                graph, weight, self.ledger, self._tracer, self._transport
            )
            if self._config.variant == "cached"
            else None
        )
        self._executor = WalkExecutor(
            graph=graph,
            weight=weight,
            rng=rng,
            variant=self._config.variant,
            hop_latency=self._config.hop_latency,
            laziness=self._config.laziness,
            transport=self._transport,
            lifecycle=self._lifecycle,
            routing=routing,
            ledger=self.ledger,
            fault_log=self.fault_log,
            advertisements=self._ads,
        )
        self._lifecycle.bind(self._executor.inject)
        if self._ads is not None:
            self._ads.flood()

    # ------------------------------------------------------------------
    # cached-variant weight advertisement
    # ------------------------------------------------------------------

    @property
    def advertisements_sent(self) -> int:
        return self._ads.sent if self._ads is not None else 0

    def notify_weight_change(self, node: int) -> None:
        """Cached variant: ``node``'s weight changed, re-advertise it.

        Call this whenever the weight function's value for a node changes
        (e.g. content size after inserts/deletes). The bounce variant
        needs no such calls — its correctness never depends on caches.
        """
        if self._ads is not None:
            self._ads.notify_weight_change(node)

    def handle_topology_change(
        self,
        joined: tuple[int, ...] | list[int] | set[int] = (),
        left: tuple[int, ...] | list[int] | set[int] = (),
    ) -> None:
        """Refresh cached-variant advertisements after overlay changes.

        The bounce variant is cache-free and ignores this.
        """
        if self._ads is not None:
            self._ads.handle_topology_change(joined=joined, left=left)

    def handle_churn(self, event: ChurnEvent) -> None:
        """Convenience: :meth:`handle_topology_change` from a churn event."""
        self.handle_topology_change(joined=event.joined, left=event.left)

    # ------------------------------------------------------------------
    # walk initiation and supervision
    # ------------------------------------------------------------------

    @property
    def bounces(self) -> int:
        """Rejected optimistic forwards bounced back (bounce variant)."""
        return self._executor.bounces

    def start_walk(self, origin: int, walk_length: int) -> int:
        """Launch one sampling walk; returns its walker id."""
        if origin not in self._graph:
            raise SamplingError(f"origin {origin} is not in the overlay")
        if walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
        return self._lifecycle.launch(origin, walk_length)

    def run_walks(
        self,
        origin: int,
        n: int,
        walk_length: int,
        allow_partial: bool = False,
        deadline: int | None = None,
    ) -> list[int]:
        """Launch ``n`` walks, drive the simulator, return sampled nodes.

        Runs the event queue dry (or up to ``deadline`` ticks past the
        current time when given). With ``allow_partial=False`` every walk
        must produce a sample or :class:`SamplingError` is raised; with
        ``allow_partial=True`` the achieved samples are returned and the
        shortfall is visible in :attr:`walk_stats` and ``fault_log`` —
        the caller degrades its precision honestly instead of aborting.
        """
        walker_ids = [self.start_walk(origin, walk_length) for _ in range(n)]
        self._lifecycle.drive(walker_ids, deadline)
        outcomes = self._lifecycle.outcomes
        missing = [w for w in walker_ids if w not in outcomes]
        if missing and not allow_partial:
            raise SamplingError(
                f"{len(missing)} of {n} walks never completed "
                f"(first missing: {missing[:5]}; faults: "
                f"{self.fault_log.summary()}); pass allow_partial=True to "
                f"degrade instead"
            )
        return [
            outcomes[w].sampled_node for w in walker_ids if w in outcomes
        ]

    def run_walk_batch(
        self,
        origin: int,
        plan: WalkBatchPlan,
        walk_length: int,
        allow_partial: bool = False,
        deadline: int | None = None,
    ) -> dict[str, list[int]]:
        """Run one coalesced walk batch and slice it per consuming query.

        Launches ``plan.n_walks`` supervised walks (the maximum demand
        across the plan's queries — retries, faults, and ledger accounting
        identical to :meth:`run_walks`) and returns, for each query, the
        first ``n_q`` delivered sample nodes, so consumers overlap
        maximally and the batch is paid for once. Every walk's trace span
        carries the ids of the queries consuming it (``consumers``), which
        is how per-query attribution survives the sharing.
        """
        batch_span = self._tracer.span(
            SPAN_SHARED_WALK_BATCH,
            time=self._transport.now,
            n_requested=plan.n_walks,
            n_pooled=0,
            consumers=",".join(plan.consumers),
            n_consumers=len(plan.demands),
            origin=origin,
        )
        walker_ids = []
        for index in range(plan.n_walks):
            walker_id = self.start_walk(origin, walk_length)
            consumers = plan.consumers_of(index)
            self._lifecycle.record(walker_id).span.set(
                consumers=",".join(consumers), n_consumers=len(consumers)
            )
            walker_ids.append(walker_id)
        self._lifecycle.drive(walker_ids, deadline)
        outcomes = self._lifecycle.outcomes
        delivered = [
            outcomes[w].sampled_node for w in walker_ids if w in outcomes
        ]
        missing = plan.n_walks - len(delivered)
        if missing and not allow_partial:
            raise SamplingError(
                f"{missing} of {plan.n_walks} batched walks never completed "
                f"(faults: {self.fault_log.summary()}); pass "
                f"allow_partial=True to degrade instead"
            )
        self._tracer.end(
            batch_span,
            time=self._transport.now,
            n_drawn=len(delivered),
        )
        return {
            demand.query: delivered[: demand.n_samples]
            for demand in plan.demands
        }

    def outcome(self, walker_id: int) -> WalkOutcome | None:
        return self._lifecycle.outcomes.get(walker_id)

    @property
    def walk_stats(self) -> WalkStats:
        """Aggregate supervision outcomes across all launched walks."""
        return self._lifecycle.stats
