"""The protocol runtime: node handlers + message delivery.

Executes Metropolis sampling walks as scheduled message deliveries on a
:class:`~repro.sim.engine.SimulationEngine`. Each delivery runs the
receiving node's handler, which may send further messages; a walk
terminates by routing a :class:`SampleReturn` hop-by-hop back to its
origin. All messages are tallied on a :class:`MessageLedger` with the
same categories the abstract model uses, so costs are directly
comparable.

Failure model
-------------
The overlay is *unreliable*: an optional :class:`FaultPlan` injects
per-hop message loss, delivery-latency jitter, and (via
:class:`~repro.network.faults.CrashProcess`, scheduled by the caller)
mid-walk node crashes. The runtime degrades instead of crashing:

* handlers never let an exception escape a scheduled delivery — every
  failure (lost message, crashed receiver, broken return path, isolated
  node) becomes a recorded :class:`~repro.network.faults.FaultEvent` on
  ``fault_log`` (digest-lint DGL006 enforces this statically);
* an origin-side supervisor arms a timeout per walk attempt
  (:class:`RetryPolicy`); attempts that die are retried with backoff, and
  all retry traffic lands in the ledger's ``retries`` category so
  first-attempt cost figures stay comparable;
* return routing re-resolves the shortest path toward the origin at every
  hop against the live topology, so a crash along the precomputed path
  reroutes instead of raising.

Locality discipline: handlers may read only (a) the receiving node's own
weight/degree/neighbor list and (b) the message contents. The one
exception is shortest-path return routing, which uses origin-rooted hop
distances as a stand-in for the routing state a real deployment would
piggyback on the walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.errors import SamplingError, TopologyError
from repro.network.churn import ChurnEvent
from repro.network.faults import FaultLog, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.health import HealthConfig, HealthMonitor
from repro.network.partitions import PartitionPlan
from repro.network.messaging import MessageLedger
from repro.obs.schema import (
    EVENT_ADVERTISEMENT,
    EVENT_HOP,
    EVENT_MESSAGE,
    EVENT_PROBE,
    EVENT_RETRY,
    EVENT_TIMEOUT,
    SPAN_SHARED_WALK_BATCH,
    SPAN_WALK,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    TraceEvent,
    Tracer,
    bridge_fault_log,
)
from repro.protocol.messages import SampleReturn, WalkToken
from repro.sampling.weights import WeightFunction
from repro.sim.engine import Event, SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - layering: protocol stays core-free
    from repro.core.scheduler import WalkBatchPlan

VARIANTS = ("bounce", "cached")


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol variant and timing.

    ``hop_latency`` is the delivery delay of one overlay hop in simulator
    ticks; ``laziness`` is the Metropolis self-loop mass (lazy steps burn
    a tick but no message).
    """

    variant: str = "bounce"
    hop_latency: int = 1
    laziness: float = 0.5

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise SamplingError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        if self.hop_latency < 1:
            raise SamplingError(
                f"hop_latency must be >= 1, got {self.hop_latency}"
            )
        if not 0.0 <= self.laziness < 1.0:
            raise SamplingError(
                f"laziness must be in [0, 1), got {self.laziness}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Origin-side walk supervision.

    A walk attempt that has not completed ``timeout`` ticks after launch
    is declared lost and relaunched, up to ``max_retries`` retries; each
    successive attempt's timeout is scaled by ``backoff`` (lost walks on a
    congested or jittery overlay need progressively more slack). The
    origin needs no global knowledge for this — it supervises only its
    own outstanding requests.
    """

    timeout: int
    max_retries: int = 3
    backoff: float = 1.5

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise SamplingError(f"timeout must be >= 1, got {self.timeout}")
        if self.max_retries < 0:
            raise SamplingError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise SamplingError(f"backoff must be >= 1.0, got {self.backoff}")

    def timeout_for(self, attempt: int) -> int:
        """Timeout (ticks) for the given 1-based attempt number."""
        return max(1, int(round(self.timeout * self.backoff ** (attempt - 1))))


@dataclass(frozen=True)
class WalkStats:
    """Supervision outcome summary across all walks of a sampler."""

    launched: int
    completed: int
    failed: int
    attempts: int
    timeouts: int
    retried_completions: int  # walks that completed on attempt >= 2

    @property
    def completion_rate(self) -> float:
        """Fraction of launched walks that eventually completed."""
        return self.completed / self.launched if self.launched else 1.0

    @property
    def recovery_rate(self) -> float:
        """Fraction of walks that timed out at least once but completed."""
        troubled = self.retried_completions + self.failed
        return self.retried_completions / troubled if troubled else 1.0


@dataclass
class _WalkOutcome:
    walker_id: int
    sampled_node: int
    completed_at: int
    attempts: int = 1


@dataclass
class _WalkState:
    """Origin-side supervision record for one walk."""

    walker_id: int
    origin: int
    walk_length: int
    attempt: int = 0
    timeouts: int = 0
    done: bool = False
    failed: bool = False
    #: the neighbor this attempt first left the origin through, for
    #: health attribution (reset per attempt; None until the token moves)
    first_hop: int | None = None
    timeout_event: Event | None = field(default=None, repr=False)
    span: Span = field(default_factory=lambda: NULL_SPAN, repr=False)

    @property
    def finished(self) -> bool:
        return self.done or self.failed


class ProtocolSampler:
    """Distributed Metropolis sampling as a real message protocol.

    With ``faults`` and ``retry`` left at ``None`` the runtime behaves as
    a perfectly reliable network: no losses, no jitter, no timeouts — and
    bit-identical traffic to the pre-failure-model implementation.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        weight: WeightFunction,
        simulation: SimulationEngine,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        config: ProtocolConfig | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
        partitions: PartitionPlan | None = None,
        health: HealthConfig | None = None,
    ) -> None:
        if not graph.is_connected():
            raise TopologyError("the protocol needs a connected overlay")
        self._graph = graph
        self._weight = weight
        self._simulation = simulation
        self._rng = rng
        self.ledger = ledger if ledger is not None else MessageLedger()
        self._config = config if config is not None else ProtocolConfig()
        self._faults = faults
        #: hot-path flags precomputed from the (frozen) fault config so a
        #: noop plan costs no per-message draw calls
        self._lossy = faults is not None and faults.config.message_loss > 0.0
        self._jittery = faults is not None and faults.config.latency_jitter > 0
        self._retry = retry
        #: walk/message telemetry; the default no-op tracer keeps the
        #: per-hop handlers allocation-free when tracing is disabled.
        #: ``enabled`` and the clock are cached as plain attributes — the
        #: per-message handlers read them and property dispatch is
        #: measurable at that call rate
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._traced = self._tracer.enabled
        self._clock = simulation.clock
        #: audit trail of everything that went wrong (shared with the
        #: fault plan's log when one is injected, so crash/loss events and
        #: protocol-observed failures interleave in one timeline)
        self.fault_log: FaultLog = faults.log if faults is not None else FaultLog()
        bridge_fault_log(self.fault_log, self._tracer)
        #: correlated failures: deliveries crossing an open partition (or
        #: a flapped link) are dropped at the same point loss is injected
        self._partitions = partitions
        #: origin-side link health; None keeps first-hop choice (and the
        #: RNG draw sequence) bit-identical to the health-free runtime
        self.health: HealthMonitor | None = (
            HealthMonitor(health, tracer=self._tracer, fault_log=self.fault_log)
            if health is not None
            else None
        )
        self._outcomes: dict[int, _WalkOutcome] = {}
        self._states: dict[int, _WalkState] = {}
        self._next_walker = 0
        self._cached_weights: dict[int, dict[int, float]] = {}
        self.advertisements_sent = 0
        self.bounces = 0
        if self._config.variant == "cached":
            self._initial_advertisement_flood()

    # ------------------------------------------------------------------
    # cached-variant weight advertisement
    # ------------------------------------------------------------------

    def _initial_advertisement_flood(self) -> None:
        """Every node advertises its weight to every neighbor (setup)."""
        for node in self._graph.nodes():
            self._cached_weights[node] = {}
        for node in self._graph.nodes():
            weight = self._weight(node)
            for neighbor in self._graph.neighbors(node):
                self._deliver_advertisement(neighbor, node, weight)

    def _deliver_advertisement(
        self, to_node: int, source: int, weight: float
    ) -> None:
        self.ledger.record_control(1, label="weight_advertisement")
        self.advertisements_sent += 1
        if self._tracer.enabled:
            self._tracer.event(
                EVENT_ADVERTISEMENT,
                time=self._simulation.now,
                to_node=to_node,
                source=source,
            )
        self._cached_weights.setdefault(to_node, {})[source] = weight

    def notify_weight_change(self, node: int) -> None:
        """Cached variant: ``node``'s weight changed, re-advertise it.

        Call this whenever the weight function's value for a node changes
        (e.g. content size after inserts/deletes). The bounce variant
        needs no such calls — its correctness never depends on caches.
        """
        if self._config.variant != "cached":
            return
        weight = self._weight(node)
        for neighbor in self._graph.neighbors(node):
            self._deliver_advertisement(neighbor, node, weight)

    def handle_topology_change(
        self,
        joined: Iterable[int] = (),
        left: Iterable[int] = (),
    ) -> None:
        """Refresh cached-variant advertisements after overlay changes.

        Purges cache entries sourced from departed nodes, then repairs
        every missing neighbor entry (joins, and the new survivor-to-
        survivor links that leave-rewiring creates) with a paid
        advertisement. The bounce variant is cache-free and ignores this.
        """
        if self._config.variant != "cached":
            return
        gone = set(left)
        if gone:
            for node in gone:
                self._cached_weights.pop(node, None)
            for cache in self._cached_weights.values():
                for node in gone:
                    cache.pop(node, None)
        self._repair_advertisement_caches()

    def handle_churn(self, event: ChurnEvent) -> None:
        """Convenience: :meth:`handle_topology_change` from a churn event."""
        self.handle_topology_change(joined=event.joined, left=event.left)

    def _repair_advertisement_caches(self) -> None:
        """Advertise across every live edge missing a cached weight."""
        for node in self._graph.nodes():
            cache = self._cached_weights.setdefault(node, {})
            for neighbor in self._graph.neighbors(node):
                if neighbor not in cache:
                    self._deliver_advertisement(
                        node, neighbor, self._weight(neighbor)
                    )

    # ------------------------------------------------------------------
    # walk initiation and supervision
    # ------------------------------------------------------------------

    def start_walk(self, origin: int, walk_length: int) -> int:
        """Launch one sampling walk; returns its walker id."""
        if origin not in self._graph:
            raise SamplingError(f"origin {origin} is not in the overlay")
        if walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
        walker_id = self._next_walker
        self._next_walker += 1
        state = _WalkState(
            walker_id=walker_id, origin=origin, walk_length=walk_length
        )
        state.span = self._tracer.span(
            SPAN_WALK,
            time=self._simulation.now,
            walker_id=walker_id,
            origin=origin,
            walk_length=walk_length,
        )
        self._states[walker_id] = state
        self._launch_attempt(state)
        return walker_id

    def _launch_attempt(self, state: _WalkState) -> None:
        """Begin the next attempt of a walk: arm the timeout, inject token."""
        state.attempt += 1
        state.first_hop = None
        attempt = state.attempt
        if attempt > 1:
            state.span.add_event(
                self._simulation.now, EVENT_RETRY, attempt=attempt
            )
        if self._retry is not None:
            state.timeout_event = self._simulation.schedule_in(
                self._retry.timeout_for(attempt),
                lambda time: self._handle_timeout(state, attempt),
            )

        def begin(time: int) -> None:
            if state.finished or attempt != state.attempt:
                return
            if state.origin not in self._graph:
                self._fail_walk(state, "origin_departed")
                return
            self._handle_step(
                state.walker_id,
                state.origin,
                state.origin,
                state.walk_length,
                attempt,
            )

        self._simulation.schedule_in(0, begin)

    def _handle_timeout(self, state: _WalkState, attempt: int) -> None:
        """Origin-side deadline: declare the attempt lost, retry or fail."""
        if state.finished or attempt != state.attempt:
            return  # superseded or already resolved; stale timer
        state.timeouts += 1
        state.span.add_event(
            self._simulation.now, EVENT_TIMEOUT, attempt=attempt
        )
        self.fault_log.record(
            self._simulation.now,
            "walk_timeout",
            walker_id=state.walker_id,
            node=state.origin,
            detail=f"attempt {attempt}",
        )
        if self.health is not None and state.first_hop is not None:
            # the attempt died somewhere past its first hop: indict the
            # link it left through (correlated timeouts trip its breaker)
            self.health.record_outcome(
                state.origin,
                state.first_hop,
                ok=False,
                time=self._simulation.now,
                n_neighbors=(
                    len(self._graph.neighbors(state.origin))
                    if state.origin in self._graph
                    else None
                ),
            )
        if self._retry is None or state.attempt > self._retry.max_retries:
            self._fail_walk(state, "retries_exhausted")
            return
        self._launch_attempt(state)

    def _fail_walk(self, state: _WalkState, reason: str) -> None:
        """Terminal failure: record it; the walk yields no sample."""
        state.failed = True
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None
        self.fault_log.record(
            self._simulation.now,
            "walk_failed",
            walker_id=state.walker_id,
            detail=reason,
        )
        self._tracer.end(
            state.span,
            time=self._simulation.now,
            outcome="failed",
            attempts=state.attempt,
            reason=reason,
        )

    def _complete_walk(self, state: _WalkState, sampled_node: int) -> None:
        """A sample made it back to the origin; release the supervisor."""
        state.done = True
        if self.health is not None and state.first_hop is not None:
            self.health.record_outcome(
                state.origin,
                state.first_hop,
                ok=True,
                time=self._simulation.now,
                n_neighbors=(
                    len(self._graph.neighbors(state.origin))
                    if state.origin in self._graph
                    else None
                ),
            )
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None
        self._outcomes[state.walker_id] = _WalkOutcome(
            walker_id=state.walker_id,
            sampled_node=sampled_node,
            completed_at=self._simulation.now,
            attempts=state.attempt,
        )
        self._tracer.end(
            state.span,
            time=self._simulation.now,
            outcome="completed",
            attempts=state.attempt,
            sampled_node=sampled_node,
        )

    def run_walks(
        self,
        origin: int,
        n: int,
        walk_length: int,
        allow_partial: bool = False,
        deadline: int | None = None,
    ) -> list[int]:
        """Launch ``n`` walks, drive the simulator, return sampled nodes.

        Runs the event queue dry (or up to ``deadline`` ticks past the
        current time when given). With ``allow_partial=False`` every walk
        must produce a sample or :class:`SamplingError` is raised; with
        ``allow_partial=True`` the achieved samples are returned and the
        shortfall is visible in :attr:`walk_stats` and ``fault_log`` —
        the caller degrades its precision honestly instead of aborting.
        """
        walker_ids = [self.start_walk(origin, walk_length) for _ in range(n)]
        if deadline is None:
            self._simulation.run_all()
        else:
            self._simulation.run_until(self._simulation.now + deadline)
            for walker_id in walker_ids:
                state = self._states[walker_id]
                if not state.finished:
                    self._fail_walk(state, "deadline_expired")
        missing = [w for w in walker_ids if w not in self._outcomes]
        if missing and not allow_partial:
            raise SamplingError(
                f"{len(missing)} of {n} walks never completed "
                f"(first missing: {missing[:5]}; faults: "
                f"{self.fault_log.summary()}); pass allow_partial=True to "
                f"degrade instead"
            )
        return [
            self._outcomes[w].sampled_node
            for w in walker_ids
            if w in self._outcomes
        ]

    def run_walk_batch(
        self,
        origin: int,
        plan: "WalkBatchPlan",
        walk_length: int,
        allow_partial: bool = False,
        deadline: int | None = None,
    ) -> dict[str, list[int]]:
        """Run one coalesced walk batch and slice it per consuming query.

        Launches ``plan.n_walks`` supervised walks (the maximum demand
        across the plan's queries — retries, faults, and ledger accounting
        identical to :meth:`run_walks`) and returns, for each query, the
        first ``n_q`` delivered sample nodes, so consumers overlap
        maximally and the batch is paid for once. Every walk's trace span
        carries the ids of the queries consuming it (``consumers``), which
        is how per-query attribution survives the sharing.
        """
        batch_span = self._tracer.span(
            SPAN_SHARED_WALK_BATCH,
            time=self._simulation.now,
            n_requested=plan.n_walks,
            n_pooled=0,
            consumers=",".join(plan.consumers),
            n_consumers=len(plan.demands),
            origin=origin,
        )
        walker_ids = []
        for index in range(plan.n_walks):
            walker_id = self.start_walk(origin, walk_length)
            consumers = plan.consumers_of(index)
            self._states[walker_id].span.set(
                consumers=",".join(consumers), n_consumers=len(consumers)
            )
            walker_ids.append(walker_id)
        if deadline is None:
            self._simulation.run_all()
        else:
            self._simulation.run_until(self._simulation.now + deadline)
            for walker_id in walker_ids:
                state = self._states[walker_id]
                if not state.finished:
                    self._fail_walk(state, "deadline_expired")
        delivered = [
            self._outcomes[w].sampled_node
            for w in walker_ids
            if w in self._outcomes
        ]
        missing = plan.n_walks - len(delivered)
        if missing and not allow_partial:
            raise SamplingError(
                f"{missing} of {plan.n_walks} batched walks never completed "
                f"(faults: {self.fault_log.summary()}); pass "
                f"allow_partial=True to degrade instead"
            )
        self._tracer.end(
            batch_span,
            time=self._simulation.now,
            n_drawn=len(delivered),
        )
        return {
            demand.query: delivered[: demand.n_samples]
            for demand in plan.demands
        }

    def outcome(self, walker_id: int) -> _WalkOutcome | None:
        return self._outcomes.get(walker_id)

    @property
    def walk_stats(self) -> WalkStats:
        """Aggregate supervision outcomes across all launched walks."""
        states = self._states.values()
        completed = sum(1 for s in states if s.done)
        return WalkStats(
            launched=len(self._states),
            completed=completed,
            failed=sum(1 for s in states if s.failed),
            attempts=sum(s.attempt for s in states),
            timeouts=sum(s.timeouts for s in states),
            retried_completions=sum(
                1 for s in states if s.done and s.attempt > 1
            ),
        )

    # ------------------------------------------------------------------
    # unreliable delivery
    # ------------------------------------------------------------------

    def _record_traffic(self, attempt: int, kind: str) -> None:
        """Tally one message; retry-attempt traffic goes to ``retries``."""
        if attempt > 1:
            self.ledger.record_retry(1)
        elif kind == "walk":
            self.ledger.record_walk_steps(1)
        else:
            self.ledger.record_sample_return(1)

    def _transmit(
        self,
        attempt: int,
        kind: str,
        from_node: int,
        to_node: int,
        walker_id: int,
        deliver: Callable[[], None],
    ) -> None:
        """Send one message: pay for it, maybe lose it, else deliver later.

        The cost is recorded at send time — a message lost in transit was
        still sent. Delivery runs ``deliver`` after the hop latency (plus
        jitter under a fault plan) unless an open partition (or flapped
        link) cuts the ``from_node -> to_node`` edge, the link drops it,
        or the receiver has crashed by then; every outcome becomes a
        fault event, never an exception.
        """
        self._record_traffic(attempt, kind)
        if self._traced:
            state = self._states.get(walker_id)
            if state is not None:
                # mirrors _record_traffic's ledger bucketing exactly, so
                # trace attribution and the ledger cannot disagree
                # (appended directly: this runs once per message)
                state.span.events.append(
                    TraceEvent(
                        self._clock.now,
                        EVENT_MESSAGE,
                        {
                            "category": "retry" if attempt > 1 else kind,
                            "to_node": to_node,
                        },
                    )
                )
        partitions = self._partitions
        if (
            partitions is not None
            and partitions.active
            and partitions.blocked(from_node, to_node)
        ):
            # correlated drop: the sender paid for a message the cut
            # swallows whole — exactly how a partitioned overlay looks
            # from the inside (no error, just silence)
            self.fault_log.record(
                self._simulation.now,
                "partition_drop",
                walker_id=walker_id,
                node=to_node,
                detail=f"({from_node}, {to_node})",
            )
            return
        faults = self._faults
        if self._lossy and faults is not None and faults.message_lost():
            self.fault_log.record(
                self._simulation.now,
                "message_loss",
                walker_id=walker_id,
                node=to_node,
            )
            return
        delay = (
            faults.delivery_delay(self._config.hop_latency)
            if self._jittery and faults is not None
            else self._config.hop_latency
        )

        def handle_delivery(time: int) -> None:
            if to_node not in self._graph:
                self.fault_log.record(
                    time, "crashed_receiver", walker_id=walker_id, node=to_node
                )
                return
            deliver()

        self._simulation.schedule_in(delay, handle_delivery)

    def _current_state(self, walker_id: int, attempt: int) -> _WalkState | None:
        """The walk's state iff this attempt is still the live one."""
        state = self._states.get(walker_id)
        if state is None or state.finished or attempt != state.attempt:
            return None
        return state

    # ------------------------------------------------------------------
    # per-node protocol logic
    # ------------------------------------------------------------------

    def _handle_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        steps_remaining: int,
        attempt: int,
    ) -> None:
        """The node holding the token decides one chain transition."""
        state = self._current_state(walker_id, attempt)
        if state is None:
            return  # superseded attempt or finished walk: drop the token
        if self._traced:
            # appended directly: this runs once per hop
            state.span.events.append(
                TraceEvent(
                    self._clock.now,
                    EVENT_HOP,
                    {"node": node, "steps_remaining": steps_remaining},
                )
            )
        if node not in self._graph:
            self.fault_log.record(
                self._simulation.now,
                "node_departed",
                walker_id=walker_id,
                node=node,
            )
            return
        if steps_remaining <= 0:
            self._begin_return(walker_id, origin, node, attempt)
            return
        config = self._config
        if config.laziness > 0.0 and self._rng.random() < config.laziness:
            # lazy self-loop: burns a tick, sends nothing
            self._simulation.schedule_in(
                config.hop_latency,
                lambda t: self._handle_step(
                    walker_id, origin, node, steps_remaining - 1, attempt
                ),
            )
            return
        neighbors = self._graph.neighbors(node)
        if not neighbors:
            # crashes/link failures isolated the token's host; the walk
            # dies here and the origin-side timeout recovers it
            self.fault_log.record(
                self._simulation.now,
                "isolated_node",
                walker_id=walker_id,
                node=node,
            )
            return
        if (
            self.health is not None
            and node == origin
            and state.first_hop is None
        ):
            target = self._choose_first_hop(state, node, neighbors)
            if target is None:
                return
        else:
            target = neighbors[int(self._rng.integers(len(neighbors)))]
            if node == origin and state.first_hop is None:
                state.first_hop = target
        if config.variant == "cached":
            self._cached_step(
                walker_id, origin, node, target, steps_remaining, attempt
            )
        else:
            self._bounce_step(
                walker_id, origin, node, target, steps_remaining, attempt
            )

    def _choose_first_hop(
        self, state: _WalkState, origin: int, neighbors: list[int]
    ) -> int | None:
        """Health-aware first-hop choice: skip links with open breakers.

        Draws uniformly over the *admitted* neighbors (closed breakers
        plus at most the half-open probes the monitor offers). When every
        link is suppressed the walk fast-fails instead of burning its
        full timeout on a hop the origin already knows is dead — the
        caller sees an honest shortfall immediately.
        """
        assert self.health is not None
        now = self._simulation.now
        admitted, probes = self.health.admitted(origin, neighbors, now)
        if not admitted:
            self.fault_log.record(
                now,
                "breaker_suppressed",
                walker_id=state.walker_id,
                node=origin,
            )
            self._fail_walk(state, "all_breakers_open")
            return None
        target = admitted[int(self._rng.integers(len(admitted)))]
        state.first_hop = target
        if target in probes:
            self.health.start_probe(origin, target, now)
        return target

    def _acceptance(self, w_i: float, d_i: int, w_j: float, d_j: int) -> float:
        if w_i == 0.0:
            return 1.0
        return min(1.0, (w_j * d_i) / (w_i * d_j))

    def _cached_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
        attempt: int,
    ) -> None:
        """Cached variant: decide locally; only accepted moves send."""
        cached = self._cached_weights.get(node, {}).get(target)
        if cached is None:
            # cache miss (a link appeared without an advertisement, e.g.
            # an unannounced join or leave-rewiring): probe the neighbor
            # on demand — one request + one reply — instead of dying
            self.ledger.record_control(2, label="weight_probe")
            if self._traced:
                probing = self._states.get(walker_id)
                if probing is not None:
                    probing.span.add_event(
                        self._simulation.now,
                        EVENT_PROBE,
                        node=node,
                        target=target,
                        messages=2,
                    )
            self.fault_log.record(
                self._simulation.now,
                "advertisement_cache_miss",
                walker_id=walker_id,
                node=node,
                detail=f"probed neighbor {target}",
            )
            cached = self._weight(target)
            self._cached_weights.setdefault(node, {})[target] = cached
        accept = self._acceptance(
            self._weight(node),
            self._graph.degree(node),
            cached,
            self._graph.degree(target),
        )
        if self._rng.random() < accept:
            token = WalkToken(
                walker_id=walker_id,
                origin=origin,
                steps_remaining=steps_remaining - 1,
                sender=node,
                sender_weight=self._weight(node),
                sender_degree=self._graph.degree(node),
                attempt=attempt,
            )
            self._send_token(token, target)
        else:
            # rejected proposal: no message at all in this variant
            self._simulation.schedule_in(
                self._config.hop_latency,
                lambda t: self._handle_step(
                    walker_id, origin, node, steps_remaining - 1, attempt
                ),
            )

    def _bounce_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
        attempt: int,
    ) -> None:
        """Bounce variant: forward optimistically; receiver may bounce."""
        token = WalkToken(
            walker_id=walker_id,
            origin=origin,
            steps_remaining=steps_remaining,
            sender=node,
            sender_weight=self._weight(node),
            sender_degree=self._graph.degree(node),
            attempt=attempt,
        )
        self._send_token(token, target, evaluate_at_receiver=True)

    def _send_token(
        self, token: WalkToken, to_node: int, evaluate_at_receiver: bool = False
    ) -> None:
        def deliver() -> None:
            if evaluate_at_receiver:
                self._receive_optimistic_token(token, to_node)
            else:
                self._handle_step(
                    token.walker_id,
                    token.origin,
                    to_node,
                    token.steps_remaining,
                    token.attempt,
                )

        self._transmit(
            token.attempt, "walk", token.sender, to_node, token.walker_id, deliver
        )

    def _receive_optimistic_token(self, token: WalkToken, node: int) -> None:
        """Bounce variant, receiver side: accept or bounce back."""
        if self._current_state(token.walker_id, token.attempt) is None:
            return
        accept = self._acceptance(
            token.sender_weight,
            token.sender_degree,
            self._weight(node),
            self._graph.degree(node),
        )
        if self._rng.random() < accept:
            self._handle_step(
                token.walker_id,
                token.origin,
                node,
                token.steps_remaining - 1,
                token.attempt,
            )
        else:
            self.bounces += 1

            def deliver() -> None:
                self._handle_step(
                    token.walker_id,
                    token.origin,
                    token.sender,
                    token.steps_remaining - 1,
                    token.attempt,
                )

            # the bounce message, subject to the same unreliable delivery
            self._transmit(
                token.attempt, "walk", node, token.sender, token.walker_id, deliver
            )

    # ------------------------------------------------------------------
    # sample return routing
    # ------------------------------------------------------------------

    def _begin_return(
        self, walker_id: int, origin: int, node: int, attempt: int
    ) -> None:
        self._handle_return(
            SampleReturn(
                walker_id=walker_id,
                origin=origin,
                sampled_node=node,
                at_node=node,
                attempt=attempt,
            )
        )

    def _handle_return(self, message: SampleReturn) -> None:
        """Route one return hop toward the origin on the live topology.

        The holder re-resolves the next hop from fresh origin-rooted hop
        distances every time, so the route adapts to crashes and
        rewiring; a holder the origin can no longer reach records a
        ``return_path_broken`` fault and lets the origin's timeout retry
        the walk.
        """
        state = self._current_state(message.walker_id, message.attempt)
        if state is None:
            return
        if message.at_node == message.origin:
            self._complete_walk(state, message.sampled_node)
            return
        if message.origin not in self._graph or message.at_node not in self._graph:
            self.fault_log.record(
                self._simulation.now,
                "return_path_broken",
                walker_id=message.walker_id,
                node=message.at_node,
            )
            return
        distances = self._graph.hop_distances(message.origin)
        my_distance = distances.get(message.at_node)
        next_hop: int | None = None
        if my_distance is not None:
            for neighbor in self._graph.neighbors(message.at_node):
                if distances.get(neighbor) == my_distance - 1:
                    next_hop = neighbor
                    break
        if next_hop is None:
            self.fault_log.record(
                self._simulation.now,
                "return_path_broken",
                walker_id=message.walker_id,
                node=message.at_node,
            )
            return
        forwarded = replace(message, at_node=next_hop)

        def deliver() -> None:
            self._handle_return(forwarded)

        self._transmit(
            message.attempt,
            "return",
            message.at_node,
            next_hop,
            message.walker_id,
            deliver,
        )
