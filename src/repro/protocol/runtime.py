"""The protocol runtime: node handlers + message delivery.

Executes Metropolis sampling walks as scheduled message deliveries on a
:class:`~repro.sim.engine.SimulationEngine`. Each delivery runs the
receiving node's handler, which may send further messages; a walk
terminates by routing a :class:`SampleReturn` hop-by-hop back to its
origin. All messages are tallied on a :class:`MessageLedger` with the
same categories the abstract model uses, so costs are directly
comparable.

Locality discipline: handlers may read only (a) the receiving node's own
weight/degree/neighbor list and (b) the message contents. The one
exception is shortest-path return routing, which uses precomputed hop
distances as a stand-in for the origin-rooted routing state a real
deployment would piggyback on the walk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.protocol.messages import SampleReturn, WalkToken
from repro.sampling.weights import WeightFunction
from repro.sim.engine import SimulationEngine

VARIANTS = ("bounce", "cached")


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol variant and timing.

    ``hop_latency`` is the delivery delay of one overlay hop in simulator
    ticks; ``laziness`` is the Metropolis self-loop mass (lazy steps burn
    a tick but no message).
    """

    variant: str = "bounce"
    hop_latency: int = 1
    laziness: float = 0.5

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise SamplingError(
                f"variant must be one of {VARIANTS}, got {self.variant!r}"
            )
        if self.hop_latency < 1:
            raise SamplingError(
                f"hop_latency must be >= 1, got {self.hop_latency}"
            )
        if not 0.0 <= self.laziness < 1.0:
            raise SamplingError(
                f"laziness must be in [0, 1), got {self.laziness}"
            )


@dataclass
class _WalkOutcome:
    walker_id: int
    sampled_node: int
    completed_at: int


class ProtocolSampler:
    """Distributed Metropolis sampling as a real message protocol."""

    def __init__(
        self,
        graph: OverlayGraph,
        weight: WeightFunction,
        simulation: SimulationEngine,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        config: ProtocolConfig | None = None,
    ) -> None:
        if not graph.is_connected():
            raise TopologyError("the protocol needs a connected overlay")
        self._graph = graph
        self._weight = weight
        self._simulation = simulation
        self._rng = rng
        self.ledger = ledger if ledger is not None else MessageLedger()
        self._config = config if config is not None else ProtocolConfig()
        self._outcomes: dict[int, _WalkOutcome] = {}
        self._next_walker = 0
        self._cached_weights: dict[int, dict[int, float]] = {}
        self.advertisements_sent = 0
        self.bounces = 0
        if self._config.variant == "cached":
            self._initial_advertisement_flood()

    # ------------------------------------------------------------------
    # cached-variant weight advertisement
    # ------------------------------------------------------------------

    def _initial_advertisement_flood(self) -> None:
        """Every node advertises its weight to every neighbor (setup)."""
        for node in self._graph.nodes():
            self._cached_weights[node] = {}
        for node in self._graph.nodes():
            weight = self._weight(node)
            for neighbor in self._graph.neighbors(node):
                self._deliver_advertisement(neighbor, node, weight)

    def _deliver_advertisement(
        self, to_node: int, source: int, weight: float
    ) -> None:
        self.ledger.record_control(1, label="weight_advertisement")
        self.advertisements_sent += 1
        self._cached_weights.setdefault(to_node, {})[source] = weight

    def notify_weight_change(self, node: int) -> None:
        """Cached variant: ``node``'s weight changed, re-advertise it.

        Call this whenever the weight function's value for a node changes
        (e.g. content size after inserts/deletes). The bounce variant
        needs no such calls — its correctness never depends on caches.
        """
        if self._config.variant != "cached":
            return
        weight = self._weight(node)
        for neighbor in self._graph.neighbors(node):
            self._deliver_advertisement(neighbor, node, weight)

    # ------------------------------------------------------------------
    # walk initiation
    # ------------------------------------------------------------------

    def start_walk(self, origin: int, walk_length: int) -> int:
        """Launch one sampling walk; returns its walker id."""
        if origin not in self._graph:
            raise SamplingError(f"origin {origin} is not in the overlay")
        if walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
        walker_id = self._next_walker
        self._next_walker += 1

        def begin(time: int) -> None:
            self._decide_step(walker_id, origin, origin, walk_length)

        self._simulation.schedule_in(0, begin)
        return walker_id

    def run_walks(
        self, origin: int, n: int, walk_length: int
    ) -> list[int]:
        """Launch ``n`` walks, drain the simulator, return sampled nodes."""
        walker_ids = [self.start_walk(origin, walk_length) for _ in range(n)]
        self._simulation.run_all()
        missing = [w for w in walker_ids if w not in self._outcomes]
        if missing:
            raise SamplingError(f"walks {missing[:5]} never completed")
        return [self._outcomes[w].sampled_node for w in walker_ids]

    def outcome(self, walker_id: int) -> _WalkOutcome | None:
        return self._outcomes.get(walker_id)

    # ------------------------------------------------------------------
    # per-node protocol logic
    # ------------------------------------------------------------------

    def _decide_step(
        self, walker_id: int, origin: int, node: int, steps_remaining: int
    ) -> None:
        """The node holding the token decides one chain transition."""
        if steps_remaining <= 0:
            self._begin_return(walker_id, origin, node)
            return
        config = self._config
        if config.laziness > 0.0 and self._rng.random() < config.laziness:
            # lazy self-loop: burns a tick, sends nothing
            self._simulation.schedule_in(
                config.hop_latency,
                lambda t: self._decide_step(
                    walker_id, origin, node, steps_remaining - 1
                ),
            )
            return
        neighbors = self._graph.neighbors(node)
        if not neighbors:
            raise TopologyError(f"node {node} became isolated mid-walk")
        target = neighbors[int(self._rng.integers(len(neighbors)))]
        if config.variant == "cached":
            self._cached_step(walker_id, origin, node, target, steps_remaining)
        else:
            self._bounce_step(walker_id, origin, node, target, steps_remaining)

    def _acceptance(self, w_i: float, d_i: int, w_j: float, d_j: int) -> float:
        if w_i == 0.0:
            return 1.0
        return min(1.0, (w_j * d_i) / (w_i * d_j))

    def _cached_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
    ) -> None:
        """Cached variant: decide locally; only accepted moves send."""
        cached = self._cached_weights.get(node, {}).get(target)
        if cached is None:
            raise SamplingError(
                f"node {node} has no cached weight for neighbor {target}; "
                "was notify_weight_change skipped after a topology change?"
            )
        accept = self._acceptance(
            self._weight(node),
            self._graph.degree(node),
            cached,
            self._graph.degree(target),
        )
        if self._rng.random() < accept:
            token = WalkToken(
                walker_id=walker_id,
                origin=origin,
                steps_remaining=steps_remaining - 1,
                sender=node,
                sender_weight=self._weight(node),
                sender_degree=self._graph.degree(node),
            )
            self._send_token(token, target)
        else:
            # rejected proposal: no message at all in this variant
            self._simulation.schedule_in(
                self._config.hop_latency,
                lambda t: self._decide_step(
                    walker_id, origin, node, steps_remaining - 1
                ),
            )

    def _bounce_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
    ) -> None:
        """Bounce variant: forward optimistically; receiver may bounce."""
        token = WalkToken(
            walker_id=walker_id,
            origin=origin,
            steps_remaining=steps_remaining,
            sender=node,
            sender_weight=self._weight(node),
            sender_degree=self._graph.degree(node),
        )
        self._send_token(token, target, evaluate_at_receiver=True)

    def _send_token(
        self, token: WalkToken, to_node: int, evaluate_at_receiver: bool = False
    ) -> None:
        self.ledger.record_walk_steps(1)

        def deliver(time: int) -> None:
            if evaluate_at_receiver:
                self._receive_optimistic_token(token, to_node)
            else:
                self._decide_step(
                    token.walker_id, token.origin, to_node, token.steps_remaining
                )

        self._simulation.schedule_in(self._config.hop_latency, deliver)

    def _receive_optimistic_token(self, token: WalkToken, node: int) -> None:
        """Bounce variant, receiver side: accept or bounce back."""
        accept = self._acceptance(
            token.sender_weight,
            token.sender_degree,
            self._weight(node),
            self._graph.degree(node),
        )
        if self._rng.random() < accept:
            self._decide_step(
                token.walker_id, token.origin, node, token.steps_remaining - 1
            )
        else:
            self.bounces += 1
            self.ledger.record_walk_steps(1)  # the bounce message

            def bounce(time: int) -> None:
                self._decide_step(
                    token.walker_id,
                    token.origin,
                    token.sender,
                    token.steps_remaining - 1,
                )

            self._simulation.schedule_in(self._config.hop_latency, bounce)

    # ------------------------------------------------------------------
    # sample return routing
    # ------------------------------------------------------------------

    def _begin_return(self, walker_id: int, origin: int, node: int) -> None:
        distances = self._graph.hop_distances(origin)
        hops = distances.get(node)
        if hops is None:
            raise TopologyError(
                f"sampled node {node} cannot reach the origin {origin}"
            )
        self._route_return(
            SampleReturn(
                walker_id=walker_id,
                origin=origin,
                sampled_node=node,
                hops_remaining=hops,
            )
        )

    def _route_return(self, message: SampleReturn) -> None:
        if message.hops_remaining <= 0:
            self._outcomes[message.walker_id] = _WalkOutcome(
                walker_id=message.walker_id,
                sampled_node=message.sampled_node,
                completed_at=self._simulation.now,
            )
            return
        self.ledger.record_sample_return(1)

        def deliver(time: int) -> None:
            self._route_return(
                SampleReturn(
                    walker_id=message.walker_id,
                    origin=message.origin,
                    sampled_node=message.sampled_node,
                    hops_remaining=message.hops_remaining - 1,
                )
            )

        self._simulation.schedule_in(self._config.hop_latency, deliver)
