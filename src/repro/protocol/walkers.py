"""Per-node walk execution: the protocol's message handlers.

:class:`WalkExecutor` is the distributed part of the stack — the code
that conceptually runs *on each overlay node* when a walk token or a
sample return arrives. It owns the Metropolis step logic of both
protocol variants (bounce and cached), the hop-by-hop return routing,
and the ledger accounting; it delegates delivery to the
:class:`~repro.protocol.transport.Transport`, supervision state to the
:class:`~repro.protocol.lifecycle.WalkLifecycle`, and first-hop choice
to the :class:`~repro.protocol.routing.RoutingPolicy`.

Locality discipline: handlers may read only (a) the receiving node's own
weight/degree/neighbor list and (b) the message contents. The one
exception is shortest-path return routing, which uses origin-rooted hop
distances as a stand-in for the routing state a real deployment would
piggyback on the walk.

Handlers never let an exception escape a scheduled delivery — every
failure (lost message, crashed receiver, broken return path, isolated
node) becomes a recorded :class:`~repro.network.faults.FaultEvent` on
the fault log (digest-lint DGL006 enforces this statically).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.network.faults import FaultLog
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.protocol.advertisements import AdvertisementCache
from repro.protocol.lifecycle import WalkLifecycle, WalkRecord
from repro.protocol.messages import (
    BounceBack,
    SampleReturn,
    TraceContext,
    WalkToken,
)
from repro.protocol.routing import RoutingPolicy
from repro.protocol.transport import KIND_RETURN, KIND_WALK, Transport
from repro.sampling.weights import WeightFunction


class WalkExecutor:
    """Executes walk tokens and sample returns at their receiving nodes."""

    def __init__(
        self,
        graph: OverlayGraph,
        weight: WeightFunction,
        rng: np.random.Generator,
        variant: str,
        hop_latency: int,
        laziness: float,
        transport: Transport,
        lifecycle: WalkLifecycle,
        routing: RoutingPolicy,
        ledger: MessageLedger,
        fault_log: FaultLog,
        advertisements: AdvertisementCache | None = None,
    ) -> None:
        self._graph = graph
        self._weight = weight
        self._rng = rng
        self._variant = variant
        self._hop_latency = hop_latency
        self._laziness = laziness
        self._transport = transport
        self._lifecycle = lifecycle
        self._routing = routing
        self._ledger = ledger
        self._fault_log = fault_log
        self._ads = advertisements
        self.bounces = 0

    # ------------------------------------------------------------------
    # token injection (lifecycle -> executor)
    # ------------------------------------------------------------------

    def inject(self, record: WalkRecord, attempt: int) -> None:
        """Start one attempt: hand the origin its own walk token."""
        if record.origin not in self._graph:
            self._lifecycle.fail(record, "origin_departed")
            return
        self._handle_step(
            record.walker_id,
            record.origin,
            record.origin,
            record.walk_length,
            attempt,
        )

    # ------------------------------------------------------------------
    # unreliable delivery
    # ------------------------------------------------------------------

    def _record_traffic(self, attempt: int, kind: str) -> None:
        """Tally one message; retry-attempt traffic goes to ``retries``."""
        if attempt > 1:
            self._ledger.record_retry(1)
        elif kind == KIND_WALK:
            self._ledger.record_walk_steps(1)
        else:
            self._ledger.record_sample_return(1)

    def _transmit(
        self,
        attempt: int,
        kind: str,
        from_node: int,
        to_node: int,
        walker_id: int,
        ctx: TraceContext | None,
        deliver: Callable[[], None],
    ) -> None:
        """Send one message: pay for it, note it, hand it to transport.

        The cost is recorded at send time — a message lost in transit was
        still sent; loss, partitions, and crashed receivers are the
        transport's concern and surface as fault events, never here.

        When a recording sink is attached, the transit gets its own
        ``hop_segment`` span carrying the message's trace context: opened
        here at send time, closed by the wrapped ``deliver`` at delivery
        time. The transport stays context-agnostic — it just runs the
        thunk — so any backend (including a future asyncio one) inherits
        causal tracing without knowing it exists.
        """
        self._record_traffic(attempt, kind)
        self._lifecycle.note_message(walker_id, attempt, kind, to_node)
        segment = self._lifecycle.begin_hop_segment(
            walker_id, kind, from_node, to_node, ctx
        )
        if segment is not None:
            inner = deliver

            def traced_deliver() -> None:
                self._lifecycle.end_hop_segment(segment, walker_id, attempt)
                inner()

            deliver = traced_deliver
        self._transport.send(kind, from_node, to_node, walker_id, deliver)

    # ------------------------------------------------------------------
    # per-node protocol logic
    # ------------------------------------------------------------------

    def _handle_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        steps_remaining: int,
        attempt: int,
    ) -> None:
        """The node holding the token decides one chain transition."""
        record = self._lifecycle.live_record(walker_id, attempt)
        if record is None:
            return  # superseded attempt or finished walk: drop the token
        self._lifecycle.note_hop(record, node, steps_remaining)
        if node not in self._graph:
            self._fault_log.record(
                self._transport.now,
                "node_departed",
                walker_id=walker_id,
                node=node,
            )
            return
        if steps_remaining <= 0:
            self._begin_return(walker_id, origin, node, attempt, record.ctx)
            return
        if self._laziness > 0.0 and self._rng.random() < self._laziness:
            # lazy self-loop: burns a tick, sends nothing
            self._transport.schedule(
                self._hop_latency,
                lambda t: self._handle_step(
                    walker_id, origin, node, steps_remaining - 1, attempt
                ),
            )
            return
        neighbors = self._graph.neighbors(node)
        if not neighbors:
            # crashes/link failures isolated the token's host; the walk
            # dies here and the origin-side timeout recovers it
            self._fault_log.record(
                self._transport.now,
                "isolated_node",
                walker_id=walker_id,
                node=node,
            )
            return
        if node == origin and record.first_hop is None:
            target = self._routing.choose_first_hop(
                record, neighbors, self._transport.now
            )
            if target is None:
                self._lifecycle.fail(record, "all_breakers_open")
                return
        else:
            # mid-walk Metropolis proposal: always a local uniform draw
            target = neighbors[int(self._rng.integers(len(neighbors)))]
        if self._variant == "cached":
            self._cached_step(
                walker_id, origin, node, target, steps_remaining, attempt,
                record.ctx,
            )
        else:
            self._bounce_step(
                walker_id, origin, node, target, steps_remaining, attempt,
                record.ctx,
            )

    def _acceptance(self, w_i: float, d_i: int, w_j: float, d_j: int) -> float:
        if w_i == 0.0:
            return 1.0
        return min(1.0, (w_j * d_i) / (w_i * d_j))

    def _cached_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
        attempt: int,
        ctx: TraceContext | None,
    ) -> None:
        """Cached variant: decide locally; only accepted moves send."""
        ads = self._ads
        assert ads is not None, "cached variant requires an advertisement cache"
        cached = ads.lookup(node, target)
        if cached is None:
            # cache miss (a link appeared without an advertisement, e.g.
            # an unannounced join or leave-rewiring): probe the neighbor
            # on demand — one request + one reply — instead of dying
            self._ledger.record_control(2, label="weight_probe")
            self._lifecycle.note_probe(walker_id, node, target)
            self._fault_log.record(
                self._transport.now,
                "advertisement_cache_miss",
                walker_id=walker_id,
                node=node,
                detail=f"probed neighbor {target}",
            )
            cached = self._weight(target)
            ads.store(node, target, cached)
        accept = self._acceptance(
            self._weight(node),
            self._graph.degree(node),
            cached,
            self._graph.degree(target),
        )
        if self._rng.random() < accept:
            token = WalkToken(
                walker_id=walker_id,
                origin=origin,
                steps_remaining=steps_remaining - 1,
                sender=node,
                sender_weight=self._weight(node),
                sender_degree=self._graph.degree(node),
                attempt=attempt,
                ctx=ctx,
            )
            self._send_token(token, target)
        else:
            # rejected proposal: no message at all in this variant
            self._transport.schedule(
                self._hop_latency,
                lambda t: self._handle_step(
                    walker_id, origin, node, steps_remaining - 1, attempt
                ),
            )

    def _bounce_step(
        self,
        walker_id: int,
        origin: int,
        node: int,
        target: int,
        steps_remaining: int,
        attempt: int,
        ctx: TraceContext | None,
    ) -> None:
        """Bounce variant: forward optimistically; receiver may bounce."""
        token = WalkToken(
            walker_id=walker_id,
            origin=origin,
            steps_remaining=steps_remaining,
            sender=node,
            sender_weight=self._weight(node),
            sender_degree=self._graph.degree(node),
            attempt=attempt,
            ctx=ctx,
        )
        self._send_token(token, target, evaluate_at_receiver=True)

    def _send_token(
        self, token: WalkToken, to_node: int, evaluate_at_receiver: bool = False
    ) -> None:
        def deliver() -> None:
            if evaluate_at_receiver:
                self._receive_optimistic_token(token, to_node)
            else:
                self._handle_step(
                    token.walker_id,
                    token.origin,
                    to_node,
                    token.steps_remaining,
                    token.attempt,
                )

        self._transmit(
            token.attempt,
            KIND_WALK,
            token.sender,
            to_node,
            token.walker_id,
            token.ctx,
            deliver,
        )

    def _receive_optimistic_token(self, token: WalkToken, node: int) -> None:
        """Bounce variant, receiver side: accept or bounce back."""
        if self._lifecycle.live_record(token.walker_id, token.attempt) is None:
            return
        accept = self._acceptance(
            token.sender_weight,
            token.sender_degree,
            self._weight(node),
            self._graph.degree(node),
        )
        if self._rng.random() < accept:
            self._handle_step(
                token.walker_id,
                token.origin,
                node,
                token.steps_remaining - 1,
                token.attempt,
            )
        else:
            self.bounces += 1
            # the rejected token returns as an explicit bounce message,
            # its context forwarded unchanged from the incoming token
            bounce = BounceBack(
                walker_id=token.walker_id,
                origin=token.origin,
                steps_remaining=token.steps_remaining - 1,
                attempt=token.attempt,
                ctx=token.ctx,
            )
            self._lifecycle.note_ctx_forward(
                bounce.walker_id, bounce.ctx, node, token.sender
            )

            def deliver() -> None:
                self._handle_step(
                    bounce.walker_id,
                    bounce.origin,
                    token.sender,
                    bounce.steps_remaining,
                    bounce.attempt,
                )

            # the bounce message, subject to the same unreliable delivery
            self._transmit(
                bounce.attempt,
                KIND_WALK,
                node,
                token.sender,
                bounce.walker_id,
                bounce.ctx,
                deliver,
            )

    # ------------------------------------------------------------------
    # sample return routing
    # ------------------------------------------------------------------

    def _begin_return(
        self,
        walker_id: int,
        origin: int,
        node: int,
        attempt: int,
        ctx: TraceContext | None,
    ) -> None:
        self._handle_return(
            SampleReturn(
                walker_id=walker_id,
                origin=origin,
                sampled_node=node,
                at_node=node,
                attempt=attempt,
                ctx=ctx,
            )
        )

    def _handle_return(self, message: SampleReturn) -> None:
        """Route one return hop toward the origin on the live topology.

        The holder re-resolves the next hop from fresh origin-rooted hop
        distances every time, so the route adapts to crashes and
        rewiring; a holder the origin can no longer reach records a
        ``return_path_broken`` fault and lets the origin's timeout retry
        the walk.
        """
        record = self._lifecycle.live_record(message.walker_id, message.attempt)
        if record is None:
            return
        if message.at_node == message.origin:
            self._lifecycle.complete(record, message.sampled_node)
            return
        if message.origin not in self._graph or message.at_node not in self._graph:
            self._fault_log.record(
                self._transport.now,
                "return_path_broken",
                walker_id=message.walker_id,
                node=message.at_node,
            )
            return
        distances = self._graph.hop_distances(message.origin)
        my_distance = distances.get(message.at_node)
        next_hop: int | None = None
        if my_distance is not None:
            for neighbor in self._graph.neighbors(message.at_node):
                if distances.get(neighbor) == my_distance - 1:
                    next_hop = neighbor
                    break
        if next_hop is None:
            self._fault_log.record(
                self._transport.now,
                "return_path_broken",
                walker_id=message.walker_id,
                node=message.at_node,
            )
            return
        # ``replace`` keeps every other field — including ``ctx`` —
        # untouched: forwarding never re-mints context (DGL015)
        forwarded = replace(message, at_node=next_hop)
        self._lifecycle.note_ctx_forward(
            message.walker_id, forwarded.ctx, message.at_node, next_hop
        )

        def deliver() -> None:
            self._handle_return(forwarded)

        self._transmit(
            message.attempt,
            KIND_RETURN,
            message.at_node,
            next_hop,
            message.walker_id,
            message.ctx,
            deliver,
        )
