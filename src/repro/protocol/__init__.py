"""Message-level execution of the sampling protocol.

The rest of the library simulates random walks *mathematically* (batched
transitions on a frozen snapshot) and counts one message per proposal —
the paper's cost model. This package executes the walk as an actual
distributed protocol over the event simulator: tokens hop node-to-node
with per-hop latency, nodes act only on local state, and every message is
a scheduled delivery. It exists to validate that

1. the protocol-executed walk samples the same distribution the transition
   matrix predicts (the math and the protocol agree), and
2. the abstract one-message-per-proposal cost model is *bracketed* by the
   two realizable protocols:

   * ``"bounce"`` — the token is optimistically forwarded; the receiver
     evaluates Metropolis acceptance with its own weight and bounces the
     token back on rejection. No steady-state overhead; accepted moves
     cost 1 message, rejected 2.
   * ``"cached"`` — neighbors advertise their weights on every change, so
     the sender evaluates acceptance locally and rejected proposals cost
     nothing; the advertisement traffic is the price.

The runtime also carries the failure model: inject a
:class:`~repro.network.faults.FaultPlan` for lossy links and crashes, and
a :class:`RetryPolicy` for origin-side walk supervision (timeouts with
backoff, bounded retries). See :mod:`repro.experiments.fault_tolerance`.

See :mod:`repro.experiments.protocol_validation` for the measurements.
"""

from repro.protocol.messages import (
    SampleReturn,
    WalkToken,
    WeightAdvertisement,
)
from repro.protocol.runtime import (
    ProtocolConfig,
    ProtocolSampler,
    RetryPolicy,
    WalkStats,
)

__all__ = [
    "ProtocolConfig",
    "ProtocolSampler",
    "RetryPolicy",
    "SampleReturn",
    "WalkStats",
    "WalkToken",
    "WeightAdvertisement",
]
