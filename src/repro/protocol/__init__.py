"""Message-level execution of the sampling protocol.

The rest of the library simulates random walks *mathematically* (batched
transitions on a frozen snapshot) and counts one message per proposal —
the paper's cost model. This package executes the walk as an actual
distributed protocol over the event simulator: tokens hop node-to-node
with per-hop latency, nodes act only on local state, and every message is
a scheduled delivery. It exists to validate that

1. the protocol-executed walk samples the same distribution the transition
   matrix predicts (the math and the protocol agree), and
2. the abstract one-message-per-proposal cost model is *bracketed* by the
   two realizable protocols:

   * ``"bounce"`` — the token is optimistically forwarded; the receiver
     evaluates Metropolis acceptance with its own weight and bounces the
     token back on rejection. No steady-state overhead; accepted moves
     cost 1 message, rejected 2.
   * ``"cached"`` — neighbors advertise their weights on every change, so
     the sender evaluates acceptance locally and rejected proposals cost
     nothing; the advertisement traffic is the price.

The runtime also carries the failure model: inject a
:class:`~repro.network.faults.FaultPlan` for lossy links and crashes, and
a :class:`RetryPolicy` for origin-side walk supervision (timeouts with
backoff, bounded retries). See :mod:`repro.experiments.fault_tolerance`.

The package is a layered stack (see DESIGN.md §5): a
:class:`~repro.protocol.transport.Transport` owns delivery and the
failure model, a :class:`~repro.protocol.lifecycle.WalkLifecycle` state
machine owns supervision, a :class:`~repro.protocol.routing.RoutingPolicy`
owns first-hop choice, :class:`~repro.protocol.walkers.WalkExecutor` owns
the per-node handlers, and :class:`ProtocolSampler` is the thin
orchestrator tying them together.

See :mod:`repro.experiments.protocol_validation` for the measurements.
"""

from repro.protocol.batching import (
    WalkBatchPlan,
    WalkDemand,
    coalesce_demands,
)
from repro.protocol.lifecycle import (
    TRANSITIONS,
    WalkLifecycle,
    WalkOutcome,
    WalkRecord,
)
from repro.protocol.messages import (
    SampleReturn,
    WalkToken,
    WeightAdvertisement,
)
from repro.protocol.routing import (
    HealthAwareRouting,
    RoutingPolicy,
    UniformRouting,
)
from repro.protocol.runtime import (
    ProtocolConfig,
    ProtocolSampler,
    RetryPolicy,
    WalkStats,
)
from repro.protocol.transport import SimTransport, Transport

__all__ = [
    "HealthAwareRouting",
    "ProtocolConfig",
    "ProtocolSampler",
    "RetryPolicy",
    "RoutingPolicy",
    "SampleReturn",
    "SimTransport",
    "TRANSITIONS",
    "Transport",
    "UniformRouting",
    "WalkBatchPlan",
    "WalkDemand",
    "WalkLifecycle",
    "WalkOutcome",
    "WalkRecord",
    "WalkStats",
    "WalkToken",
    "WeightAdvertisement",
    "coalesce_demands",
]
