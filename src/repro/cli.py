"""Command-line interface.

Four subcommands::

    repro-digest experiment <name> [--scale S] [--seed N]
        Run a named paper experiment (fig4a, fig4b, fig5a, fig5b, table1,
        table2, mixing, ablations, forward) and print its tables.

    repro-digest query --query "SELECT AVG(temperature) FROM R" \\
        [--dataset temperature] [--delta D] [--epsilon E] [--confidence P]
        [--steps T] [--scale S] [--seed N] [--scheduler pred|all]
        [--evaluator repeated|independent]
        Run an ad-hoc continuous query against a synthetic workload and
        print each result update.

    repro-digest queryset --spec queries.json [--steps T] [--scale S] [...]
        Run several continuous queries in one shared multi-query session
        (pooled samples, coalesced walk batches) from a JSON spec file.

    repro-digest trace record --output trace.jsonl [--dataset ...] [...]
    repro-digest trace replay --input trace.jsonl --query "..."  [...]
        Record a workload into the portable trace format / replay one.

    repro-digest trace summarize|attribute|flame|tail|critpath --input t.jsonl
        Analyze an exported telemetry trace; ``tail`` streams it through
        the live window/alert pipeline (one line per closed window);
        ``critpath`` assembles hop-level causal trees and prints the
        critical path of each walk batch.

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.console import emit

if TYPE_CHECKING:
    from repro.core.session import QuerySet


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=("temperature", "memory"),
        default="temperature",
        help="synthetic workload (default: temperature)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale factor; 1.0 = the paper's sizes (default 0.1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-digest",
        description=(
            "Digest: fixed-precision approximate continuous aggregate "
            "queries in P2P databases (ICDE 2008 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run a named paper experiment"
    )
    experiment.add_argument(
        "name",
        choices=(
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "table1",
            "table2",
            "mixing",
            "ablations",
            "forward",
            "guarantees",
            "related_work",
            "occasion_drift",
            "protocol",
            "fault_tolerance",
            "multi_query",
            "partition_tolerance",
            "slo_audit",
        ),
    )
    _add_common(experiment)

    queryset = commands.add_parser(
        "queryset",
        help="run a set of continuous queries in one shared session",
    )
    queryset.add_argument(
        "--spec",
        required=True,
        help="JSON file declaring the query set (see docs/TUTORIAL.md)",
    )
    queryset.add_argument("--steps", type=int, default=None)
    _add_common(queryset)

    query = commands.add_parser("query", help="run an ad-hoc continuous query")
    query.add_argument(
        "--query",
        required=True,
        help='e.g. "SELECT AVG(temperature) FROM R WHERE temperature > 50"',
    )
    query.add_argument("--delta", type=float, default=None)
    query.add_argument("--epsilon", type=float, default=None)
    query.add_argument("--confidence", type=float, default=0.95)
    query.add_argument("--steps", type=int, default=None)
    query.add_argument("--scheduler", choices=("pred", "all"), default="pred")
    query.add_argument(
        "--evaluator", choices=("repeated", "independent"), default="repeated"
    )
    _add_common(query)

    trace = commands.add_parser("trace", help="record or replay a trace")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_commands.add_parser("record", help="record a workload")
    record.add_argument("--output", required=True)
    record.add_argument("--steps", type=int, default=None)
    _add_common(record)
    replay = trace_commands.add_parser("replay", help="replay + query a trace")
    replay.add_argument("--input", required=True)
    replay.add_argument("--query", required=True)
    replay.add_argument("--delta", type=float, default=None)
    replay.add_argument("--epsilon", type=float, default=None)
    replay.add_argument("--confidence", type=float, default=0.95)
    replay.add_argument("--seed", type=int, default=0)

    # telemetry-trace analysis (JSONL traces from repro.obs.export)
    summarize = trace_commands.add_parser(
        "summarize",
        help="summarize a telemetry trace: attribution, latency, timelines",
    )
    summarize.add_argument("--input", required=True)
    attribute = trace_commands.add_parser(
        "attribute",
        help="per-category message-cost attribution from a telemetry trace",
    )
    attribute.add_argument("--input", required=True)
    attribute.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    flame = trace_commands.add_parser(
        "flame", help="folded flamegraph stacks from a telemetry trace"
    )
    flame.add_argument("--input", required=True)
    flame.add_argument(
        "--weight",
        choices=("time", "count"),
        default="time",
        help="stack weight: self sim-time (default) or span count",
    )
    critpath = trace_commands.add_parser(
        "critpath",
        help=(
            "assemble per-walk causal trees from hop segments and print "
            "the critical path bounding each walk batch"
        ),
    )
    critpath.add_argument("--input", required=True)
    critpath.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    tail = trace_commands.add_parser(
        "tail",
        help=(
            "stream a telemetry trace through the live pipeline: one line "
            "per closed window, with alert transitions interleaved"
        ),
    )
    tail.add_argument("--input", required=True)
    tail.add_argument(
        "--rules",
        default=None,
        metavar="PATH",
        help="JSON alert-rules file to evaluate while tailing",
    )
    tail.add_argument(
        "--width", type=int, default=None, help="window width (sim ticks)"
    )
    tail.add_argument(
        "--slide",
        type=int,
        default=None,
        help="windows per sliding (burn-rate) view",
    )
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------


def _run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        fig4a,
        fig4b,
        fig5a,
        fig5b,
        forward,
        mixing,
        table1,
        table2,
    )

    name = args.name
    if name == "fig4a":
        emit(fig4a.run(dataset=args.dataset, scale=args.scale, seed=args.seed).to_table())
    elif name == "fig4b":
        result = fig4b.run(dataset=args.dataset, scale=args.scale, seed=args.seed)
        emit(result.to_table())
        emit(f"average improvement factor I = {result.improvement_factor:.2f}")
    elif name == "fig5a":
        result = fig5a.run(dataset=args.dataset, scale=args.scale, seed=args.seed)
        emit(result.to_table())
        emit(f"Digest vs naive = {result.digest_vs_naive:.2f}x")
    elif name == "fig5b":
        emit(fig5b.run(dataset=args.dataset, scale=max(args.scale, 0.25), seed=args.seed).to_table())
    elif name == "table1":
        for rho in (0.5, 0.85, 0.95):
            emit(table1.simulate(rho=rho, seed=args.seed).to_table())
            emit()
    elif name == "table2":
        emit(table2.run(dataset=args.dataset, scale=args.scale, seed=args.seed).to_table())
    elif name == "mixing":
        emit(mixing.run(seed=args.seed).to_table())
    elif name == "ablations":
        ablations.main()
    elif name == "forward":
        forward.main()
    elif name == "guarantees":
        from repro.experiments import guarantees

        guarantees.main()
    elif name == "related_work":
        from repro.experiments import related_work

        related_work.main()
    elif name == "occasion_drift":
        from repro.experiments import occasion_drift

        occasion_drift.main()
    elif name == "protocol":
        from repro.experiments import protocol_validation

        protocol_validation.main()
    elif name == "fault_tolerance":
        from repro.experiments import fault_tolerance

        # scale < 1 maps to the reduced CI sweep, full grid otherwise
        config = (
            fault_tolerance.smoke_config()
            if args.scale < 1.0
            else fault_tolerance.FaultSweepConfig()
        )
        emit(fault_tolerance.run(config, seed=args.seed).to_table())
    elif name == "multi_query":
        from repro.experiments import multi_query

        result = multi_query.run(
            dataset=args.dataset, scale=args.scale, seed=args.seed
        )
        emit(result.to_table())
        emit(
            f"\n{result.n_queries} co-resident queries pay "
            f"{result.message_savings:.0%} fewer messages per query than "
            f"independent engines"
        )
    elif name == "partition_tolerance":
        from repro.experiments import partition_tolerance

        # scale < 1 maps to the reduced CI sweep, full grid otherwise
        config = (
            partition_tolerance.smoke_config()
            if args.scale < 1.0
            else partition_tolerance.PartitionSweepConfig()
        )
        emit(partition_tolerance.run(config, seed=args.seed).to_table())
    elif name == "slo_audit":
        from repro.experiments import slo_audit

        argv = ["--seed", str(args.seed)]
        if args.scale < 1.0:  # scale < 1 maps to the reduced CI sweep
            argv.append("--smoke")
        return slo_audit.main(argv)
    return 0


def _default_precision(
    instance: object, delta: float | None, epsilon: float | None
) -> tuple[float, float]:
    sigma = getattr(instance.config, "expected_sigma", 1.0)
    if delta is None:
        delta = sigma
    if epsilon is None:
        epsilon = 0.25 * sigma
    return delta, epsilon


def load_query_set(
    path: str, default_delta: float, default_epsilon: float
) -> QuerySet:
    """Build a :class:`~repro.core.session.QuerySet` from a JSON spec file.

    The spec is ``{"queries": [{...}, ...]}`` where each entry takes
    ``query`` (required, the SQL-ish text) and optionally ``id``,
    ``delta``, ``epsilon``, ``confidence``, ``scheduler``, ``evaluator``,
    ``start`` and ``duration``. Omitted precision fields fall back to the
    workload-derived defaults, mirroring the single-query command.
    """
    import json

    from repro.core.engine import EngineConfig
    from repro.core.query import ContinuousQuery, Precision, parse_query
    from repro.core.session import QuerySet
    from repro.db.aggregates import AggregateOp
    from repro.errors import QueryError

    with open(path, encoding="utf-8") as handle:
        spec = json.load(handle)
    entries = spec.get("queries")
    if not isinstance(entries, list) or not entries:
        raise QueryError(
            f"{path}: expected a non-empty 'queries' list in the spec"
        )
    queries = QuerySet()
    for entry in entries:
        if "query" not in entry:
            raise QueryError(f"{path}: every entry needs a 'query' string")
        query = parse_query(entry["query"])
        evaluator = entry.get("evaluator", "repeated")
        if (
            evaluator == "repeated"
            and query.op is AggregateOp.AVG
            and query.predicate is not None
        ):
            evaluator = "independent"  # filtered AVG needs the ratio estimator
        continuous = ContinuousQuery(
            query,
            Precision(
                delta=float(entry.get("delta", default_delta)),
                epsilon=float(entry.get("epsilon", default_epsilon)),
                confidence=float(entry.get("confidence", 0.95)),
            ),
            start_time=int(entry.get("start", 0)),
            duration=(
                int(entry["duration"]) if "duration" in entry else None
            ),
        )
        queries.add(
            continuous,
            config=EngineConfig(
                scheduler=entry.get("scheduler", "pred"),
                evaluator=evaluator,
            ),
            query_id=entry.get("id"),
        )
    return queries


def _run_query_set(args: argparse.Namespace) -> int:
    from repro.core.session import DigestSession
    from repro.experiments.harness import build_instance, pick_origin

    instance = build_instance(args.dataset, args.scale, args.seed)
    steps = args.steps if args.steps is not None else instance.n_steps
    delta, epsilon = _default_precision(instance, None, None)
    queries = load_query_set(args.spec, delta, epsilon)
    origin = pick_origin(instance, args.seed)
    session = DigestSession(
        instance.graph,
        instance.database,
        origin,
        np.random.default_rng(args.seed + 1),
    )
    qids = session.add_query_set(queries)
    emit(f"running {len(qids)} queries in one session:")
    for qid in qids:
        emit(f"  [{qid}] {session.runtime(qid).continuous_query}")
    emit(f"workload: {args.dataset} (scale {args.scale}), {steps} steps\n")
    for t in range(steps):
        instance.step(t)
        executed = session.step(t)
        for qid in qids:
            estimate = executed.get(qid)
            if estimate is not None:
                emit(
                    f"t={t:4d}  [{qid}] estimate={estimate.aggregate:12.3f}  "
                    f"samples={estimate.n_total:4d} "
                    f"(fresh {estimate.n_fresh:4d})"
                )
    pool = session.pool
    served = pool.pool_hits + pool.pool_misses
    hit_rate = pool.pool_hits / served if served else 0.0
    emit(
        f"\n{session.metrics.snapshot_queries} snapshot queries across "
        f"{len(qids)} queries, {session.metrics.samples_total} samples, "
        f"{session.ledger.total} messages"
    )
    emit(
        f"pool: {pool.pool_hits} hits / {pool.pool_misses} misses "
        f"({hit_rate:.1%} hit rate), "
        f"{session.batches_coalesced} coalesced walk batches"
    )
    return 0


def _run_query(args: argparse.Namespace) -> int:
    from repro.core.engine import DigestEngine, EngineConfig
    from repro.core.query import ContinuousQuery, Precision, parse_query
    from repro.experiments.harness import build_instance, pick_origin

    from repro.db.aggregates import AggregateOp

    instance = build_instance(args.dataset, args.scale, args.seed)
    steps = args.steps if args.steps is not None else instance.n_steps
    delta, epsilon = _default_precision(instance, args.delta, args.epsilon)
    query = parse_query(args.query)
    evaluator = args.evaluator
    if (
        evaluator == "repeated"
        and query.op is AggregateOp.AVG
        and query.predicate is not None
    ):
        emit(
            "note: filtered AVG needs the ratio estimator; "
            "falling back to evaluator=independent"
        )
        evaluator = "independent"
    continuous = ContinuousQuery(
        query,
        Precision(delta=delta, epsilon=epsilon, confidence=args.confidence),
        duration=steps,
    )
    origin = pick_origin(instance, args.seed)
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=origin,
        rng=np.random.default_rng(args.seed + 1),
        config=EngineConfig(scheduler=args.scheduler, evaluator=evaluator),
    )
    emit(f"running: {continuous}")
    emit(f"workload: {args.dataset} (scale {args.scale}), {steps} steps\n")
    for t in range(steps):
        instance.step(t)
        estimate = engine.step(t)
        if estimate is not None:
            emit(
                f"t={t:4d}  estimate={estimate.aggregate:12.3f}  "
                f"samples={estimate.n_total:4d} (fresh {estimate.n_fresh:4d})"
            )
    metrics = engine.metrics
    emit(
        f"\n{metrics.snapshot_queries} snapshot queries, "
        f"{metrics.samples_total} samples "
        f"({metrics.samples_fresh} fresh), {engine.ledger.total} messages"
    )
    return 0


def _summarize_trace(args: argparse.Namespace) -> int:
    from repro.obs import analysis, import_trace

    trace = import_trace(args.input)
    emit(f"trace: {args.input}")
    if trace.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
        emit(f"meta: {meta}")
    emit(f"{len(trace.spans)} spans, {len(trace.events)} loose events")

    emit("\nmessage attribution:")
    for category, count in analysis.message_attribution(trace).items():
        emit(f"  {category:16s} {count:8d}")

    outcomes = analysis.walk_outcomes(trace)
    if outcomes:
        emit("\nwalk outcomes:")
        for outcome, count in outcomes.items():
            emit(f"  {outcome:16s} {count:8d}")
        histogram = analysis.walk_latency_histogram(trace)
        if histogram.count:
            emit(
                f"\nwalk latency (sim ticks, {histogram.count} walks, "
                f"mean {histogram.mean():.1f}):"
            )
            for label, count in zip(histogram.bucket_labels(), histogram.counts):
                emit(f"  {label:12s} {count:8d}")

    triggers = analysis.trigger_breakdown(trace)
    if triggers:
        emit("\nsnapshot-query triggers:")
        for reason, count in triggers.items():
            emit(f"  {reason:16s} {count:8d}")

    shared = analysis.shared_walk_attribution(trace)
    if shared:
        emit("\nshared-walk attribution (per query):")
        for query_id, stats in sorted(shared.items()):
            emit(
                f"  {query_id:12s} pool_hits={stats['pool_hits']:6d}  "
                f"pool_misses={stats['pool_misses']:6d}  "
                f"batches={stats['shared_batches']:4d}  "
                f"walks={stats['walks']:6d}"
            )

    degraded = analysis.degraded_timeline(trace)
    emit(f"\ndegraded estimates: {len(degraded)}")
    for span in degraded:
        emit(f"  t={span.start}  {span.attrs.get('trigger', '?')}")

    faults = analysis.fault_timeline(trace)
    emit(f"\nfaults: {len(faults)}")
    kinds: dict[str, int] = {}
    for event in faults:
        kind = str(event.attrs.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
    for kind, count in sorted(kinds.items()):
        emit(f"  {kind:24s} {count:8d}")

    emit("\nreplayed counters:")
    for name, value in analysis.counter_dict(
        analysis.run_metrics_from_trace(trace)
    ).items():
        emit(f"  {name:20s} {value:8d}")
    return 0


def _attribute_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import analysis, import_trace

    attribution = analysis.message_attribution(import_trace(args.input))
    if args.json:
        emit(json.dumps(attribution, sort_keys=True))
    else:
        for category, count in attribution.items():
            emit(f"{category:16s} {count:8d}")
    return 0


def _flame_trace(args: argparse.Namespace) -> int:
    from repro.obs import analysis, import_trace

    stacks = analysis.folded_stacks(import_trace(args.input), weight=args.weight)
    for stack, value in stacks.items():
        emit(f"{stack} {value}")
    return 0


def _critpath_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import analysis, import_trace

    trace = import_trace(args.input)
    assembly = analysis.assemble(trace)
    paths = analysis.critical_paths(trace, assembly)
    attribution = analysis.hop_latency_attribution(assembly)
    if args.json:
        emit(
            json.dumps(
                {
                    "assembly": assembly.summary(),
                    "hop_latency": attribution,
                    "critical_paths": [path.as_dict() for path in paths],
                },
                sort_keys=True,
            )
        )
        return 0

    emit(f"trace: {args.input}")
    summary = assembly.summary()
    emit(
        f"assembled {summary['n_walks']} walks, {summary['n_hops']} hops "
        f"({summary['n_orphans']} orphans, {summary['n_unrooted']} unrooted; "
        f"orphan rate {assembly.orphan_rate:.1%})"
    )
    if attribution:
        emit("\nhop latency by category:")
        for category, stats in attribution.items():
            emit(
                f"  {category:12s} n={stats['count']:6.0f}  "
                f"total={stats['total']:8.0f}  mean={stats['mean']:6.2f}  "
                f"max={stats['max']:5.0f}"
            )
    if not paths:
        emit("\nno walks to bound (v1 trace or non-recording run?)")
        return 0
    emit("\ncritical paths (bounding walk per scope):")
    for path in paths:
        emit(
            f"  {path.scope:12s} walks={path.n_walks:5d}  "
            f"walker={path.walker_id:5d}  "
            f"walk_latency={path.walk_latency:5d}  "
            f"transit={path.chain_latency:5d}  "
            f"supervision={path.supervision_latency:5d}"
        )
        for hop in path.hops:
            emit(
                f"      {hop.from_node:4d} -> {hop.to_node:4d}  "
                f"{hop.category:8s} t=[{hop.start},{hop.end}] "
                f"latency={hop.latency}"
            )
    return 0


def _tail_trace(args: argparse.Namespace) -> int:
    from repro.obs import import_trace
    from repro.obs.alerts import FIRING, AlertEngine, load_rules
    from repro.obs.audit import auditor_from_trace
    from repro.obs.live import LivePipeline, WindowConfig, feed_trace

    trace = import_trace(args.input)
    defaults = WindowConfig()
    config = WindowConfig(
        width=args.width if args.width is not None else defaults.width,
        slide=args.slide if args.slide is not None else defaults.slide,
    )
    rules = load_rules(args.rules) if args.rules else []
    pipeline = LivePipeline(config)
    engine = AlertEngine(pipeline, rules)
    auditor = auditor_from_trace(trace)
    span_observer = None
    if auditor is not None:
        pipeline.add_contributor(auditor.signals)
        span_observer = auditor.observe_span

    emit(f"trace: {args.input}")
    if trace.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(trace.meta.items()))
        emit(f"meta: {meta}")
    emit(
        f"window width={config.width} slide={config.slide} "
        f"rules={len(rules)} audit={'on' if auditor else 'off'}\n"
    )

    seen_transitions = 0

    def _print_window(window) -> None:
        nonlocal seen_transitions
        signals = window.signals()
        partial = "~" if window.partial else " "
        line = (
            f"[{window.start:5d},{window.end:5d}){partial} "
            f"walks={signals['walk_count']:5.0f} "
            f"fail={signals['walk_failure_fraction']:5.2f} "
            f"msg/t={signals['message_rate']:7.1f} "
            f"pool={signals['pool_hit_ratio']:5.2f} "
            f"degr={signals['degraded_fraction']:5.2f} "
            f"faults={signals['fault_count']:4.0f}"
        )
        if "audit_burn_rate" in signals:
            line += f" burn={signals['audit_burn_rate']:6.2f}"
        emit(line)
        # the engine's listener ran first (it subscribed first), so any
        # transitions this window produced are already appended
        for transition in engine.transitions[seen_transitions:]:
            state = "FIRING" if transition.state == FIRING else "resolved"
            emit(
                f"  ! {state:8s} {transition.rule}: "
                f"{transition.signal}={transition.value:g} "
                f"(threshold {transition.threshold:g}, {transition.kind})"
            )
        seen_transitions = len(engine.transitions)

    pipeline.add_listener(_print_window)
    feed_trace(pipeline, trace, span_observer=span_observer)
    firing = engine.firing
    emit(
        f"\n{seen_transitions} alert transitions; "
        f"still firing at end: {', '.join(firing) if firing else 'none'}"
    )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        return _summarize_trace(args)
    if args.trace_command == "attribute":
        return _attribute_trace(args)
    if args.trace_command == "flame":
        return _flame_trace(args)
    if args.trace_command == "tail":
        return _tail_trace(args)
    if args.trace_command == "critpath":
        return _critpath_trace(args)
    if args.trace_command == "record":
        from repro.datasets.traces import TraceRecorder
        from repro.experiments.harness import build_instance

        instance = build_instance(args.dataset, args.scale, args.seed)
        steps = args.steps if args.steps is not None else instance.n_steps
        recorder = TraceRecorder(instance)
        for t in range(steps):
            instance.step(t)
            recorder.observe(t)
        trace = recorder.finish()
        trace.save(args.output)
        emit(
            f"recorded {len(trace.events)} events over {trace.n_steps} steps "
            f"to {args.output}"
        )
        return 0

    # replay
    from repro.core.engine import DigestEngine, EngineConfig
    from repro.core.query import ContinuousQuery, Precision, parse_query
    from repro.datasets.traces import Trace, replay_trace

    trace = Trace.load(args.input)
    instance = replay_trace(trace)
    delta = args.delta if args.delta is not None else 1.0
    epsilon = args.epsilon if args.epsilon is not None else 1.0
    continuous = ContinuousQuery(
        parse_query(args.query),
        Precision(delta=delta, epsilon=epsilon, confidence=args.confidence),
        duration=trace.n_steps,
    )
    origin = instance.graph.nodes()[0]
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=origin,
        rng=np.random.default_rng(args.seed),
    )
    executed = 0
    for t in range(trace.n_steps):
        instance.step(t)
        if engine.step(t) is not None:
            executed += 1
    if len(engine.result):
        emit(
            f"replayed {trace.n_steps} steps: {executed} snapshot queries, "
            f"final estimate {engine.result.last().estimate:.3f}"
        )
    else:
        emit(f"replayed {trace.n_steps} steps: no snapshot executed")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "experiment":
            return _run_experiment(args)
        if args.command == "query":
            return _run_query(args)
        if args.command == "queryset":
            return _run_query_set(args)
        return _run_trace(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit
        # quietly instead of tracebacking. Redirect stdout to devnull so
        # the interpreter's shutdown flush does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
