"""Command-line interface.

Three subcommands::

    repro-digest experiment <name> [--scale S] [--seed N]
        Run a named paper experiment (fig4a, fig4b, fig5a, fig5b, table1,
        table2, mixing, ablations, forward) and print its tables.

    repro-digest query --query "SELECT AVG(temperature) FROM R" \\
        [--dataset temperature] [--delta D] [--epsilon E] [--confidence P]
        [--steps T] [--scale S] [--seed N] [--scheduler pred|all]
        [--evaluator repeated|independent]
        Run an ad-hoc continuous query against a synthetic workload and
        print each result update.

    repro-digest trace record --output trace.jsonl [--dataset ...] [...]
    repro-digest trace replay --input trace.jsonl --query "..."  [...]
        Record a workload into the portable trace format / replay one.

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=("temperature", "memory"),
        default="temperature",
        help="synthetic workload (default: temperature)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale factor; 1.0 = the paper's sizes (default 0.1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-digest",
        description=(
            "Digest: fixed-precision approximate continuous aggregate "
            "queries in P2P databases (ICDE 2008 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run a named paper experiment"
    )
    experiment.add_argument(
        "name",
        choices=(
            "fig4a",
            "fig4b",
            "fig5a",
            "fig5b",
            "table1",
            "table2",
            "mixing",
            "ablations",
            "forward",
            "guarantees",
            "related_work",
            "occasion_drift",
            "protocol",
            "fault_tolerance",
        ),
    )
    _add_common(experiment)

    query = commands.add_parser("query", help="run an ad-hoc continuous query")
    query.add_argument(
        "--query",
        required=True,
        help='e.g. "SELECT AVG(temperature) FROM R WHERE temperature > 50"',
    )
    query.add_argument("--delta", type=float, default=None)
    query.add_argument("--epsilon", type=float, default=None)
    query.add_argument("--confidence", type=float, default=0.95)
    query.add_argument("--steps", type=int, default=None)
    query.add_argument("--scheduler", choices=("pred", "all"), default="pred")
    query.add_argument(
        "--evaluator", choices=("repeated", "independent"), default="repeated"
    )
    _add_common(query)

    trace = commands.add_parser("trace", help="record or replay a trace")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_commands.add_parser("record", help="record a workload")
    record.add_argument("--output", required=True)
    record.add_argument("--steps", type=int, default=None)
    _add_common(record)
    replay = trace_commands.add_parser("replay", help="replay + query a trace")
    replay.add_argument("--input", required=True)
    replay.add_argument("--query", required=True)
    replay.add_argument("--delta", type=float, default=None)
    replay.add_argument("--epsilon", type=float, default=None)
    replay.add_argument("--confidence", type=float, default=0.95)
    replay.add_argument("--seed", type=int, default=0)
    return parser


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------


def _run_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ablations,
        fig4a,
        fig4b,
        fig5a,
        fig5b,
        forward,
        mixing,
        table1,
        table2,
    )

    name = args.name
    if name == "fig4a":
        print(fig4a.run(dataset=args.dataset, scale=args.scale, seed=args.seed).to_table())
    elif name == "fig4b":
        result = fig4b.run(dataset=args.dataset, scale=args.scale, seed=args.seed)
        print(result.to_table())
        print(f"average improvement factor I = {result.improvement_factor:.2f}")
    elif name == "fig5a":
        result = fig5a.run(dataset=args.dataset, scale=args.scale, seed=args.seed)
        print(result.to_table())
        print(f"Digest vs naive = {result.digest_vs_naive:.2f}x")
    elif name == "fig5b":
        print(fig5b.run(dataset=args.dataset, scale=max(args.scale, 0.25), seed=args.seed).to_table())
    elif name == "table1":
        for rho in (0.5, 0.85, 0.95):
            print(table1.simulate(rho=rho, seed=args.seed).to_table())
            print()
    elif name == "table2":
        print(table2.run(dataset=args.dataset, scale=args.scale, seed=args.seed).to_table())
    elif name == "mixing":
        print(mixing.run(seed=args.seed).to_table())
    elif name == "ablations":
        ablations.main()
    elif name == "forward":
        forward.main()
    elif name == "guarantees":
        from repro.experiments import guarantees

        guarantees.main()
    elif name == "related_work":
        from repro.experiments import related_work

        related_work.main()
    elif name == "occasion_drift":
        from repro.experiments import occasion_drift

        occasion_drift.main()
    elif name == "protocol":
        from repro.experiments import protocol_validation

        protocol_validation.main()
    elif name == "fault_tolerance":
        from repro.experiments import fault_tolerance

        # scale < 1 maps to the reduced CI sweep, full grid otherwise
        config = (
            fault_tolerance.smoke_config()
            if args.scale < 1.0
            else fault_tolerance.FaultSweepConfig()
        )
        print(fault_tolerance.run(config, seed=args.seed).to_table())
    return 0


def _default_precision(
    instance: object, delta: float | None, epsilon: float | None
) -> tuple[float, float]:
    sigma = getattr(instance.config, "expected_sigma", 1.0)
    if delta is None:
        delta = sigma
    if epsilon is None:
        epsilon = 0.25 * sigma
    return delta, epsilon


def _run_query(args: argparse.Namespace) -> int:
    from repro.core.engine import DigestEngine, EngineConfig
    from repro.core.query import ContinuousQuery, Precision, parse_query
    from repro.experiments.harness import build_instance, pick_origin

    from repro.db.aggregates import AggregateOp

    instance = build_instance(args.dataset, args.scale, args.seed)
    steps = args.steps if args.steps is not None else instance.n_steps
    delta, epsilon = _default_precision(instance, args.delta, args.epsilon)
    query = parse_query(args.query)
    evaluator = args.evaluator
    if (
        evaluator == "repeated"
        and query.op is AggregateOp.AVG
        and query.predicate is not None
    ):
        print(
            "note: filtered AVG needs the ratio estimator; "
            "falling back to evaluator=independent"
        )
        evaluator = "independent"
    continuous = ContinuousQuery(
        query,
        Precision(delta=delta, epsilon=epsilon, confidence=args.confidence),
        duration=steps,
    )
    origin = pick_origin(instance, args.seed)
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=origin,
        rng=np.random.default_rng(args.seed + 1),
        config=EngineConfig(scheduler=args.scheduler, evaluator=evaluator),
    )
    print(f"running: {continuous}")
    print(f"workload: {args.dataset} (scale {args.scale}), {steps} steps\n")
    for t in range(steps):
        instance.step(t)
        estimate = engine.step(t)
        if estimate is not None:
            print(
                f"t={t:4d}  estimate={estimate.aggregate:12.3f}  "
                f"samples={estimate.n_total:4d} (fresh {estimate.n_fresh:4d})"
            )
    metrics = engine.metrics
    print(
        f"\n{metrics.snapshot_queries} snapshot queries, "
        f"{metrics.samples_total} samples "
        f"({metrics.samples_fresh} fresh), {engine.ledger.total} messages"
    )
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        from repro.datasets.traces import TraceRecorder
        from repro.experiments.harness import build_instance

        instance = build_instance(args.dataset, args.scale, args.seed)
        steps = args.steps if args.steps is not None else instance.n_steps
        recorder = TraceRecorder(instance)
        for t in range(steps):
            instance.step(t)
            recorder.observe(t)
        trace = recorder.finish()
        trace.save(args.output)
        print(
            f"recorded {len(trace.events)} events over {trace.n_steps} steps "
            f"to {args.output}"
        )
        return 0

    # replay
    from repro.core.engine import DigestEngine, EngineConfig
    from repro.core.query import ContinuousQuery, Precision, parse_query
    from repro.datasets.traces import Trace, replay_trace

    trace = Trace.load(args.input)
    instance = replay_trace(trace)
    delta = args.delta if args.delta is not None else 1.0
    epsilon = args.epsilon if args.epsilon is not None else 1.0
    continuous = ContinuousQuery(
        parse_query(args.query),
        Precision(delta=delta, epsilon=epsilon, confidence=args.confidence),
        duration=trace.n_steps,
    )
    origin = instance.graph.nodes()[0]
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=origin,
        rng=np.random.default_rng(args.seed),
    )
    executed = 0
    for t in range(trace.n_steps):
        instance.step(t)
        if engine.step(t) is not None:
            executed += 1
    if len(engine.result):
        print(
            f"replayed {trace.n_steps} steps: {executed} snapshot queries, "
            f"final estimate {engine.result.last().estimate:.3f}"
        )
    else:
        print(f"replayed {trace.n_steps} steps: no snapshot executed")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "query":
        return _run_query(args)
    return _run_trace(args)


if __name__ == "__main__":
    sys.exit(main())
