"""Continual-querying schedulers: when to run the next snapshot query.

Two policies from the paper's evaluation:

* ``ALL`` (:class:`ContinuousScheduler`) — the naive baseline: execute a
  snapshot query at every time step.
* ``PRED-k`` (:class:`ExtrapolationScheduler`) — the extrapolation
  algorithm of Section IV-A: predict, from the last ``k`` snapshot
  results, the earliest time the aggregate will have drifted by ``delta``,
  and skip every step before it. Until enough history exists
  (the bootstrapping period) it behaves like ``ALL``.

Walk batch coalescing
---------------------
When several continuous queries of one :class:`~repro.core.session.
DigestSession` come due at the same tick, each would independently launch
``n_q`` sampling walks — yet a uniformly random tuple serves every query
equally well, so one batch of ``max_q n_q`` walks covers them all.
:func:`coalesce_demands` folds the per-query :class:`WalkDemand`\\ s into a
:class:`WalkBatchPlan` that knows how many walks to launch and, for each
walk, *which queries consume it* (walk ``i`` feeds every query demanding
more than ``i`` samples) — the attribution carried on shared-walk trace
spans so per-query cost accounting survives the sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Iterable, Protocol

from repro.core.extrapolation import TaylorExtrapolator
from repro.errors import QueryError


@dataclass(frozen=True)
class WalkDemand:
    """One query's sample demand at a tick: ``n_samples`` uniform tuples."""

    query: str
    n_samples: int

    def __post_init__(self) -> None:
        if self.n_samples < 0:
            raise QueryError(
                f"demand for {self.query!r} must be >= 0, got {self.n_samples}"
            )


@dataclass(frozen=True)
class WalkBatchPlan:
    """A coalesced walk batch serving several queries' demands at once.

    ``demands`` is deterministic (sorted by query id, zero demands
    dropped). Walks are fungible, so the batch needs only the *maximum*
    demand many walks; walk ``i`` (0-based) is consumed by every query
    whose demand exceeds ``i`` — the first ``n_q`` delivered samples go to
    query ``q``, giving maximal overlap between consumers.
    """

    demands: tuple[WalkDemand, ...]

    @property
    def n_walks(self) -> int:
        """Walks the coalesced batch launches (the maximum demand)."""
        return max((d.n_samples for d in self.demands), default=0)

    @property
    def total_demand(self) -> int:
        """Walks the queries would have launched independently."""
        return sum(d.n_samples for d in self.demands)

    @property
    def walks_saved(self) -> int:
        """Walks avoided by coalescing (``total_demand - n_walks``)."""
        return self.total_demand - self.n_walks

    @property
    def consumers(self) -> tuple[str, ...]:
        """All consuming query ids, in demand order."""
        return tuple(d.query for d in self.demands)

    def consumers_of(self, walk_index: int) -> tuple[str, ...]:
        """Query ids consuming walk ``walk_index`` (0-based)."""
        if not 0 <= walk_index < self.n_walks:
            raise QueryError(
                f"walk index {walk_index} outside batch of {self.n_walks}"
            )
        return tuple(
            d.query for d in self.demands if d.n_samples > walk_index
        )

    def share_of(self, query: str) -> int:
        """How many of the batch's samples the given query consumes."""
        for demand in self.demands:
            if demand.query == query:
                return demand.n_samples
        return 0


def coalesce_demands(demands: Iterable[WalkDemand]) -> WalkBatchPlan:
    """Fold per-query demands into one deterministic batch plan.

    Zero demands are dropped; duplicate query ids are rejected (a query
    states its demand once per tick); ordering is by query id so the same
    demands always produce the same plan and trace attribution.
    """
    kept = sorted(
        (d for d in demands if d.n_samples > 0), key=lambda d: d.query
    )
    queries = [d.query for d in kept]
    if len(set(queries)) != len(queries):
        raise QueryError(f"duplicate demand for a query in {queries}")
    return WalkBatchPlan(demands=tuple(kept))


class SnapshotScheduler(Protocol):
    """Decides the next snapshot time from the history of results."""

    #: Why the most recent :meth:`next_time` chose its answer — the
    #: trigger reason carried on the next snapshot-query trace span
    #: (``"periodic"``, ``"bootstrap"``, ``"predicted_drift"`` or
    #: ``"horizon_capped"``).
    last_decision: str

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        """Absolute time of the next snapshot query (> ``now``)."""
        ...


class ContinuousScheduler:
    """``ALL``: a snapshot query at every step (optionally every ``period``)."""

    def __init__(self, period: int = 1) -> None:
        if period < 1:
            raise QueryError(f"period must be >= 1, got {period}")
        self.period = period
        self.last_decision: str = "periodic"

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        return now + self.period


class ExtrapolationScheduler:
    """``PRED-k``: extrapolation-driven continual querying.

    ``n_points`` is the paper's ``k``; ``delta`` the resolution parameter
    of the continuous query. During bootstrap (fewer than ``k+1`` history
    points) it schedules every ``period`` steps like ``ALL``.
    """

    def __init__(
        self,
        delta: float,
        n_points: int = 3,
        period: int = 1,
        max_horizon: int = 64,
        safety_factor: float = 1.0,
    ) -> None:
        if delta < 0:
            raise QueryError(f"delta must be >= 0, got {delta}")
        if period < 1:
            raise QueryError(f"period must be >= 1, got {period}")
        self.delta = delta
        self.period = period
        self._extrapolator = TaylorExtrapolator(
            n_points=n_points,
            max_horizon=max_horizon,
            safety_factor=safety_factor,
        )
        self.predictions_made = 0
        self.bootstrap_steps = 0
        self.last_decision: str = "bootstrap"

    @property
    def extrapolator(self) -> TaylorExtrapolator:
        return self._extrapolator

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        if len(history) < self._extrapolator.required_history or self.delta == 0:
            self.bootstrap_steps += 1
            self.last_decision = "bootstrap"
            return now + self.period
        result = self._extrapolator.predict_next_update(history, self.delta)
        self.predictions_made += 1
        self.last_decision = result.trigger_reason
        # never schedule in the past/present, and snap to the step grid
        return max(now + self.period, result.next_time)
