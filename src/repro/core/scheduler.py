"""Continual-querying schedulers: when to run the next snapshot query.

Two policies from the paper's evaluation:

* ``ALL`` (:class:`ContinuousScheduler`) — the naive baseline: execute a
  snapshot query at every time step.
* ``PRED-k`` (:class:`ExtrapolationScheduler`) — the extrapolation
  algorithm of Section IV-A: predict, from the last ``k`` snapshot
  results, the earliest time the aggregate will have drifted by ``delta``,
  and skip every step before it. Until enough history exists
  (the bootstrapping period) it behaves like ``ALL``.

Walk batch coalescing moved to the protocol layer
(:mod:`repro.protocol.batching`) — a batch is a property of the walk
lifecycle, not of any single query's scheduling policy. The types are
re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.extrapolation import TaylorExtrapolator
from repro.errors import QueryError
from repro.protocol.batching import (  # noqa: F401 - compat re-export
    WalkBatchPlan,
    WalkDemand,
    coalesce_demands,
)


class SnapshotScheduler(Protocol):
    """Decides the next snapshot time from the history of results."""

    #: Why the most recent :meth:`next_time` chose its answer — the
    #: trigger reason carried on the next snapshot-query trace span
    #: (``"periodic"``, ``"bootstrap"``, ``"predicted_drift"`` or
    #: ``"horizon_capped"``).
    last_decision: str

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        """Absolute time of the next snapshot query (> ``now``)."""
        ...


class ContinuousScheduler:
    """``ALL``: a snapshot query at every step (optionally every ``period``)."""

    def __init__(self, period: int = 1) -> None:
        if period < 1:
            raise QueryError(f"period must be >= 1, got {period}")
        self.period = period
        self.last_decision: str = "periodic"

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        return now + self.period


class ExtrapolationScheduler:
    """``PRED-k``: extrapolation-driven continual querying.

    ``n_points`` is the paper's ``k``; ``delta`` the resolution parameter
    of the continuous query. During bootstrap (fewer than ``k+1`` history
    points) it schedules every ``period`` steps like ``ALL``.
    """

    def __init__(
        self,
        delta: float,
        n_points: int = 3,
        period: int = 1,
        max_horizon: int = 64,
        safety_factor: float = 1.0,
    ) -> None:
        if delta < 0:
            raise QueryError(f"delta must be >= 0, got {delta}")
        if period < 1:
            raise QueryError(f"period must be >= 1, got {period}")
        self.delta = delta
        self.period = period
        self._extrapolator = TaylorExtrapolator(
            n_points=n_points,
            max_horizon=max_horizon,
            safety_factor=safety_factor,
        )
        self.predictions_made = 0
        self.bootstrap_steps = 0
        self.last_decision: str = "bootstrap"

    @property
    def extrapolator(self) -> TaylorExtrapolator:
        return self._extrapolator

    def next_time(self, history: list[tuple[int, float]], now: int) -> int:
        if len(history) < self._extrapolator.required_history or self.delta == 0:
            self.bootstrap_steps += 1
            self.last_decision = "bootstrap"
            return now + self.period
        result = self._extrapolator.predict_next_update(history, self.delta)
        self.predictions_made += 1
        self.last_decision = result.trigger_reason
        # never schedule in the past/present, and snap to the step grid
        return max(now + self.period, result.next_time)
