"""Query model and fixed-precision semantics (Section II).

A snapshot query is ``SELECT op(expression) FROM R``; the continuous query
is the same query evaluated for every discrete time ``t >= t0``. The
approximate version carries three user parameters:

* ``delta`` — resolution: the result is re-evaluated only when the actual
  aggregate has changed by at least ``delta`` since the last update; in
  between, the estimate *holds* its last value.
* ``epsilon`` — maximum tolerable absolute error at each update time.
* ``confidence`` (the paper's ``p``) — probability that the estimate is
  within ``epsilon`` of the truth at an update time.

An exact query is the degenerate case ``delta=0, epsilon=0, confidence=1``.

:func:`parse_query` accepts the paper's SQL surface form
(``"SELECT AVG(temperature) FROM R"``); programmatic construction through
:class:`Query` is equivalent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.predicate import Predicate
from repro.errors import QueryError

_QUERY_PATTERN = re.compile(
    r"^\s*SELECT\s+(?P<op>[A-Za-z]+)\s*\(\s*(?P<expr>.+?)\s*\)\s+"
    r"FROM\s+(?P<relation>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)


@dataclass(frozen=True)
class Query:
    """A snapshot aggregate query ``op(expression)`` over the relation.

    ``predicate`` restricts the aggregate to qualifying tuples (the WHERE
    clause); None aggregates over the whole relation.
    """

    op: AggregateOp
    expression: Expression
    relation: str = "R"
    predicate: Predicate | None = None

    def __str__(self) -> str:
        base = (
            f"SELECT {self.op.value}({self.expression.text}) FROM {self.relation}"
        )
        if self.predicate is not None:
            base += f" WHERE {self.predicate.text}"
        return base


def parse_query(text: str) -> Query:
    """Parse ``SELECT op(expression) FROM R [WHERE predicate]``.

    >>> q = parse_query("SELECT SUM(memory + storage) FROM R WHERE cpu > 2")
    >>> q.op.value, q.expression.text, q.predicate.text
    ('SUM', 'memory + storage', 'cpu > 2')
    """
    match = _QUERY_PATTERN.match(text)
    if match is None:
        raise QueryError(
            f"cannot parse query {text!r}; expected "
            f"'SELECT op(expression) FROM relation [WHERE predicate]'"
        )
    op = AggregateOp.parse(match.group("op"))
    expression = Expression(match.group("expr"))
    where = match.group("where")
    predicate = Predicate(where) if where is not None else None
    return Query(
        op=op,
        expression=expression,
        relation=match.group("relation"),
        predicate=predicate,
    )


@dataclass(frozen=True)
class Precision:
    """Fixed precision ``(delta, epsilon, p)`` of an approximate query.

    ``delta`` and ``epsilon`` are in the units of the aggregate value;
    ``confidence`` is a probability. ``Precision.exact()`` builds the
    degenerate exact-query precision.
    """

    delta: float
    epsilon: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise QueryError(f"delta must be >= 0, got {self.delta}")
        if self.epsilon < 0:
            raise QueryError(f"epsilon must be >= 0, got {self.epsilon}")
        if not 0.0 < self.confidence <= 1.0:
            raise QueryError(
                f"confidence must be in (0, 1], got {self.confidence}"
            )
        if self.epsilon == 0 and self.confidence < 1.0:
            raise QueryError(
                "epsilon=0 requires confidence=1 (exact estimation); "
                "a probabilistic guarantee of zero error is vacuous"
            )

    @classmethod
    def exact(cls) -> "Precision":
        return cls(delta=0.0, epsilon=0.0, confidence=1.0)

    @property
    def is_exact(self) -> bool:
        return self.delta == 0.0 and self.epsilon == 0.0 and self.confidence >= 1.0


@dataclass(frozen=True)
class ContinuousQuery:
    """A fixed-precision approximate continuous aggregate query ``Q^C``.

    ``start_time`` is the arrival time ``t0``; ``duration`` bounds the
    query lifetime in steps (None = until the simulation ends).
    """

    query: Query
    precision: Precision
    start_time: int = 0
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise QueryError(f"start_time must be >= 0, got {self.start_time}")
        if self.duration is not None and self.duration < 1:
            raise QueryError(f"duration must be >= 1, got {self.duration}")

    @property
    def end_time(self) -> int | None:
        """Last time step covered, or None for an open-ended query."""
        if self.duration is None:
            return None
        return self.start_time + self.duration - 1

    def active_at(self, time: int) -> bool:
        end = self.end_time
        return time >= self.start_time and (end is None or time <= end)

    def __str__(self) -> str:
        p = self.precision
        return (
            f"{self.query} CONTINUOUS [delta={p.delta}, epsilon={p.epsilon}, "
            f"p={p.confidence}]"
        )
